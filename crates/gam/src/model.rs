//! Typed records for the four GAM tables and their enumerations.

use crate::error::{GamError, GamResult};
use crate::ids::{ObjectId, ObjectRelId, SourceId, SourceRelId};
use std::fmt;

/// Content category of a source (paper Figure 4: "Gene, Protein, Other").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SourceContent {
    Gene,
    Protein,
    Other,
}

impl SourceContent {
    /// Integer code as stored in the `SOURCE.content` column.
    pub fn code(self) -> i64 {
        match self {
            SourceContent::Gene => 0,
            SourceContent::Protein => 1,
            SourceContent::Other => 2,
        }
    }

    /// Decode a stored integer code.
    pub fn from_code(code: i64) -> GamResult<Self> {
        Ok(match code {
            0 => SourceContent::Gene,
            1 => SourceContent::Protein,
            2 => SourceContent::Other,
            _ => {
                return Err(GamError::BadEnumCode {
                    what: "source content",
                    code,
                })
            }
        })
    }
}

impl fmt::Display for SourceContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SourceContent::Gene => "Gene",
            SourceContent::Protein => "Protein",
            SourceContent::Other => "Other",
        })
    }
}

/// Structure of a source (paper Figure 4: "Flat, Network"). A *Network*
/// source organizes its objects in a structure such as a taxonomy or a
/// database schema; a *Flat* source is a plain object collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SourceStructure {
    Flat,
    Network,
}

impl SourceStructure {
    /// Integer code as stored in the `SOURCE.structure` column.
    pub fn code(self) -> i64 {
        match self {
            SourceStructure::Flat => 0,
            SourceStructure::Network => 1,
        }
    }

    /// Decode a stored integer code.
    pub fn from_code(code: i64) -> GamResult<Self> {
        Ok(match code {
            0 => SourceStructure::Flat,
            1 => SourceStructure::Network,
            _ => {
                return Err(GamError::BadEnumCode {
                    what: "source structure",
                    code,
                })
            }
        })
    }
}

impl fmt::Display for SourceStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SourceStructure::Flat => "Flat",
            SourceStructure::Network => "Network",
        })
    }
}

/// Type of a source-level relationship (paper §3).
///
/// * **Annotation** relationships are imported from external sources:
///   [`Fact`](RelType::Fact) (taken as facts, e.g. a gene's genome
///   position) and [`Similarity`](RelType::Similarity) (computed, e.g.
///   sequence homology), the latter typically carrying evidence values.
/// * **Structural** relationships capture source structure:
///   [`Contains`](RelType::Contains) (source ↔ its partitions) and
///   [`IsA`](RelType::IsA) (term hierarchy inside a taxonomy).
/// * **Derived** relationships are computed by GenMapper itself:
///   [`Composed`](RelType::Composed) (transitive combination of mappings)
///   and [`Subsumed`](RelType::Subsumed) (closure of the IS_A structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RelType {
    Fact,
    Similarity,
    Contains,
    IsA,
    Composed,
    Subsumed,
}

impl RelType {
    /// Integer code as stored in the `SOURCE_REL.type` column.
    pub fn code(self) -> i64 {
        match self {
            RelType::Fact => 0,
            RelType::Similarity => 1,
            RelType::Contains => 2,
            RelType::IsA => 3,
            RelType::Composed => 4,
            RelType::Subsumed => 5,
        }
    }

    /// Decode a stored integer code.
    pub fn from_code(code: i64) -> GamResult<Self> {
        Ok(match code {
            0 => RelType::Fact,
            1 => RelType::Similarity,
            2 => RelType::Contains,
            3 => RelType::IsA,
            4 => RelType::Composed,
            5 => RelType::Subsumed,
            _ => {
                return Err(GamError::BadEnumCode {
                    what: "relationship type",
                    code,
                })
            }
        })
    }

    /// Imported annotation relationship (Fact or Similarity).
    pub fn is_annotation(self) -> bool {
        matches!(self, RelType::Fact | RelType::Similarity)
    }

    /// Structural relationship (Contains or IsA).
    pub fn is_structural(self) -> bool {
        matches!(self, RelType::Contains | RelType::IsA)
    }

    /// Relationship derived by GenMapper (Composed or Subsumed).
    pub fn is_derived(self) -> bool {
        matches!(self, RelType::Composed | RelType::Subsumed)
    }

    /// All relationship types.
    pub fn all() -> [RelType; 6] {
        [
            RelType::Fact,
            RelType::Similarity,
            RelType::Contains,
            RelType::IsA,
            RelType::Composed,
            RelType::Subsumed,
        ]
    }
}

impl fmt::Display for RelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RelType::Fact => "Fact",
            RelType::Similarity => "Similarity",
            RelType::Contains => "Contains",
            RelType::IsA => "IS_A",
            RelType::Composed => "Composed",
            RelType::Subsumed => "Subsumed",
        })
    }
}

/// A row of the `SOURCE` table.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Source {
    pub id: SourceId,
    /// Source name, unique (e.g. "LocusLink", "GO.BiologicalProcess").
    pub name: String,
    pub content: SourceContent,
    pub structure: SourceStructure,
    /// Audit information used for duplicate elimination at the source
    /// level: the release tag of the imported dump (paper §4.1 "we examine
    /// source names and audit information, such as date and release").
    pub release: Option<String>,
    /// Monotonic import sequence number (audit date surrogate).
    pub imported_seq: u64,
}

/// A row of the `OBJECT` table.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GamObject {
    pub id: ObjectId,
    pub source: SourceId,
    /// Source-specific identifier, unique within the source.
    pub accession: String,
    /// Optional textual component (e.g. the object's name).
    pub text: Option<String>,
    /// Optional numeric representation.
    pub number: Option<f64>,
}

impl GamObject {
    /// Validate domain constraints.
    pub fn validate(&self) -> GamResult<()> {
        if self.accession.is_empty() {
            return Err(GamError::Invalid("object accession is empty".into()));
        }
        Ok(())
    }
}

/// A row of the `SOURCE_REL` table: a mapping between two sources (or
/// within one source, for structural relationships).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SourceRel {
    pub id: SourceRelId,
    pub source1: SourceId,
    pub source2: SourceId,
    pub rel_type: RelType,
    /// For derived mappings, a human-readable derivation (e.g. the mapping
    /// path "Unigene-LocusLink-GO" of a Composed mapping).
    pub derivation: Option<String>,
}

impl SourceRel {
    /// Validate domain constraints: structural relationships live within or
    /// below a source; annotation mappings connect two distinct sources.
    pub fn validate(&self) -> GamResult<()> {
        if self.rel_type.is_annotation() && self.source1 == self.source2 {
            return Err(GamError::Invalid(format!(
                "annotation mapping {} relates source {} to itself",
                self.id, self.source1
            )));
        }
        Ok(())
    }
}

/// A row of the `OBJECT_REL` table: one association between two objects,
/// belonging to a source-level mapping.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObjectRel {
    pub id: ObjectRelId,
    pub source_rel: SourceRelId,
    pub object1: ObjectId,
    pub object2: ObjectId,
    /// Computed plausibility of the association in `[0, 1]`; `None` for
    /// fact associations.
    pub evidence: Option<f64>,
}

impl ObjectRel {
    /// Validate domain constraints.
    pub fn validate(&self) -> GamResult<()> {
        if let Some(e) = self.evidence {
            if !(0.0..=1.0).contains(&e) || e.is_nan() {
                return Err(GamError::BadEvidence(e));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_codes_roundtrip() {
        for c in [SourceContent::Gene, SourceContent::Protein, SourceContent::Other] {
            assert_eq!(SourceContent::from_code(c.code()).unwrap(), c);
        }
        for s in [SourceStructure::Flat, SourceStructure::Network] {
            assert_eq!(SourceStructure::from_code(s.code()).unwrap(), s);
        }
        for t in RelType::all() {
            assert_eq!(RelType::from_code(t.code()).unwrap(), t);
        }
        assert!(SourceContent::from_code(99).is_err());
        assert!(SourceStructure::from_code(-1).is_err());
        assert!(RelType::from_code(6).is_err());
    }

    #[test]
    fn reltype_classification_partitions() {
        for t in RelType::all() {
            let flags = [t.is_annotation(), t.is_structural(), t.is_derived()];
            assert_eq!(flags.iter().filter(|f| **f).count(), 1, "{t} in exactly one class");
        }
        assert!(RelType::Fact.is_annotation());
        assert!(RelType::Similarity.is_annotation());
        assert!(RelType::Contains.is_structural());
        assert!(RelType::IsA.is_structural());
        assert!(RelType::Composed.is_derived());
        assert!(RelType::Subsumed.is_derived());
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(RelType::IsA.to_string(), "IS_A");
        assert_eq!(RelType::Composed.to_string(), "Composed");
        assert_eq!(SourceContent::Gene.to_string(), "Gene");
        assert_eq!(SourceStructure::Network.to_string(), "Network");
    }

    #[test]
    fn validation_rules() {
        let obj = GamObject {
            id: ObjectId(1),
            source: SourceId(1),
            accession: String::new(),
            text: None,
            number: None,
        };
        assert!(obj.validate().is_err());

        let rel = SourceRel {
            id: SourceRelId(1),
            source1: SourceId(1),
            source2: SourceId(1),
            rel_type: RelType::Fact,
            derivation: None,
        };
        assert!(rel.validate().is_err());
        let rel = SourceRel {
            rel_type: RelType::IsA,
            ..rel
        };
        assert!(rel.validate().is_ok(), "structural self-relations are fine");

        let assoc = ObjectRel {
            id: ObjectRelId(1),
            source_rel: SourceRelId(1),
            object1: ObjectId(1),
            object2: ObjectId(2),
            evidence: Some(1.5),
        };
        assert!(assoc.validate().is_err());
        let assoc = ObjectRel {
            evidence: Some(f64::NAN),
            ..assoc
        };
        assert!(assoc.validate().is_err());
        let assoc = ObjectRel {
            evidence: Some(0.9),
            ..assoc
        };
        assert!(assoc.validate().is_ok());
    }
}
