//! Read-only access to GAM content: the [`GamRead`] trait and the
//! immutable [`GamSnapshot`].
//!
//! The operators and the pathfinder only ever *read* the four GAM tables.
//! [`GamRead`] captures exactly that surface, with two implementors:
//!
//! * [`GamStore`] — the live store; reads go through the relational
//!   database (and, for paged stores, the buffer pool).
//! * [`GamSnapshot`] — a fully materialized, immutable copy of the GAM
//!   content, captured from a store at a quiescent point. Reads never
//!   touch the database again, so any number of threads can query a
//!   snapshot while a writer mutates the live store.
//!
//! Every `GamSnapshot` accessor returns exactly what the corresponding
//! `GamStore` accessor returned at capture time — including ordering and
//! error values — pinned by the equivalence tests below. This is the
//! foundation of the system's MVCC read path: the writer captures a
//! snapshot after each batch of mutations and publishes it with one atomic
//! `Arc` swap; readers execute entirely against the published snapshot.

use crate::error::{GamError, GamResult};
use crate::ids::{ObjectId, SourceId, SourceRelId};
use crate::index::MappingIndex;
use crate::mapping::{Association, Mapping};
use crate::model::{GamObject, RelType, Source, SourceRel};
use crate::store::{GamCardinalities, GamStore};
use std::collections::HashMap;
use std::sync::Arc;

/// The read-only surface of a GAM store. `Sync` is a supertrait so one
/// reader can serve the concurrent per-target resolution of
/// `generate_view_par` and be shared across service handler threads.
pub trait GamRead: Sync {
    /// All `SOURCE` rows, ordered by id.
    fn sources(&self) -> GamResult<Vec<Source>>;

    /// Find a source by its unique name.
    fn find_source(&self, name: &str) -> GamResult<Option<Source>>;

    /// Fetch a source by id.
    fn get_source(&self, id: SourceId) -> GamResult<Source>;

    /// All objects of a source, in accession order.
    fn objects_of(&self, source: SourceId) -> GamResult<Vec<GamObject>>;

    /// Ids of all objects of a source, in accession order.
    fn object_ids_of(&self, source: SourceId) -> GamResult<Vec<ObjectId>>;

    /// Number of objects of a source.
    fn object_count(&self, source: SourceId) -> GamResult<usize>;

    /// Find an object by (source, accession).
    fn find_object(&self, source: SourceId, accession: &str) -> GamResult<Option<GamObject>>;

    /// Fetch an object by id.
    fn get_object(&self, id: ObjectId) -> GamResult<GamObject>;

    /// Resolve many accessions of one source to object ids, in input
    /// order; unknown accessions come back as `None`.
    fn resolve_accessions(
        &self,
        source: SourceId,
        accessions: &[&str],
    ) -> GamResult<Vec<Option<ObjectId>>>;

    /// All `SOURCE_REL` rows, ordered by id.
    fn source_rels(&self) -> GamResult<Vec<SourceRel>>;

    /// Fetch a source-level relationship by id.
    fn get_source_rel(&self, id: SourceRelId) -> GamResult<SourceRel>;

    /// All relationships stored with exactly this (source1, source2)
    /// orientation.
    fn source_rels_between(
        &self,
        source1: SourceId,
        source2: SourceId,
    ) -> GamResult<Vec<SourceRel>>;

    /// First relationship between two sources in either orientation; the
    /// flag is `true` when stored as (source1, source2).
    fn find_source_rel(
        &self,
        source1: SourceId,
        source2: SourceId,
        rel_type: Option<RelType>,
    ) -> GamResult<Option<(SourceRel, bool)>> {
        for rel in self.source_rels_between(source1, source2)? {
            if rel_type.is_none_or(|t| rel.rel_type == t) {
                return Ok(Some((rel, true)));
            }
        }
        for rel in self.source_rels_between(source2, source1)? {
            if rel_type.is_none_or(|t| rel.rel_type == t) {
                return Ok(Some((rel, false)));
            }
        }
        Ok(None)
    }

    /// Load a stored mapping's associations in canonical order.
    fn load_mapping(&self, id: SourceRelId) -> GamResult<Mapping>;

    /// Load a stored mapping directly in CSR form.
    fn load_mapping_index(&self, id: SourceRelId) -> GamResult<MappingIndex>;

    /// [`load_mapping_index`](Self::load_mapping_index) behind an `Arc`.
    /// Snapshots override this to hand out their pre-built shared index
    /// without copying.
    fn load_mapping_index_shared(&self, id: SourceRelId) -> GamResult<Arc<MappingIndex>> {
        Ok(Arc::new(self.load_mapping_index(id)?))
    }

    /// Number of associations of a mapping.
    fn association_count(&self, id: SourceRelId) -> GamResult<usize>;

    /// All associations touching an object, in either role, each oriented
    /// so `from` is the queried object.
    fn associations_of_object(
        &self,
        object: ObjectId,
    ) -> GamResult<Vec<(SourceRelId, Association)>>;

    /// Object counts grouped by source.
    fn object_counts_per_source(&self) -> GamResult<Vec<(SourceId, usize)>>;

    /// Mapping and association counts broken down by relationship type.
    fn mapping_type_counts(&self) -> GamResult<Vec<(RelType, usize, usize)>>;

    /// The four headline table cardinalities.
    fn cardinalities(&self) -> GamResult<GamCardinalities>;
}

impl GamRead for GamStore {
    fn sources(&self) -> GamResult<Vec<Source>> {
        GamStore::sources(self)
    }

    fn find_source(&self, name: &str) -> GamResult<Option<Source>> {
        GamStore::find_source(self, name)
    }

    fn get_source(&self, id: SourceId) -> GamResult<Source> {
        GamStore::get_source(self, id)
    }

    fn objects_of(&self, source: SourceId) -> GamResult<Vec<GamObject>> {
        GamStore::objects_of(self, source)
    }

    fn object_ids_of(&self, source: SourceId) -> GamResult<Vec<ObjectId>> {
        GamStore::object_ids_of(self, source)
    }

    fn object_count(&self, source: SourceId) -> GamResult<usize> {
        GamStore::object_count(self, source)
    }

    fn find_object(&self, source: SourceId, accession: &str) -> GamResult<Option<GamObject>> {
        GamStore::find_object(self, source, accession)
    }

    fn get_object(&self, id: ObjectId) -> GamResult<GamObject> {
        GamStore::get_object(self, id)
    }

    fn resolve_accessions(
        &self,
        source: SourceId,
        accessions: &[&str],
    ) -> GamResult<Vec<Option<ObjectId>>> {
        GamStore::resolve_accessions(self, source, accessions)
    }

    fn source_rels(&self) -> GamResult<Vec<SourceRel>> {
        GamStore::source_rels(self)
    }

    fn get_source_rel(&self, id: SourceRelId) -> GamResult<SourceRel> {
        GamStore::get_source_rel(self, id)
    }

    fn source_rels_between(
        &self,
        source1: SourceId,
        source2: SourceId,
    ) -> GamResult<Vec<SourceRel>> {
        GamStore::source_rels_between(self, source1, source2)
    }

    fn find_source_rel(
        &self,
        source1: SourceId,
        source2: SourceId,
        rel_type: Option<RelType>,
    ) -> GamResult<Option<(SourceRel, bool)>> {
        GamStore::find_source_rel(self, source1, source2, rel_type)
    }

    fn load_mapping(&self, id: SourceRelId) -> GamResult<Mapping> {
        GamStore::load_mapping(self, id)
    }

    fn load_mapping_index(&self, id: SourceRelId) -> GamResult<MappingIndex> {
        GamStore::load_mapping_index(self, id)
    }

    fn association_count(&self, id: SourceRelId) -> GamResult<usize> {
        GamStore::association_count(self, id)
    }

    fn associations_of_object(
        &self,
        object: ObjectId,
    ) -> GamResult<Vec<(SourceRelId, Association)>> {
        GamStore::associations_of_object(self, object)
    }

    fn object_counts_per_source(&self) -> GamResult<Vec<(SourceId, usize)>> {
        GamStore::object_counts_per_source(self)
    }

    fn mapping_type_counts(&self) -> GamResult<Vec<(RelType, usize, usize)>> {
        GamStore::mapping_type_counts(self)
    }

    fn cardinalities(&self) -> GamResult<GamCardinalities> {
        GamStore::cardinalities(self)
    }
}

/// A fully materialized, immutable copy of a store's GAM content.
///
/// Capture walks the store's own public read API, so every accessor
/// reproduces the store's answers — ordering included — as of the capture
/// point. Mapping indexes are built once and shared behind `Arc`s;
/// profiling aggregates are precomputed.
#[derive(Debug, Clone)]
pub struct GamSnapshot {
    sources: Vec<Source>,
    source_by_name: HashMap<String, usize>,
    source_pos: HashMap<SourceId, usize>,
    /// Per source, objects in the store's accession order.
    objects: HashMap<SourceId, Vec<GamObject>>,
    /// object id → (source, position in that source's object vector).
    object_pos: HashMap<ObjectId, (SourceId, usize)>,
    /// (source, accession) → position, for exact-accession lookups.
    accession_pos: HashMap<SourceId, HashMap<String, usize>>,
    rels: Vec<SourceRel>,
    rel_pos: HashMap<SourceRelId, usize>,
    rels_by_pair: HashMap<(SourceId, SourceId), Vec<SourceRel>>,
    indexes: HashMap<SourceRelId, Arc<MappingIndex>>,
    assoc_counts: HashMap<SourceRelId, usize>,
    assocs_by_object: HashMap<ObjectId, Vec<(SourceRelId, Association)>>,
    counts_per_source: Vec<(SourceId, usize)>,
    type_counts: Vec<(RelType, usize, usize)>,
    cards: GamCardinalities,
}

impl GamSnapshot {
    /// Capture the store's current GAM content. The borrow guarantees no
    /// mutation happens mid-capture.
    pub fn capture(store: &GamStore) -> GamResult<GamSnapshot> {
        let sources = store.sources()?;
        let mut source_by_name = HashMap::with_capacity(sources.len());
        let mut source_pos = HashMap::with_capacity(sources.len());
        for (i, s) in sources.iter().enumerate() {
            source_by_name.insert(s.name.clone(), i);
            source_pos.insert(s.id, i);
        }

        let mut objects = HashMap::with_capacity(sources.len());
        let mut object_pos = HashMap::new();
        let mut accession_pos: HashMap<SourceId, HashMap<String, usize>> =
            HashMap::with_capacity(sources.len());
        for s in &sources {
            let objs = store.objects_of(s.id)?;
            let mut by_acc = HashMap::with_capacity(objs.len());
            for (i, o) in objs.iter().enumerate() {
                object_pos.insert(o.id, (s.id, i));
                by_acc.insert(o.accession.clone(), i);
            }
            accession_pos.insert(s.id, by_acc);
            objects.insert(s.id, objs);
        }

        let rels = store.source_rels()?;
        let mut rel_pos = HashMap::with_capacity(rels.len());
        for (i, r) in rels.iter().enumerate() {
            rel_pos.insert(r.id, i);
        }
        // rebuild the by_pair buckets through the store's own lookup so
        // within-pair ordering is exactly what the store returns
        let mut rels_by_pair: HashMap<(SourceId, SourceId), Vec<SourceRel>> = HashMap::new();
        for r in &rels {
            let key = (r.source1, r.source2);
            if let std::collections::hash_map::Entry::Vacant(slot) = rels_by_pair.entry(key) {
                slot.insert(store.source_rels_between(key.0, key.1)?);
            }
        }

        let mut indexes = HashMap::with_capacity(rels.len());
        let mut assoc_counts = HashMap::with_capacity(rels.len());
        for r in &rels {
            indexes.insert(r.id, Arc::new(store.load_mapping_index(r.id)?));
            assoc_counts.insert(r.id, store.association_count(r.id)?);
        }

        let mut assocs_by_object = HashMap::new();
        for objs in objects.values() {
            for o in objs {
                let assocs = store.associations_of_object(o.id)?;
                if !assocs.is_empty() {
                    assocs_by_object.insert(o.id, assocs);
                }
            }
        }

        Ok(GamSnapshot {
            counts_per_source: store.object_counts_per_source()?,
            type_counts: store.mapping_type_counts()?,
            cards: store.cardinalities()?,
            sources,
            source_by_name,
            source_pos,
            objects,
            object_pos,
            accession_pos,
            rels,
            rel_pos,
            rels_by_pair,
            indexes,
            assoc_counts,
            assocs_by_object,
        })
    }

    /// Total number of associations across all mappings (size indicator).
    pub fn association_total(&self) -> usize {
        self.cards.associations
    }
}

impl GamRead for GamSnapshot {
    fn sources(&self) -> GamResult<Vec<Source>> {
        Ok(self.sources.clone())
    }

    fn find_source(&self, name: &str) -> GamResult<Option<Source>> {
        Ok(self.source_by_name.get(name).map(|&i| self.sources[i].clone()))
    }

    fn get_source(&self, id: SourceId) -> GamResult<Source> {
        self.source_pos
            .get(&id)
            .map(|&i| self.sources[i].clone())
            .ok_or(GamError::UnknownSource(id))
    }

    fn objects_of(&self, source: SourceId) -> GamResult<Vec<GamObject>> {
        Ok(self.objects.get(&source).cloned().unwrap_or_default())
    }

    fn object_ids_of(&self, source: SourceId) -> GamResult<Vec<ObjectId>> {
        Ok(self
            .objects
            .get(&source)
            .map(|v| v.iter().map(|o| o.id).collect())
            .unwrap_or_default())
    }

    fn object_count(&self, source: SourceId) -> GamResult<usize> {
        Ok(self.objects.get(&source).map(Vec::len).unwrap_or(0))
    }

    fn find_object(&self, source: SourceId, accession: &str) -> GamResult<Option<GamObject>> {
        Ok(self.accession_pos.get(&source).and_then(|by_acc| {
            by_acc
                .get(accession)
                .map(|&i| self.objects[&source][i].clone())
        }))
    }

    fn get_object(&self, id: ObjectId) -> GamResult<GamObject> {
        self.object_pos
            .get(&id)
            .map(|&(src, i)| self.objects[&src][i].clone())
            .ok_or(GamError::UnknownObject(id))
    }

    fn resolve_accessions(
        &self,
        source: SourceId,
        accessions: &[&str],
    ) -> GamResult<Vec<Option<ObjectId>>> {
        let by_acc = self.accession_pos.get(&source);
        Ok(accessions
            .iter()
            .map(|acc| {
                by_acc
                    .and_then(|m| m.get(*acc))
                    .map(|&i| self.objects[&source][i].id)
            })
            .collect())
    }

    fn source_rels(&self) -> GamResult<Vec<SourceRel>> {
        Ok(self.rels.clone())
    }

    fn get_source_rel(&self, id: SourceRelId) -> GamResult<SourceRel> {
        self.rel_pos
            .get(&id)
            .map(|&i| self.rels[i].clone())
            .ok_or(GamError::UnknownSourceRel(id))
    }

    fn source_rels_between(
        &self,
        source1: SourceId,
        source2: SourceId,
    ) -> GamResult<Vec<SourceRel>> {
        Ok(self
            .rels_by_pair
            .get(&(source1, source2))
            .cloned()
            .unwrap_or_default())
    }

    fn load_mapping(&self, id: SourceRelId) -> GamResult<Mapping> {
        // the store's load_mapping returns canonical order, which is
        // exactly what the CSR round-trip produces (pinned by the gam
        // index tests and the equivalence tests below)
        self.indexes
            .get(&id)
            .map(|idx| idx.to_mapping())
            .ok_or(GamError::UnknownSourceRel(id))
    }

    fn load_mapping_index(&self, id: SourceRelId) -> GamResult<MappingIndex> {
        self.indexes
            .get(&id)
            .map(|idx| (**idx).clone())
            .ok_or(GamError::UnknownSourceRel(id))
    }

    fn load_mapping_index_shared(&self, id: SourceRelId) -> GamResult<Arc<MappingIndex>> {
        self.indexes
            .get(&id)
            .map(Arc::clone)
            .ok_or(GamError::UnknownSourceRel(id))
    }

    fn association_count(&self, id: SourceRelId) -> GamResult<usize> {
        self.assoc_counts
            .get(&id)
            .copied()
            .ok_or(GamError::UnknownSourceRel(id))
    }

    fn associations_of_object(
        &self,
        object: ObjectId,
    ) -> GamResult<Vec<(SourceRelId, Association)>> {
        Ok(self.assocs_by_object.get(&object).cloned().unwrap_or_default())
    }

    fn object_counts_per_source(&self) -> GamResult<Vec<(SourceId, usize)>> {
        Ok(self.counts_per_source.clone())
    }

    fn mapping_type_counts(&self) -> GamResult<Vec<(RelType, usize, usize)>> {
        Ok(self.type_counts.clone())
    }

    fn cardinalities(&self) -> GamResult<GamCardinalities> {
        Ok(self.cards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SourceContent, SourceStructure};

    /// A store exercising every shape the snapshot must reproduce: several
    /// sources, mixed evidence, both rel orientations, a structural rel, a
    /// source with no objects, objects with no associations.
    fn fixture() -> GamStore {
        let mut s = GamStore::in_memory().unwrap();
        let a = s
            .create_source("Alpha", SourceContent::Gene, SourceStructure::Flat, Some("r1"))
            .unwrap()
            .id;
        let b = s
            .create_source("Beta", SourceContent::Protein, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let go = s
            .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
            .unwrap()
            .id;
        s.create_source("Empty", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap();
        let ao: Vec<ObjectId> = (0..5)
            .map(|i| s.create_object(a, &format!("a{i}"), Some(&format!("gene {i}")), None).unwrap())
            .collect();
        let bo: Vec<ObjectId> = (0..4)
            .map(|i| s.create_object(b, &format!("b{i}"), None, Some(i as f64)).unwrap())
            .collect();
        let go_o: Vec<ObjectId> = (0..3)
            .map(|i| s.create_object(go, &format!("GO:000{i}"), None, None).unwrap())
            .collect();
        let ab = s.create_source_rel(a, b, RelType::Fact, None).unwrap();
        let ba = s.create_source_rel(b, a, RelType::Similarity, None).unwrap();
        let ag = s.create_source_rel(a, go, RelType::Fact, None).unwrap();
        let isa = s.create_source_rel(go, go, RelType::IsA, None).unwrap();
        s.add_association(ab, ao[0], bo[0], None).unwrap();
        s.add_association(ab, ao[1], bo[1], None).unwrap();
        s.add_association(ba, bo[2], ao[2], Some(0.75)).unwrap();
        s.add_association(ba, bo[0], ao[0], Some(0.5)).unwrap();
        s.add_association(ag, ao[0], go_o[0], None).unwrap();
        s.add_association(ag, ao[3], go_o[2], None).unwrap();
        s.add_association(isa, go_o[1], go_o[0], None).unwrap();
        s.add_association(isa, go_o[2], go_o[1], None).unwrap();
        s
    }

    #[test]
    fn snapshot_reproduces_every_store_answer() {
        let store = fixture();
        let snap = GamSnapshot::capture(&store).unwrap();
        let s: &dyn GamRead = &store;
        let n: &dyn GamRead = &snap;

        assert_eq!(n.sources().unwrap(), s.sources().unwrap());
        assert_eq!(n.cardinalities().unwrap(), s.cardinalities().unwrap());
        assert_eq!(
            n.object_counts_per_source().unwrap(),
            s.object_counts_per_source().unwrap()
        );
        assert_eq!(n.mapping_type_counts().unwrap(), s.mapping_type_counts().unwrap());
        assert_eq!(n.source_rels().unwrap(), s.source_rels().unwrap());

        for name in ["Alpha", "Beta", "GO", "Empty", "Nope"] {
            assert_eq!(n.find_source(name).unwrap(), s.find_source(name).unwrap(), "{name}");
        }
        for src in s.sources().unwrap() {
            assert_eq!(n.get_source(src.id).unwrap(), s.get_source(src.id).unwrap());
            assert_eq!(n.objects_of(src.id).unwrap(), s.objects_of(src.id).unwrap());
            assert_eq!(n.object_ids_of(src.id).unwrap(), s.object_ids_of(src.id).unwrap());
            assert_eq!(n.object_count(src.id).unwrap(), s.object_count(src.id).unwrap());
            for acc in ["a0", "a4", "b2", "GO:0001", "missing"] {
                assert_eq!(
                    n.find_object(src.id, acc).unwrap(),
                    s.find_object(src.id, acc).unwrap(),
                    "{} / {acc}",
                    src.name
                );
            }
            let keys = ["a1", "b0", "a1", "GO:0002", "zzz"];
            assert_eq!(
                n.resolve_accessions(src.id, &keys).unwrap(),
                s.resolve_accessions(src.id, &keys).unwrap()
            );
            for other in s.sources().unwrap() {
                assert_eq!(
                    n.source_rels_between(src.id, other.id).unwrap(),
                    s.source_rels_between(src.id, other.id).unwrap()
                );
                for t in [None, Some(RelType::Fact), Some(RelType::IsA)] {
                    assert_eq!(
                        n.find_source_rel(src.id, other.id, t).unwrap(),
                        s.find_source_rel(src.id, other.id, t).unwrap()
                    );
                }
            }
            for obj in s.objects_of(src.id).unwrap() {
                assert_eq!(n.get_object(obj.id).unwrap(), s.get_object(obj.id).unwrap());
                assert_eq!(
                    n.associations_of_object(obj.id).unwrap(),
                    s.associations_of_object(obj.id).unwrap()
                );
            }
        }
        for rel in s.source_rels().unwrap() {
            assert_eq!(n.get_source_rel(rel.id).unwrap(), s.get_source_rel(rel.id).unwrap());
            assert_eq!(
                n.association_count(rel.id).unwrap(),
                s.association_count(rel.id).unwrap()
            );
            let sm = s.load_mapping(rel.id).unwrap();
            let nm = n.load_mapping(rel.id).unwrap();
            assert_eq!((nm.from, nm.to, nm.rel_type), (sm.from, sm.to, sm.rel_type));
            let bits = |m: &Mapping| -> Vec<(ObjectId, ObjectId, Option<u64>)> {
                m.pairs
                    .iter()
                    .map(|a| (a.from, a.to, a.evidence.map(f64::to_bits)))
                    .collect()
            };
            assert_eq!(bits(&nm), bits(&sm), "rel {}", rel.id);
            assert_eq!(
                n.load_mapping_index(rel.id).unwrap(),
                s.load_mapping_index(rel.id).unwrap()
            );
            assert_eq!(
                *n.load_mapping_index_shared(rel.id).unwrap(),
                *s.load_mapping_index_shared(rel.id).unwrap()
            );
        }
    }

    #[test]
    fn snapshot_error_values_match_store() {
        let store = fixture();
        let snap = GamSnapshot::capture(&store).unwrap();
        let bad_src = SourceId(999);
        let bad_obj = ObjectId(999);
        let bad_rel = SourceRelId(999);
        assert!(matches!(snap.get_source(bad_src), Err(GamError::UnknownSource(_))));
        assert!(matches!(snap.get_object(bad_obj), Err(GamError::UnknownObject(_))));
        assert!(matches!(
            snap.get_source_rel(bad_rel),
            Err(GamError::UnknownSourceRel(_))
        ));
        assert!(matches!(
            snap.load_mapping(bad_rel),
            Err(GamError::UnknownSourceRel(_))
        ));
        assert!(matches!(
            snap.load_mapping_index(bad_rel),
            Err(GamError::UnknownSourceRel(_))
        ));
        assert!(matches!(
            snap.association_count(bad_rel),
            Err(GamError::UnknownSourceRel(_))
        ));
        // lookups over unknown sources degrade to empty, like the store's
        // index prefix scans
        assert!(snap.objects_of(bad_src).unwrap().is_empty());
        assert!(snap.associations_of_object(bad_obj).unwrap().is_empty());
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut store = fixture();
        let snap = GamSnapshot::capture(&store).unwrap();
        let before = snap.cardinalities().unwrap();
        let a = store.find_source("Alpha").unwrap().unwrap().id;
        store.create_object(a, "late", None, None).unwrap();
        store
            .create_source("Late", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap();
        assert_eq!(snap.cardinalities().unwrap(), before);
        assert!(snap.find_source("Late").unwrap().is_none());
        assert!(snap.find_object(a, "late").unwrap().is_none());
        assert_ne!(store.cardinalities().unwrap(), before);
    }
}
