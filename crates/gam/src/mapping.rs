//! The [`Mapping`] currency: a source-level relationship together with its
//! object-level associations, as manipulated by the high-level operators
//! (paper §4.2, Table 2).

use crate::ids::{ObjectId, SourceId};
use crate::model::RelType;
use std::collections::BTreeSet;

/// One object-level association inside a mapping.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Association {
    /// Object on the domain side (belongs to [`Mapping::from`]).
    pub from: ObjectId,
    /// Object on the range side (belongs to [`Mapping::to`]).
    pub to: ObjectId,
    /// Plausibility in `[0, 1]`; `None` for fact associations.
    pub evidence: Option<f64>,
}

impl Association {
    /// A fact association (no evidence value).
    pub fn fact(from: ObjectId, to: ObjectId) -> Self {
        Association {
            from,
            to,
            evidence: None,
        }
    }

    /// An association with evidence.
    pub fn scored(from: ObjectId, to: ObjectId, evidence: f64) -> Self {
        Association {
            from,
            to,
            evidence: Some(evidence),
        }
    }

    /// Effective evidence for composition: facts count as 1.0.
    pub fn effective_evidence(&self) -> f64 {
        self.evidence.unwrap_or(1.0)
    }
}

/// A materialized (in-memory) mapping between two sources: the unit that
/// `Map` returns and that `Compose`, `RestrictDomain`, `RestrictRange` and
/// `GenerateView` consume.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mapping {
    /// Domain source (the paper's `S`).
    pub from: SourceId,
    /// Range source (the paper's `T`).
    pub to: SourceId,
    /// Relationship type of the backing `SOURCE_REL` row(s).
    pub rel_type: RelType,
    /// The associations. Not necessarily deduplicated; see
    /// [`Mapping::dedup`].
    pub pairs: Vec<Association>,
}

impl Mapping {
    /// An empty mapping between two sources.
    pub fn empty(from: SourceId, to: SourceId, rel_type: RelType) -> Self {
        Mapping {
            from,
            to,
            rel_type,
            pairs: Vec::new(),
        }
    }

    /// Number of associations.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the mapping holds no associations.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The paper's `Domain(map)`: `SELECT DISTINCT S FROM map`.
    pub fn domain(&self) -> BTreeSet<ObjectId> {
        self.pairs.iter().map(|a| a.from).collect()
    }

    /// The paper's `Range(map)`: `SELECT DISTINCT T FROM map`.
    pub fn range(&self) -> BTreeSet<ObjectId> {
        self.pairs.iter().map(|a| a.to).collect()
    }

    /// The paper's `RestrictDomain(map, s)`: `SELECT * FROM map WHERE S in s`.
    pub fn restrict_domain(&self, objects: &BTreeSet<ObjectId>) -> Mapping {
        Mapping {
            from: self.from,
            to: self.to,
            rel_type: self.rel_type,
            pairs: self
                .pairs
                .iter()
                .filter(|a| objects.contains(&a.from))
                .copied()
                .collect(),
        }
    }

    /// The paper's `RestrictRange(map, t)`: `SELECT * FROM map WHERE T in t`.
    pub fn restrict_range(&self, objects: &BTreeSet<ObjectId>) -> Mapping {
        Mapping {
            from: self.from,
            to: self.to,
            rel_type: self.rel_type,
            pairs: self
                .pairs
                .iter()
                .filter(|a| objects.contains(&a.to))
                .copied()
                .collect(),
        }
    }

    /// Swap domain and range.
    pub fn inverse(&self) -> Mapping {
        Mapping {
            from: self.to,
            to: self.from,
            rel_type: self.rel_type,
            pairs: self
                .pairs
                .iter()
                .map(|a| Association {
                    from: a.to,
                    to: a.from,
                    evidence: a.evidence,
                })
                .collect(),
        }
    }

    /// Remove duplicate (from, to) pairs, keeping the highest evidence
    /// (facts, counting as 1.0, dominate scored associations; a fact also
    /// beats an explicit `Some(1.0)` score, so ties cannot depend on input
    /// order). The comparator is a total order under which tied elements
    /// are bit-identical, which makes the result a pure function of the
    /// pair *multiset* — any producer emitting the same pairs in any order
    /// (hash join, merge join, partitioned workers) dedups to the same
    /// mapping — and lets the sort run unstable and in place, without the
    /// temporary buffer a stable sort allocates.
    pub fn dedup(&mut self) {
        self.pairs.sort_unstable_by(|a, b| {
            (a.from, a.to)
                .cmp(&(b.from, b.to))
                .then_with(|| b.effective_evidence().total_cmp(&a.effective_evidence()))
                .then_with(|| a.evidence.is_some().cmp(&b.evidence.is_some()))
        });
        self.pairs.dedup_by_key(|a| (a.from, a.to));
    }

    /// Sort associations for deterministic output.
    pub fn sort(&mut self) {
        self.pairs
            .sort_by_key(|a| (a.from, a.to));
    }

    /// Assemble a mapping from per-partition association buffers, then
    /// dedup. [`Mapping::dedup`] is a pure function of the association
    /// multiset (its tie-break makes tied elements bit-identical), so the
    /// final mapping is bit-identical to the sequential result regardless
    /// of how many partitions ran or how their buffers interleave. The
    /// buffers are still concatenated in the order given, without any
    /// intermediate per-pair maps.
    pub fn from_parts(
        from: SourceId,
        to: SourceId,
        rel_type: RelType,
        parts: Vec<Vec<Association>>,
    ) -> Mapping {
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut pairs = Vec::with_capacity(total);
        for part in parts {
            pairs.extend(part);
        }
        let mut m = Mapping {
            from,
            to,
            rel_type,
            pairs,
        };
        m.dedup();
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Mapping {
        Mapping {
            from: SourceId(1),
            to: SourceId(2),
            rel_type: RelType::Fact,
            pairs: vec![
                Association::fact(ObjectId(1), ObjectId(10)),
                Association::fact(ObjectId(2), ObjectId(20)),
                Association::fact(ObjectId(2), ObjectId(21)),
            ],
        }
    }

    #[test]
    fn table2_domain_and_range() {
        // Table 2: map = {s1<->t1, s2<->t2}; Domain = {s1, s2}; Range = {t1, t2}
        let map = Mapping {
            from: SourceId(1),
            to: SourceId(2),
            rel_type: RelType::Fact,
            pairs: vec![
                Association::fact(ObjectId(1), ObjectId(11)),
                Association::fact(ObjectId(2), ObjectId(12)),
            ],
        };
        assert_eq!(map.domain(), [ObjectId(1), ObjectId(2)].into());
        assert_eq!(map.range(), [ObjectId(11), ObjectId(12)].into());
    }

    #[test]
    fn table2_restrictions() {
        // RestrictDomain(map, {s1}) = {s1<->t1}
        let map = m();
        let restricted = map.restrict_domain(&[ObjectId(1)].into());
        assert_eq!(restricted.pairs, vec![Association::fact(ObjectId(1), ObjectId(10))]);
        // RestrictRange(map, {t2}) = {s2<->t2}
        let restricted = map.restrict_range(&[ObjectId(20)].into());
        assert_eq!(restricted.pairs, vec![Association::fact(ObjectId(2), ObjectId(20))]);
        // restriction to the full domain is identity
        let full = map.restrict_domain(&map.domain());
        assert_eq!(full.pairs, map.pairs);
    }

    #[test]
    fn domain_is_distinct() {
        let map = m();
        assert_eq!(map.domain().len(), 2); // object 2 appears twice
        assert_eq!(map.range().len(), 3);
    }

    #[test]
    fn inverse_twice_is_identity() {
        let map = m();
        assert_eq!(map.inverse().inverse(), map);
        let inv = map.inverse();
        assert_eq!(inv.from, SourceId(2));
        assert_eq!(inv.domain(), map.range());
    }

    #[test]
    fn dedup_keeps_best_evidence() {
        let mut map = Mapping {
            from: SourceId(1),
            to: SourceId(2),
            rel_type: RelType::Similarity,
            pairs: vec![
                Association::scored(ObjectId(1), ObjectId(10), 0.4),
                Association::scored(ObjectId(1), ObjectId(10), 0.9),
                Association::fact(ObjectId(2), ObjectId(20)),
                Association::scored(ObjectId(2), ObjectId(20), 0.99),
            ],
        };
        map.dedup();
        assert_eq!(map.len(), 2);
        assert_eq!(map.pairs[0].evidence, Some(0.9));
        // fact (1.0) beats 0.99
        assert_eq!(map.pairs[1].evidence, None);
    }

    #[test]
    fn dedup_is_order_independent_even_on_ties() {
        // fact and scored(1.0) tie on effective evidence; the canonical
        // tie-break must pick the fact regardless of input order
        for pairs in [
            vec![
                Association::fact(ObjectId(1), ObjectId(10)),
                Association::scored(ObjectId(1), ObjectId(10), 1.0),
            ],
            vec![
                Association::scored(ObjectId(1), ObjectId(10), 1.0),
                Association::fact(ObjectId(1), ObjectId(10)),
            ],
        ] {
            let mut map = Mapping {
                from: SourceId(1),
                to: SourceId(2),
                rel_type: RelType::Similarity,
                pairs,
            };
            map.dedup();
            assert_eq!(map.len(), 1);
            assert_eq!(map.pairs[0].evidence, None);
        }
    }

    #[test]
    fn from_parts_equals_sequential_build() {
        let all = vec![
            Association::scored(ObjectId(1), ObjectId(10), 0.4),
            Association::fact(ObjectId(2), ObjectId(20)),
            Association::scored(ObjectId(1), ObjectId(10), 0.9),
            Association::scored(ObjectId(2), ObjectId(20), 0.99),
            Association::fact(ObjectId(3), ObjectId(30)),
        ];
        let mut seq = Mapping {
            from: SourceId(1),
            to: SourceId(2),
            rel_type: RelType::Composed,
            pairs: all.clone(),
        };
        seq.dedup();
        // any contiguous in-order split reconstructs the same mapping
        for split in 0..=all.len() {
            let parts = vec![all[..split].to_vec(), all[split..].to_vec()];
            let par = Mapping::from_parts(SourceId(1), SourceId(2), RelType::Composed, parts);
            assert_eq!(par, seq, "split at {split}");
        }
    }

    #[test]
    fn effective_evidence() {
        assert_eq!(Association::fact(ObjectId(1), ObjectId(2)).effective_evidence(), 1.0);
        assert_eq!(
            Association::scored(ObjectId(1), ObjectId(2), 0.25).effective_evidence(),
            0.25
        );
    }
}
