//! Compressed-sparse-row (CSR) form of a [`Mapping`]: the physical
//! representation the system caches and joins.
//!
//! A [`MappingIndex`] stores a canonical (deduplicated, `(from, to)`-sorted)
//! mapping as two adjacency views:
//!
//! * **forward** — distinct domain objects in `fwd_keys`, with
//!   `fwd_offsets[i]..fwd_offsets[i + 1]` delimiting key `i`'s slice of the
//!   `fwd_to` targets array;
//! * **inverse** — distinct range objects in `inv_keys`, whose buckets hold
//!   the domain partner (`inv_from`) and the *forward position*
//!   (`inv_pos`) of each association, so range-side traversals can reach
//!   the shared evidence columns without a second copy.
//!
//! Evidence is columnar: `evidence[pos]` holds the effective evidence of
//! forward position `pos` (facts as `1.0`) and a bitmask records which
//! positions are facts, so `Option<f64>` round-trips losslessly — including
//! the distinction between a fact and an explicit `Some(1.0)` score, and
//! exact bit patterns of scored values.
//!
//! `Domain`/`Range` are the key arrays themselves; `RestrictDomain` /
//! `RestrictRange` are binary searches over them (iterating whichever side
//! is smaller); `Compose` in `operators` merge-joins `inv_keys` against the
//! other index's `fwd_keys`. Every operation is pinned bit-identical to the
//! `Vec<Association>` reference implementations by the property tests in
//! `crates/operators/tests/csr_prop.rs`.

use crate::ids::{ObjectId, SourceId};
use crate::mapping::{Association, Mapping};
use crate::model::RelType;
use std::collections::BTreeSet;
use std::ops::Range;

/// Cardinality and skew statistics collected while sealing an index in
/// [`MappingIndexBuilder::finish`]. They are a pure function of the
/// association multiset (so two equal indexes always carry equal stats)
/// and cost nothing beyond the offset arrays the builder derives anyway.
/// The query planner in `operators::plan` reads them to estimate
/// intermediate Compose cardinalities and to pick a join strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Number of associations (`len()`).
    pub len: usize,
    /// Distinct domain objects (`domain_keys().len()`).
    pub domain_keys: usize,
    /// Distinct range objects (`range_keys().len()`).
    pub range_keys: usize,
    /// Widest forward bucket (max associations per domain object).
    pub max_fwd_fanout: usize,
    /// Widest inverse bucket (max associations per range object).
    pub max_inv_fanout: usize,
    /// Associations carrying an explicit score (non-fact). Zero means the
    /// index is pure facts, whose Compose products are exact — the planner
    /// only reorders chains when this holds for every step.
    pub scored: usize,
    /// Largest effective evidence over all associations (facts count as
    /// 1.0; 0.0 when empty). Floor pushdown beneath a Compose step is only
    /// sound when every *other* step multiplies by at most 1.0.
    pub max_effective: f64,
    /// Smallest effective evidence (1.0 when empty). Together with
    /// `max_effective`, certifies every score lies in `[0, 1]` — the
    /// monotonicity precondition of the planner's floor pushdown.
    pub min_effective: f64,
}

impl IndexStats {
    /// Mean forward fanout (associations per distinct domain object).
    pub fn avg_fwd_fanout(&self) -> f64 {
        if self.domain_keys == 0 {
            0.0
        } else {
            self.len as f64 / self.domain_keys as f64
        }
    }

    /// Mean inverse fanout (associations per distinct range object).
    pub fn avg_inv_fanout(&self) -> f64 {
        if self.range_keys == 0 {
            0.0
        } else {
            self.len as f64 / self.range_keys as f64
        }
    }

    /// Cheap skew ratio: widest forward bucket over the mean. 1.0 for
    /// perfectly uniform fanout, large when a hub object dominates.
    pub fn fwd_skew(&self) -> f64 {
        let avg = self.avg_fwd_fanout();
        if avg == 0.0 {
            1.0
        } else {
            self.max_fwd_fanout as f64 / avg
        }
    }

    /// Skew ratio of the inverse side.
    pub fn inv_skew(&self) -> f64 {
        let avg = self.avg_inv_fanout();
        if avg == 0.0 {
            1.0
        } else {
            self.max_inv_fanout as f64 / avg
        }
    }
}

/// A canonical mapping in compressed-sparse-row form. Construction always
/// goes through [`MappingIndex::build`] or [`MappingIndexBuilder`], so an
/// instance is canonical by invariant: keys strictly ascending, buckets
/// sorted, one association per (from, to).
#[derive(Debug, Clone, PartialEq)]
pub struct MappingIndex {
    /// Domain source (the paper's `S`).
    pub from: SourceId,
    /// Range source (the paper's `T`).
    pub to: SourceId,
    /// Relationship type of the backing `SOURCE_REL` row(s).
    pub rel_type: RelType,
    fwd_keys: Vec<ObjectId>,
    fwd_offsets: Vec<u32>,
    fwd_to: Vec<ObjectId>,
    /// Effective evidence per forward position (facts count as 1.0).
    evidence: Vec<f64>,
    /// Bit `pos` set ⇔ forward position `pos` is a fact (`evidence: None`).
    fact_mask: Vec<u64>,
    inv_keys: Vec<ObjectId>,
    inv_offsets: Vec<u32>,
    inv_from: Vec<ObjectId>,
    inv_pos: Vec<u32>,
    /// Build-time statistics (see [`IndexStats`]), cached with the index so
    /// the planner never rescans the arrays.
    stats: IndexStats,
}

impl MappingIndex {
    /// Index a mapping. Non-canonical inputs are deduplicated first (via
    /// [`Mapping::dedup`], whose tie-break makes the result a pure function
    /// of the pair multiset); already-canonical inputs — anything loaded
    /// from the store or produced by `from_parts` — skip the sort entirely.
    pub fn build(mut mapping: Mapping) -> MappingIndex {
        let canonical = mapping
            .pairs
            .windows(2)
            .all(|w| (w[0].from, w[0].to) < (w[1].from, w[1].to));
        if !canonical {
            mapping.dedup();
        }
        let mut b = MappingIndexBuilder::new(mapping.from, mapping.to, mapping.rel_type);
        for a in &mapping.pairs {
            b.push(a.from, a.to, a.evidence);
        }
        b.finish()
    }

    /// An empty index between two sources.
    pub fn empty(from: SourceId, to: SourceId, rel_type: RelType) -> MappingIndex {
        MappingIndexBuilder::new(from, to, rel_type).finish()
    }

    /// Number of associations.
    pub fn len(&self) -> usize {
        self.fwd_to.len()
    }

    /// Build-time cardinality/skew statistics (see [`IndexStats`]).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// True if the index holds no associations.
    pub fn is_empty(&self) -> bool {
        self.fwd_to.is_empty()
    }

    /// Distinct domain objects, ascending (the paper's `Domain(map)` as a
    /// zero-copy slice).
    pub fn domain_keys(&self) -> &[ObjectId] {
        &self.fwd_keys
    }

    /// Distinct range objects, ascending.
    pub fn range_keys(&self) -> &[ObjectId] {
        &self.inv_keys
    }

    /// The paper's `Domain(map)` in the operators' `BTreeSet` currency.
    pub fn domain(&self) -> BTreeSet<ObjectId> {
        self.fwd_keys.iter().copied().collect()
    }

    /// The paper's `Range(map)`.
    pub fn range(&self) -> BTreeSet<ObjectId> {
        self.inv_keys.iter().copied().collect()
    }

    /// Forward positions of domain key `i`.
    pub fn fwd_range(&self, i: usize) -> Range<usize> {
        self.fwd_offsets[i] as usize..self.fwd_offsets[i + 1] as usize
    }

    /// Inverse positions of range key `i`.
    pub fn inv_range(&self, i: usize) -> Range<usize> {
        self.inv_offsets[i] as usize..self.inv_offsets[i + 1] as usize
    }

    /// Target object at forward position `pos`.
    pub fn to_at(&self, pos: usize) -> ObjectId {
        self.fwd_to[pos]
    }

    /// Domain partner at inverse position `pos`.
    pub fn inv_from_at(&self, pos: usize) -> ObjectId {
        self.inv_from[pos]
    }

    /// Forward position backing inverse position `pos` (shared evidence).
    pub fn inv_fwd_pos(&self, pos: usize) -> usize {
        self.inv_pos[pos] as usize
    }

    /// Evidence at forward position `pos`, reconstructing `None` for facts.
    pub fn evidence_at(&self, pos: usize) -> Option<f64> {
        if self.fact_mask[pos / 64] >> (pos % 64) & 1 == 1 {
            None
        } else {
            Some(self.evidence[pos])
        }
    }

    /// Effective evidence at forward position `pos` (facts count as 1.0).
    pub fn effective_evidence_at(&self, pos: usize) -> f64 {
        self.evidence[pos]
    }

    /// Bucket index of a domain object, if present.
    pub fn domain_bucket(&self, obj: ObjectId) -> Option<usize> {
        self.fwd_keys.binary_search(&obj).ok()
    }

    /// Bucket index of a range object, if present.
    pub fn range_bucket(&self, obj: ObjectId) -> Option<usize> {
        self.inv_keys.binary_search(&obj).ok()
    }

    /// Domain key owning forward position `pos` (binary search over the
    /// offsets array; forward buckets are never empty).
    pub fn key_of_pos(&self, pos: usize) -> ObjectId {
        let i = self.fwd_offsets.partition_point(|&o| o as usize <= pos) - 1;
        self.fwd_keys[i]
    }

    /// Associations in canonical (from, to) order.
    pub fn iter(&self) -> impl Iterator<Item = Association> + '_ {
        self.fwd_keys.iter().enumerate().flat_map(move |(i, &k)| {
            self.fwd_range(i).map(move |pos| Association {
                from: k,
                to: self.fwd_to[pos],
                evidence: self.evidence_at(pos),
            })
        })
    }

    /// Materialize back into the `Vec`-based currency, in canonical order —
    /// bit-identical to the mapping this index was built from (after its
    /// dedup).
    pub fn to_mapping(&self) -> Mapping {
        Mapping {
            from: self.from,
            to: self.to,
            rel_type: self.rel_type,
            pairs: self.iter().collect(),
        }
    }

    fn emit_bucket(&self, i: usize, out: &mut Vec<Association>) {
        let key = self.fwd_keys[i];
        for pos in self.fwd_range(i) {
            out.push(Association {
                from: key,
                to: self.fwd_to[pos],
                evidence: self.evidence_at(pos),
            });
        }
    }

    /// The paper's `RestrictDomain(map, s)` as binary searches over the
    /// forward key array, iterating whichever of the two sorted sides is
    /// smaller. Output order equals the canonical pair order, i.e. exactly
    /// what [`Mapping::restrict_domain`] yields on the canonical mapping.
    pub fn restrict_domain(&self, objects: &BTreeSet<ObjectId>) -> Mapping {
        let mut pairs = Vec::new();
        if objects.len() <= self.fwd_keys.len() {
            for &obj in objects {
                if let Ok(i) = self.fwd_keys.binary_search(&obj) {
                    self.emit_bucket(i, &mut pairs);
                }
            }
        } else {
            for (i, &k) in self.fwd_keys.iter().enumerate() {
                if objects.contains(&k) {
                    self.emit_bucket(i, &mut pairs);
                }
            }
        }
        Mapping {
            from: self.from,
            to: self.to,
            rel_type: self.rel_type,
            pairs,
        }
    }

    /// The paper's `RestrictRange(map, t)` via the inverse view: gather the
    /// forward positions of every selected range bucket, sort them, and
    /// emit — reproducing the canonical pair order of
    /// [`Mapping::restrict_range`].
    pub fn restrict_range(&self, objects: &BTreeSet<ObjectId>) -> Mapping {
        let mut positions: Vec<u32> = Vec::new();
        if objects.len() <= self.inv_keys.len() {
            for &obj in objects {
                if let Ok(i) = self.inv_keys.binary_search(&obj) {
                    positions.extend_from_slice(&self.inv_pos[self.inv_range(i)]);
                }
            }
        } else {
            for (i, &k) in self.inv_keys.iter().enumerate() {
                if objects.contains(&k) {
                    positions.extend_from_slice(&self.inv_pos[self.inv_range(i)]);
                }
            }
        }
        positions.sort_unstable();
        let pairs = positions
            .iter()
            .map(|&pos| {
                let pos = pos as usize;
                Association {
                    from: self.key_of_pos(pos),
                    to: self.fwd_to[pos],
                    evidence: self.evidence_at(pos),
                }
            })
            .collect();
        Mapping {
            from: self.from,
            to: self.to,
            rel_type: self.rel_type,
            pairs,
        }
    }

    /// Keep only associations with effective evidence `>= floor`,
    /// preserving canonical order (equivalent to `retain` on the pairs).
    pub fn filter_evidence(&self, floor: f64) -> MappingIndex {
        let mut b = MappingIndexBuilder::new(self.from, self.to, self.rel_type);
        for (i, &k) in self.fwd_keys.iter().enumerate() {
            for pos in self.fwd_range(i) {
                if self.evidence[pos] >= floor {
                    b.push(k, self.fwd_to[pos], self.evidence_at(pos));
                }
            }
        }
        b.finish()
    }
}

/// Streaming constructor for a [`MappingIndex`]: feed associations in
/// strictly ascending `(from, to)` order (one per pair) and call
/// [`finish`](MappingIndexBuilder::finish). The batched `OBJECT_REL` load
/// path pushes straight from the store's `by_pair` index scan, which
/// delivers exactly that order, so no sort or dedup runs at load time.
#[derive(Debug)]
pub struct MappingIndexBuilder {
    from: SourceId,
    to: SourceId,
    rel_type: RelType,
    fwd_keys: Vec<ObjectId>,
    fwd_offsets: Vec<u32>,
    fwd_to: Vec<ObjectId>,
    evidence: Vec<f64>,
    fact_mask: Vec<u64>,
    last: Option<(ObjectId, ObjectId)>,
}

impl MappingIndexBuilder {
    /// Start an empty index between two sources.
    pub fn new(from: SourceId, to: SourceId, rel_type: RelType) -> Self {
        MappingIndexBuilder {
            from,
            to,
            rel_type,
            fwd_keys: Vec::new(),
            fwd_offsets: Vec::new(),
            fwd_to: Vec::new(),
            evidence: Vec::new(),
            fact_mask: Vec::new(),
            last: None,
        }
    }

    /// Append one association. Pairs must arrive in strictly ascending
    /// `(from, to)` order.
    pub fn push(&mut self, from: ObjectId, to: ObjectId, evidence: Option<f64>) {
        assert!(
            self.last.is_none_or(|prev| prev < (from, to)),
            "MappingIndexBuilder::push out of order: {:?} after {:?}",
            (from, to),
            self.last
        );
        self.last = Some((from, to));
        let pos = self.fwd_to.len();
        assert!(pos < u32::MAX as usize, "MappingIndex overflows u32 positions");
        if self.fwd_keys.last() != Some(&from) {
            self.fwd_keys.push(from);
            self.fwd_offsets.push(pos as u32);
        }
        self.fwd_to.push(to);
        self.evidence.push(evidence.unwrap_or(1.0));
        if pos / 64 == self.fact_mask.len() {
            self.fact_mask.push(0);
        }
        if evidence.is_none() {
            self.fact_mask[pos / 64] |= 1 << (pos % 64);
        }
    }

    /// Seal the forward arrays and derive the inverse view.
    pub fn finish(mut self) -> MappingIndex {
        let n = self.fwd_to.len();
        self.fwd_offsets.push(n as u32);
        // inverse: (to, from, fwd position), sorted; (to, from) is unique
        // because (from, to) is
        let mut tmp: Vec<(ObjectId, ObjectId, u32)> = Vec::with_capacity(n);
        for (i, &k) in self.fwd_keys.iter().enumerate() {
            let lo = self.fwd_offsets[i] as usize;
            let hi = self.fwd_offsets[i + 1] as usize;
            for pos in lo..hi {
                tmp.push((self.fwd_to[pos], k, pos as u32));
            }
        }
        tmp.sort_unstable();
        let mut inv_keys = Vec::new();
        let mut inv_offsets = Vec::new();
        let mut inv_from = Vec::with_capacity(n);
        let mut inv_pos = Vec::with_capacity(n);
        for (to, from, pos) in tmp {
            if inv_keys.last() != Some(&to) {
                inv_keys.push(to);
                inv_offsets.push(inv_from.len() as u32);
            }
            inv_from.push(from);
            inv_pos.push(pos);
        }
        inv_offsets.push(n as u32);
        let max_fanout = |offsets: &[u32]| {
            offsets
                .windows(2)
                .map(|w| (w[1] - w[0]) as usize)
                .max()
                .unwrap_or(0)
        };
        let facts: usize = self.fact_mask.iter().map(|w| w.count_ones() as usize).sum();
        let stats = IndexStats {
            len: n,
            domain_keys: self.fwd_keys.len(),
            range_keys: inv_keys.len(),
            max_fwd_fanout: max_fanout(&self.fwd_offsets),
            max_inv_fanout: max_fanout(&inv_offsets),
            scored: n - facts,
            max_effective: self.evidence.iter().fold(0.0, |a: f64, &e| a.max(e)),
            min_effective: self.evidence.iter().fold(1.0, |a: f64, &e| a.min(e)),
        };
        MappingIndex {
            from: self.from,
            to: self.to,
            rel_type: self.rel_type,
            fwd_keys: self.fwd_keys,
            fwd_offsets: self.fwd_offsets,
            fwd_to: self.fwd_to,
            evidence: self.evidence,
            fact_mask: self.fact_mask,
            inv_keys,
            inv_offsets,
            inv_from,
            inv_pos,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mapping {
        Mapping {
            from: SourceId(1),
            to: SourceId(2),
            rel_type: RelType::Similarity,
            pairs: vec![
                Association::scored(ObjectId(1), ObjectId(10), 0.5),
                Association::fact(ObjectId(1), ObjectId(11)),
                Association::scored(ObjectId(2), ObjectId(10), 1.0),
                Association::fact(ObjectId(4), ObjectId(12)),
                Association::scored(ObjectId(4), ObjectId(13), 0.25),
            ],
        }
    }

    fn bits(m: &Mapping) -> Vec<(ObjectId, ObjectId, Option<u64>)> {
        m.pairs
            .iter()
            .map(|a| (a.from, a.to, a.evidence.map(f64::to_bits)))
            .collect()
    }

    #[test]
    fn roundtrip_is_bit_identical_to_canonical_mapping() {
        let m = sample();
        let idx = MappingIndex::build(m.clone());
        assert_eq!(idx.len(), 5);
        assert_eq!(bits(&idx.to_mapping()), bits(&m));
        assert_eq!(idx.to_mapping(), m);
        // non-canonical input dedups first
        let mut shuffled = m.clone();
        shuffled.pairs.reverse();
        shuffled.pairs.push(Association::scored(ObjectId(1), ObjectId(10), 0.1));
        let idx2 = MappingIndex::build(shuffled);
        assert_eq!(bits(&idx2.to_mapping()), bits(&m));
    }

    #[test]
    fn fact_and_certain_score_stay_distinct() {
        let m = Mapping {
            from: SourceId(1),
            to: SourceId(2),
            rel_type: RelType::Fact,
            pairs: vec![
                Association::fact(ObjectId(1), ObjectId(10)),
                Association::scored(ObjectId(1), ObjectId(11), 1.0),
            ],
        };
        let idx = MappingIndex::build(m);
        assert_eq!(idx.evidence_at(0), None);
        assert_eq!(idx.evidence_at(1), Some(1.0));
        assert_eq!(idx.effective_evidence_at(0), 1.0);
        assert_eq!(idx.effective_evidence_at(1), 1.0);
    }

    #[test]
    fn domain_and_range_match_vec_implementation() {
        let m = sample();
        let idx = MappingIndex::build(m.clone());
        assert_eq!(idx.domain(), m.domain());
        assert_eq!(idx.range(), m.range());
        assert_eq!(idx.domain_keys(), &[ObjectId(1), ObjectId(2), ObjectId(4)]);
        assert_eq!(
            idx.range_keys(),
            &[ObjectId(10), ObjectId(11), ObjectId(12), ObjectId(13)]
        );
    }

    #[test]
    fn restricts_match_vec_implementation() {
        let m = sample();
        let idx = MappingIndex::build(m.clone());
        let subsets: [BTreeSet<ObjectId>; 4] = [
            BTreeSet::new(),
            [ObjectId(1)].into(),
            [ObjectId(1), ObjectId(4), ObjectId(99)].into(),
            m.domain(),
        ];
        for s in &subsets {
            assert_eq!(bits(&idx.restrict_domain(s)), bits(&m.restrict_domain(s)));
        }
        let subsets: [BTreeSet<ObjectId>; 4] = [
            BTreeSet::new(),
            [ObjectId(10)].into(),
            [ObjectId(10), ObjectId(13), ObjectId(99)].into(),
            m.range(),
        ];
        for t in &subsets {
            assert_eq!(bits(&idx.restrict_range(t)), bits(&m.restrict_range(t)));
        }
    }

    #[test]
    fn inverse_view_is_consistent() {
        let m = sample();
        let idx = MappingIndex::build(m.clone());
        // walking the inverse view reconstructs the same association set
        let mut via_inverse: Vec<(ObjectId, ObjectId, Option<u64>)> = Vec::new();
        for (i, &to) in idx.range_keys().iter().enumerate() {
            for p in idx.inv_range(i) {
                let fwd = idx.inv_fwd_pos(p);
                assert_eq!(idx.to_at(fwd), to);
                assert_eq!(idx.key_of_pos(fwd), idx.inv_from_at(p));
                via_inverse.push((
                    idx.inv_from_at(p),
                    to,
                    idx.evidence_at(fwd).map(f64::to_bits),
                ));
            }
        }
        via_inverse.sort_unstable();
        let mut expected = bits(&m);
        expected.sort_unstable();
        assert_eq!(via_inverse, expected);
    }

    #[test]
    fn filter_evidence_equals_retain() {
        let m = sample();
        let idx = MappingIndex::build(m.clone());
        for floor in [0.0, 0.3, 0.6, 1.0] {
            let filtered = idx.filter_evidence(floor);
            let mut reference = m.clone();
            reference.pairs.retain(|a| a.effective_evidence() >= floor);
            assert_eq!(bits(&filtered.to_mapping()), bits(&reference));
        }
    }

    #[test]
    fn empty_index() {
        let idx = MappingIndex::empty(SourceId(1), SourceId(2), RelType::Fact);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.domain_keys().is_empty());
        assert!(idx.range_keys().is_empty());
        assert!(idx.to_mapping().is_empty());
        assert_eq!(idx.restrict_domain(&[ObjectId(1)].into()).len(), 0);
    }

    #[test]
    fn stats_summarize_the_association_multiset() {
        let idx = MappingIndex::build(sample());
        let s = *idx.stats();
        assert_eq!(s.len, 5);
        assert_eq!(s.domain_keys, 3);
        assert_eq!(s.range_keys, 4);
        // object 1 and object 4 both map twice; object 10 is hit twice
        assert_eq!(s.max_fwd_fanout, 2);
        assert_eq!(s.max_inv_fanout, 2);
        assert_eq!(s.scored, 3);
        assert_eq!(s.max_effective, 1.0);
        assert_eq!(s.min_effective, 0.25);
        assert!((s.avg_fwd_fanout() - 5.0 / 3.0).abs() < 1e-12);
        assert!((s.fwd_skew() - 2.0 / (5.0 / 3.0)).abs() < 1e-12);
        // stats are recomputed by every constructor, so filtered indexes
        // describe themselves, not their parent
        let filtered = idx.filter_evidence(0.6);
        assert_eq!(filtered.stats().len, 3);
        assert_eq!(filtered.stats().scored, 1);
        let empty = MappingIndex::empty(SourceId(1), SourceId(2), RelType::Fact);
        assert_eq!(empty.stats().len, 0);
        assert_eq!(empty.stats().max_effective, 0.0);
        assert_eq!(empty.stats().min_effective, 1.0);
        assert_eq!(empty.stats().fwd_skew(), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn builder_rejects_out_of_order_pushes() {
        let mut b = MappingIndexBuilder::new(SourceId(1), SourceId(2), RelType::Fact);
        b.push(ObjectId(2), ObjectId(1), None);
        b.push(ObjectId(1), ObjectId(1), None);
    }
}
