//! GAM-level errors: storage failures plus domain violations.

use crate::ids::{ObjectId, SourceId, SourceRelId};
use std::fmt;

/// Convenience alias.
pub type GamResult<T> = Result<T, GamError>;

/// Errors raised by the GAM layer.
#[derive(Debug)]
pub enum GamError {
    /// Underlying storage-engine error.
    Store(relstore::StoreError),
    /// A source id did not resolve.
    UnknownSource(SourceId),
    /// A source name did not resolve.
    UnknownSourceName(String),
    /// An object id did not resolve.
    UnknownObject(ObjectId),
    /// A mapping id did not resolve.
    UnknownSourceRel(SourceRelId),
    /// No mapping exists between the two sources (the `Map` operation found
    /// nothing and composition was not requested or failed).
    NoMapping { from: SourceId, to: SourceId },
    /// A stored enum code was out of range (corrupt or foreign data).
    BadEnumCode { what: &'static str, code: i64 },
    /// An evidence value was outside `[0, 1]`.
    BadEvidence(f64),
    /// Domain validation failure (empty accession, self-mapping where
    /// forbidden, ...).
    Invalid(String),
}

impl fmt::Display for GamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GamError::Store(e) => write!(f, "storage error: {e}"),
            GamError::UnknownSource(id) => write!(f, "unknown source {id}"),
            GamError::UnknownSourceName(name) => write!(f, "unknown source name {name:?}"),
            GamError::UnknownObject(id) => write!(f, "unknown object {id}"),
            GamError::UnknownSourceRel(id) => write!(f, "unknown mapping {id}"),
            GamError::NoMapping { from, to } => {
                write!(f, "no mapping between {from} and {to}")
            }
            GamError::BadEnumCode { what, code } => {
                write!(f, "bad {what} code {code} in stored data")
            }
            GamError::BadEvidence(v) => write!(f, "evidence {v} outside [0, 1]"),
            GamError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for GamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GamError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<relstore::StoreError> for GamError {
    fn from(e: relstore::StoreError) -> Self {
        GamError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GamError::NoMapping {
            from: SourceId(1),
            to: SourceId(2),
        };
        assert!(e.to_string().contains("SourceId(1)"));
        let e: GamError = relstore::StoreError::NoSuchTable("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(GamError::BadEvidence(2.0).to_string().contains("2"));
    }
}
