//! Property tests for the GAM store: duplicate elimination, id stability,
//! mapping round-trips, and cardinality accounting under random workloads.

use gam::model::{RelType, SourceContent, SourceStructure};
use gam::{Association, GamStore, ObjectId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

fn arb_accession() -> impl Strategy<Value = String> {
    "[A-Z]{1,2}[0-9]{1,4}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// ensure_object is idempotent per (source, accession): the number of
    /// stored objects equals the number of distinct accessions, and ids
    /// are stable across repeats.
    #[test]
    fn object_dedup_matches_distinct_accessions(
        accessions in proptest::collection::vec(arb_accession(), 1..60),
    ) {
        let mut store = GamStore::in_memory().unwrap();
        let src = store
            .create_source("S", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let mut first_id: BTreeMap<&str, ObjectId> = BTreeMap::new();
        for acc in &accessions {
            let (id, created) = store.ensure_object(src, acc, None, None).unwrap();
            match first_id.get(acc.as_str()) {
                Some(&prev) => {
                    prop_assert!(!created);
                    prop_assert_eq!(prev, id, "id stable for {}", acc);
                }
                None => {
                    prop_assert!(created);
                    first_id.insert(acc, id);
                }
            }
        }
        let distinct: BTreeSet<&String> = accessions.iter().collect();
        prop_assert_eq!(store.object_count(src).unwrap(), distinct.len());
        prop_assert_eq!(store.cardinalities().unwrap().objects, distinct.len());
    }

    /// Bulk insert and per-row insert agree: same ids for same accessions,
    /// same final count.
    #[test]
    fn bulk_and_single_inserts_agree(
        accessions in proptest::collection::vec(arb_accession(), 1..50),
    ) {
        let rows: Vec<(String, Option<String>, Option<f64>)> = accessions
            .iter()
            .map(|a| (a.clone(), None, None))
            .collect();

        let mut bulk_store = GamStore::in_memory().unwrap();
        let src_b = bulk_store
            .create_source("S", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let (bulk_ids, _) = bulk_store.add_objects_bulk(src_b, &rows).unwrap();

        let mut single_store = GamStore::in_memory().unwrap();
        let src_s = single_store
            .create_source("S", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let mut single_ids = Vec::new();
        for acc in &accessions {
            let (id, _) = single_store.ensure_object(src_s, acc, None, None).unwrap();
            single_ids.push(id);
        }
        prop_assert_eq!(bulk_ids, single_ids);
        prop_assert_eq!(
            bulk_store.object_count(src_b).unwrap(),
            single_store.object_count(src_s).unwrap()
        );
    }

    /// Associations round-trip through load_mapping with exact pair
    /// dedup: stored count equals distinct (from, to) pairs, and the
    /// inverse orientation mirrors them.
    #[test]
    fn association_storage_roundtrip(
        pairs in proptest::collection::vec((0u64..20, 0u64..20, proptest::option::of(0.0f64..=1.0)), 0..80),
    ) {
        let mut store = GamStore::in_memory().unwrap();
        let a = store
            .create_source("A", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let b = store
            .create_source("B", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let mut a_ids = Vec::new();
        let mut b_ids = Vec::new();
        for i in 0..20 {
            a_ids.push(store.create_object(a, &format!("a{i}"), None, None).unwrap());
            b_ids.push(store.create_object(b, &format!("b{i}"), None, None).unwrap());
        }
        let rel = store.create_source_rel(a, b, RelType::Fact, None).unwrap();
        let assocs: Vec<Association> = pairs
            .iter()
            .map(|&(f, t, e)| Association {
                from: a_ids[f as usize],
                to: b_ids[t as usize],
                evidence: e,
            })
            .collect();
        let mut added = 0;
        store
            .add_associations_bulk(rel, assocs.iter().copied(), &mut added)
            .unwrap();
        let distinct: BTreeSet<(ObjectId, ObjectId)> =
            assocs.iter().map(|x| (x.from, x.to)).collect();
        prop_assert_eq!(added, distinct.len());
        let mapping = store.load_mapping(rel).unwrap();
        prop_assert_eq!(mapping.len(), distinct.len());
        let loaded: BTreeSet<(ObjectId, ObjectId)> =
            mapping.pairs.iter().map(|x| (x.from, x.to)).collect();
        prop_assert_eq!(&loaded, &distinct);
        // inverse mirrors
        let inv = mapping.inverse();
        let inv_pairs: BTreeSet<(ObjectId, ObjectId)> =
            inv.pairs.iter().map(|x| (x.to, x.from)).collect();
        prop_assert_eq!(&inv_pairs, &distinct);
        // cardinality accounting
        prop_assert_eq!(store.cardinalities().unwrap().associations, distinct.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A durable store reopened from disk answers identically to the
    /// in-memory original, for random small contents.
    #[test]
    fn durable_reopen_equivalence(
        accessions in proptest::collection::vec(arb_accession(), 1..25),
        links in proptest::collection::vec((0usize..25, 0usize..25), 0..40),
        case_id in 0u64..u64::MAX,
    ) {
        let dir = std::env::temp_dir()
            .join("gam-prop")
            .join(format!("{case_id:x}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cards;
        let rel;
        {
            let mut store = GamStore::open(&dir).unwrap();
            let a = store
                .create_source("A", SourceContent::Gene, SourceStructure::Flat, Some("r1"))
                .unwrap()
                .id;
            let b = store
                .create_source("B", SourceContent::Other, SourceStructure::Flat, None)
                .unwrap()
                .id;
            let mut a_ids = Vec::new();
            let mut b_ids = Vec::new();
            for acc in &accessions {
                let (id, _) = store.ensure_object(a, acc, None, None).unwrap();
                a_ids.push(id);
                let (id, _) = store
                    .ensure_object(b, &format!("x{acc}"), None, None)
                    .unwrap();
                b_ids.push(id);
            }
            rel = store.create_source_rel(a, b, RelType::Fact, None).unwrap();
            let mut added = 0;
            store
                .add_associations_bulk(
                    rel,
                    links.iter().map(|&(i, j)| {
                        Association::fact(a_ids[i % a_ids.len()], b_ids[j % b_ids.len()])
                    }),
                    &mut added,
                )
                .unwrap();
            store.checkpoint().unwrap();
            cards = store.cardinalities().unwrap();
        }
        {
            let store = GamStore::open(&dir).unwrap();
            prop_assert_eq!(store.cardinalities().unwrap(), cards);
            prop_assert_eq!(
                store.load_mapping(rel).unwrap().len(),
                cards.associations
            );
            let src = store.find_source("A").unwrap().unwrap();
            prop_assert_eq!(src.release.as_deref(), Some("r1"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
