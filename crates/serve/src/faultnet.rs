//! `FaultNet` — a deterministic in-process chaos proxy for the service.
//!
//! PR 4 made disk failure injectable (`FaultVfs` + `FaultPlan`); this is
//! the network analog. A `FaultNet` listens on a local port, forwards
//! every connection to one upstream server, and counts every forwarded
//! chunk (either direction) on one global op counter. A seeded
//! [`NetFaultPlan`] names the op index at which to misbehave:
//!
//! * `delay_at` — hold the chunk for `delay` before forwarding (latency
//!   spike);
//! * `disconnect_at` — drop both directions mid-stream (peer vanished);
//! * `torn_at` — forward a seeded *prefix* of the chunk, then drop both
//!   directions (torn frame: the peer sees a truncated request or
//!   response);
//! * `stall_at` — stop forwarding but keep the sockets open (the failure
//!   deadlines exist for: silence, not closure).
//!
//! Chunk boundaries follow TCP, so op indexing is deterministic for the
//! small one-write frames this protocol uses; the sweep in
//! `tests/chaos.rs` drives enough requests per point that every planned
//! index is reached. Counters report what actually fired.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often pump threads poll the stop flag while idle or stalled.
const POLL: Duration = Duration::from_millis(10);

/// One seeded fault plan: the global op index (1-based, counted over
/// forwarded chunks in both directions) at which each fault fires. Each
/// fault fires at most once per proxy.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Delay the chunk at this op by `delay`, then forward normally.
    pub delay_at: Option<u64>,
    /// The delay injected at `delay_at`.
    pub delay: Duration,
    /// Drop both directions of the affected connection at this op.
    pub disconnect_at: Option<u64>,
    /// Forward a seeded prefix of the chunk at this op, then drop both
    /// directions.
    pub torn_at: Option<u64>,
    /// Stop forwarding at this op but keep the sockets open until the
    /// proxy shuts down.
    pub stall_at: Option<u64>,
    /// Seed for the torn-prefix length.
    pub seed: u64,
}

/// What actually fired, for sweep assertions.
#[derive(Debug, Default)]
pub struct FaultCounters {
    pub delays: AtomicU64,
    pub disconnects: AtomicU64,
    pub torn: AtomicU64,
    pub stalls: AtomicU64,
}

impl FaultCounters {
    /// `(delays, disconnects, torn, stalls)` injected so far.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.delays.load(Ordering::SeqCst),
            self.disconnects.load(Ordering::SeqCst),
            self.torn.load(Ordering::SeqCst),
            self.stalls.load(Ordering::SeqCst),
        )
    }

    /// Total faults injected.
    pub fn total(&self) -> u64 {
        let (d, x, t, s) = self.snapshot();
        d + x + t + s
    }
}

/// A running chaos proxy. Connect clients to [`local_addr`](Self::local_addr);
/// traffic forwards to the upstream address given at start, with the
/// plan's faults injected.
pub struct FaultNet {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
    ops: Arc<AtomicU64>,
    counters: Arc<FaultCounters>,
}

impl FaultNet {
    /// Bind a fresh local port and start proxying to `upstream`.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> io::Result<FaultNet> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let ops = Arc::new(AtomicU64::new(0));
        let counters = Arc::new(FaultCounters::default());
        let acceptor = {
            let stop = stop.clone();
            let pumps = pumps.clone();
            let ops = ops.clone();
            let counters = counters.clone();
            std::thread::Builder::new()
                .name("faultnet-acceptor".to_owned())
                .spawn(move || {
                    acceptor_loop(&listener, upstream, &plan, &stop, &pumps, &ops, &counters)
                })?
        };
        Ok(FaultNet {
            local_addr,
            stop,
            acceptor: Some(acceptor),
            pumps,
            ops,
            counters,
        })
    }

    /// The proxy's listening address (point clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Chunks forwarded so far (both directions, all connections).
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// What actually fired.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Stop the proxy: kill all proxied connections (stalled ones
    /// included) and join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // unblock the acceptor
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.pumps.lock().unwrap_or_else(|p| p.into_inner());
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn acceptor_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &NetFaultPlan,
    stop: &Arc<AtomicBool>,
    pumps: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    ops: &Arc<AtomicU64>,
    counters: &Arc<FaultCounters>,
) {
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let server = match TcpStream::connect(upstream) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        // two pumps per connection; each holds handles on both sockets
        // (clones share descriptors) so a fault can sever the pair
        let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        let mut guard = pumps.lock().unwrap_or_else(|p| p.into_inner());
        for (src, dst) in [(client, server2), (server, client2)] {
            let plan = plan.clone();
            let stop = stop.clone();
            let ops = ops.clone();
            let counters = counters.clone();
            let spawned = std::thread::Builder::new()
                .name("faultnet-pump".to_owned())
                .spawn(move || pump(src, dst, &plan, &stop, &ops, &counters));
            if let Ok(handle) = spawned {
                guard.push(handle);
            }
        }
    }
}

/// Forward `src` → `dst` chunk by chunk, injecting the planned fault when
/// the global op counter hits its index. Any fault or stream end severs
/// both sockets (clones share the underlying descriptors, so the partner
/// pump ends too).
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: &NetFaultPlan,
    stop: &AtomicBool,
    ops: &AtomicU64,
    counters: &FaultCounters,
) {
    // short read timeout so the stop flag is polled even on idle streams
    let _ = src.set_read_timeout(Some(POLL));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return sever(&src, &dst);
        }
        let n = match src.read(&mut buf) {
            Ok(0) => return sever(&src, &dst),
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue
            }
            Err(_) => return sever(&src, &dst),
        };
        let op = ops.fetch_add(1, Ordering::SeqCst) + 1;
        if plan.disconnect_at == Some(op) {
            counters.disconnects.fetch_add(1, Ordering::SeqCst);
            return sever(&src, &dst);
        }
        if plan.torn_at == Some(op) {
            counters.torn.fetch_add(1, Ordering::SeqCst);
            // a strict prefix: at least 0, at most n-1 bytes make it out
            let keep = (torn_mix(plan.seed, op) % n as u64) as usize;
            let _ = dst.write_all(&buf[..keep]);
            return sever(&src, &dst);
        }
        if plan.stall_at == Some(op) {
            counters.stalls.fetch_add(1, Ordering::SeqCst);
            // hold the chunk and the connection: the peer sees silence
            // until its deadline (or proxy shutdown)
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(POLL);
            }
            return sever(&src, &dst);
        }
        if plan.delay_at == Some(op) {
            counters.delays.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(plan.delay);
        }
        if dst.write_all(&buf[..n]).is_err() {
            return sever(&src, &dst);
        }
    }
}

/// Kill both directions of a proxied pair.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// SplitMix64 over (seed, op) — the torn-prefix length source.
fn torn_mix(seed: u64, op: u64) -> u64 {
    let mut x = seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial upstream echo server for proxy unit tests.
    fn echo_server() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // serve a bounded number of connections then exit
            for _ in 0..8 {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut buf = [0u8; 1024];
                while let Ok(n) = stream.read(&mut buf) {
                    if n == 0 || stream.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
            }
        });
        (addr, handle)
    }

    #[test]
    fn forwards_cleanly_without_a_plan() {
        let (upstream, _srv) = echo_server();
        let net = FaultNet::start(upstream, NetFaultPlan::default()).unwrap();
        let mut conn = TcpStream::connect(net.local_addr()).unwrap();
        conn.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        conn.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        assert!(net.ops() >= 2, "request + response chunks counted");
        assert_eq!(net.counters().total(), 0);
        net.shutdown();
    }

    #[test]
    fn disconnect_fires_at_the_planned_op() {
        let (upstream, _srv) = echo_server();
        let plan = NetFaultPlan {
            disconnect_at: Some(2),
            ..NetFaultPlan::default()
        };
        let net = FaultNet::start(upstream, plan).unwrap();
        let mut conn = TcpStream::connect(net.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(300))).unwrap();
        // op 1 forwards the request; op 2 (the echo) is dropped and both
        // directions die — every client op from there on fails fast
        conn.write_all(b"one").unwrap();
        let mut back = [0u8; 3];
        assert!(
            conn.read_exact(&mut back).is_err(),
            "echo chunk must be dropped by the disconnect"
        );
        assert_eq!(net.counters().snapshot().1, 1, "disconnect fired");
        net.shutdown();
    }

    #[test]
    fn stall_holds_the_connection_past_a_deadline() {
        let (upstream, _srv) = echo_server();
        let plan = NetFaultPlan {
            stall_at: Some(1),
            ..NetFaultPlan::default()
        };
        let net = FaultNet::start(upstream, plan).unwrap();
        let mut conn = TcpStream::connect(net.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(80))).unwrap();
        conn.write_all(b"never-forwarded").unwrap();
        let mut b = [0u8; 1];
        let err = conn.read_exact(&mut b).unwrap_err();
        assert!(
            matches!(err.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            "stall looks like silence, got {err:?}"
        );
        assert_eq!(net.counters().snapshot().3, 1, "stall fired");
        // shutdown releases the stalled pump promptly
        net.shutdown();
    }

    #[test]
    fn torn_forwards_a_strict_prefix() {
        let (upstream, _srv) = echo_server();
        let plan = NetFaultPlan {
            torn_at: Some(1),
            seed: 42,
            ..NetFaultPlan::default()
        };
        let net = FaultNet::start(upstream, plan).unwrap();
        let mut conn = TcpStream::connect(net.local_addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        conn.write_all(b"0123456789").unwrap();
        let mut got = Vec::new();
        let _ = conn.read_to_end(&mut got);
        assert!(got.len() < 10, "echo of a torn request must be short: {got:?}");
        assert_eq!(net.counters().snapshot().2, 1, "torn fired");
        net.shutdown();
    }
}
