//! A concurrent annotation service over one [`SharedGenMapper`].
//!
//! The paper deploys GenMapper behind a web interface queried by many
//! users while imports run in the back office (§5). This crate reproduces
//! that shape as a small threaded TCP service: every read request
//! (query / generate-view / pathfinding / stats) executes against the
//! currently published [`genmapper::Snapshot`] — an `Arc` handle obtained
//! in one lock-free-in-spirit clone — while write requests (imports,
//! materializations) run under the single writer lock and publish a fresh
//! snapshot when done. Readers never block on the writer.
//!
//! # Protocol
//!
//! One request per line, UTF-8: `<endpoint> [args...]\n`. The response is
//! a header line followed by a length-delimited body:
//!
//! ```text
//! ok <len>\n<len bytes of body>
//! err <kind> <len>\n<len bytes of message>
//! ```
//!
//! `kind` is one of `bad-request`, `not-found`, `internal`. Connections
//! are persistent: clients may send any number of requests; `quit` (or
//! EOF) ends the connection. Query words use the same grammar as the CLI
//! REPL's `query` command.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod handler;
pub mod server;

pub use error::{ServeError, ServeErrorKind};
pub use handler::handle_request;
pub use server::{call, Server, ServerConfig, ServerStats};
