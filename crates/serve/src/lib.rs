//! A concurrent annotation service over one [`SharedGenMapper`].
//!
//! The paper deploys GenMapper behind a web interface queried by many
//! users while imports run in the back office (§5). This crate reproduces
//! that shape as a small threaded TCP service: every read request
//! (query / generate-view / pathfinding / stats) executes against the
//! currently published [`genmapper::Snapshot`] — an `Arc` handle obtained
//! in one lock-free-in-spirit clone — while write requests (imports,
//! materializations) run under the single writer lock and publish a fresh
//! snapshot when done. Readers never block on the writer.
//!
//! # Protocol
//!
//! One request per line, UTF-8: `<endpoint> [args...]\n`. The response is
//! a header line followed by a length-delimited body:
//!
//! ```text
//! ok <len>\n<len bytes of body>
//! err <kind> <len>\n<len bytes of message>
//! ```
//!
//! `kind` is one of `bad-request`, `not-found`, `too-large`, `busy`,
//! `timeout`, `unavailable`, `internal` — `busy` and `unavailable` are
//! retryable after backoff. Connections are persistent: clients may send
//! any number of requests; `quit` (or EOF) ends the connection. Query
//! words use the same grammar as the CLI REPL's `query` command.
//!
//! # Hardening
//!
//! The service treats every client as potentially slow or hostile
//! (DESIGN.md §15):
//!
//! * every accepted socket goes through the [`conn::ConnGuard`] seam —
//!   read/write deadlines plus a cap on the request line, so a slow-loris
//!   or unterminated request cannot pin a worker or grow memory;
//! * writes pass admission control ([`genmapper::SharedGenMapper::try_admit_write`]):
//!   beyond the configured in-flight budget they are shed with `err busy`
//!   instead of queueing invisibly behind the writer mutex — reads always
//!   proceed off the published snapshot;
//! * `health` / `ready` report liveness vs. drain state, and shed /
//!   timeout / oversize counters fold into `stats`;
//! * [`faultnet::FaultNet`] injects deterministic network faults
//!   (delays, disconnects, torn frames, stalls) for the chaos sweeps in
//!   `tests/chaos.rs` and `scripts/chaos_harness.rs`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod conn;
pub mod error;
pub mod faultnet;
pub mod handler;
pub mod server;

pub use conn::{
    call, call_retry, call_with, read_response, read_response_with, CallReport, ClientConfig,
    Response, RetryPolicy,
};
pub use error::{ServeError, ServeErrorKind};
pub use faultnet::{FaultNet, NetFaultPlan};
pub use handler::{handle_request, is_read_request, RequestContext};
pub use server::{Server, ServerConfig, ServerStats};
