//! Per-endpoint request handlers.
//!
//! [`handle_request`] is the whole service brain: it parses one request
//! line, grabs either the published snapshot (reads) or the writer lock
//! (writes), and renders a text body. It holds no lock while executing a
//! read — the snapshot `Arc` is cloned first, then the guard is gone —
//! which is the invariant genlint's snapshot-coherence check pins.

use crate::error::ServeError;
use crate::server::ServerStats;
use genmapper::cli::parse_query;
use genmapper::{SharedGenMapper, Snapshot};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::fmt::Write as _;
use std::sync::Arc;

/// Whether a handled request went down the read or the write path
/// (service statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    Read,
    Write,
}

/// Per-request service context: the write-admission budget, the service
/// counters folded into the `stats` body, and the draining flag `ready`
/// reports on.
#[derive(Debug, Clone, Copy)]
pub struct RequestContext<'a> {
    /// Writes admitted (queued or executing) beyond this budget are shed
    /// with retryable `err busy`.
    pub max_in_flight_writes: usize,
    /// Service counters, when handling inside a running server; `None`
    /// in bare/unit use omits the `service:` line from `stats`.
    pub stats: Option<&'a ServerStats>,
    /// True once graceful drain began — `ready` flips to unavailable
    /// while reads keep answering.
    pub draining: bool,
}

impl Default for RequestContext<'static> {
    /// Bare context for direct/unit use: unlimited write budget, no
    /// service counters, not draining.
    fn default() -> Self {
        RequestContext {
            max_in_flight_writes: usize::MAX,
            stats: None,
            draining: false,
        }
    }
}

/// Whether a request line names a read-class endpoint. Read-class
/// requests answer from the published snapshot, are never
/// admission-controlled, and are safe for clients to retry; anything
/// else (including unknown verbs) is treated as non-retryable.
pub fn is_read_request(line: &str) -> bool {
    matches!(
        line.split_whitespace().next().unwrap_or(""),
        "ping"
            | "stats"
            | "sources"
            | "query"
            | "explain"
            | "view"
            | "path"
            | "paths"
            | "info"
            | "import-status"
            | "health"
            | "ready"
    )
}

/// Handle one request line against the shared system. Returns the
/// response body and the request class.
pub fn handle_request(
    shared: &SharedGenMapper,
    line: &str,
    ctx: &RequestContext<'_>,
) -> Result<(String, RequestClass), ServeError> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let Some((&verb, rest)) = words.split_first() else {
        return Err(ServeError::bad_request("empty request"));
    };
    match verb {
        // ---------------- read path: published snapshot only ----------
        "ping" => Ok(("pong\n".to_owned(), RequestClass::Read)),
        // liveness: answers as long as the request loop runs, even while
        // draining — orchestrators should not kill a draining process
        "health" => Ok(("ok\n".to_owned(), RequestClass::Read)),
        // readiness: unavailable once drain began, so load balancers stop
        // routing new work while in-flight requests finish
        "ready" => {
            if ctx.draining {
                return Err(ServeError::unavailable(
                    "draining: finishing in-flight requests, not accepting new work",
                ));
            }
            let (v0, v1) = shared.snapshot().version();
            Ok((
                format!(
                    "ready version={v0}.{v1} in_flight_writes={}\n",
                    shared.in_flight_writes()
                ),
                RequestClass::Read,
            ))
        }
        "stats" => {
            let snap = shared.snapshot();
            Ok((render_stats(&snap, ctx)?, RequestClass::Read))
        }
        "sources" => {
            let snap = shared.snapshot();
            let mut out = String::new();
            for s in snap.sources()? {
                let _ = writeln!(out, "{}\t{}\t{}", s.name, s.content, s.structure);
            }
            Ok((out, RequestClass::Read))
        }
        "query" => {
            let spec = parse_query(rest).map_err(|e| ServeError::bad_request(e.to_string()))?;
            let snap = shared.snapshot();
            let view = snap.query(&spec)?;
            Ok((view.to_tsv(), RequestClass::Read))
        }
        "explain" => {
            // the cost-based plan for a query, answered from the published
            // snapshot — the same planner the read path executes
            let spec = parse_query(rest).map_err(|e| ServeError::bad_request(e.to_string()))?;
            let snap = shared.snapshot();
            Ok((snap.explain(&spec)?, RequestClass::Read))
        }
        "view" => {
            // generate-view with an explicit export format
            let Some((&format, query_words)) = rest.split_first() else {
                return Err(ServeError::bad_request(
                    "usage: view <tsv|csv|json|md> <query words>",
                ));
            };
            let spec =
                parse_query(query_words).map_err(|e| ServeError::bad_request(e.to_string()))?;
            let snap = shared.snapshot();
            let view = snap.query(&spec)?;
            let body = match format {
                "tsv" => view.to_tsv(),
                "csv" => view.to_csv(),
                "json" => view.to_json()?,
                "md" | "markdown" => view.to_markdown(),
                other => {
                    return Err(ServeError::bad_request(format!(
                        "unknown view format {other:?}"
                    )))
                }
            };
            Ok((body, RequestClass::Read))
        }
        "path" => match rest {
            [from, to] => {
                let snap = shared.snapshot();
                let path = snap.find_path(from, to)?;
                Ok((format!("{}\n", path.join(" -> ")), RequestClass::Read))
            }
            _ => Err(ServeError::bad_request("usage: path <from> <to>")),
        },
        "paths" => match rest {
            [from, to, k] => {
                let k: usize = k
                    .parse()
                    .map_err(|_| ServeError::bad_request("paths takes a numeric k"))?;
                let snap = shared.snapshot();
                let mut out = String::new();
                for path in snap.find_paths(from, to, k)? {
                    let _ = writeln!(out, "{}", path.join(" -> "));
                }
                Ok((out, RequestClass::Read))
            }
            _ => Err(ServeError::bad_request("usage: paths <from> <to> <k>")),
        },
        "info" => match rest {
            [source, accession] => {
                let snap = shared.snapshot();
                let info = snap.object_info(source, accession)?;
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{} ({}) name={:?} number={:?}",
                    info.accession, info.source, info.text, info.number
                );
                for (partner_source, partner, evidence) in &info.associations {
                    match evidence {
                        Some(e) => {
                            let _ = writeln!(out, "  -> {partner_source}: {partner} (~{e:.2})");
                        }
                        None => {
                            let _ = writeln!(out, "  -> {partner_source}: {partner}");
                        }
                    }
                }
                Ok((out, RequestClass::Read))
            }
            _ => Err(ServeError::bad_request("usage: info <source> <accession>")),
        },
        "import-status" => {
            let status = shared.import_status();
            Ok((
                format!(
                    "writing={} completed={} version={}.{}\n",
                    status.writing,
                    status.completed,
                    status.published_version.0,
                    status.published_version.1
                ),
                RequestClass::Read,
            ))
        }
        // ---------------- write path: admission, single writer, publish
        "import" => match rest {
            ["demo", seed] => {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| ServeError::bad_request("import demo takes a numeric seed"))?;
                let permit = admit_write(shared, ctx)?;
                let n = permit.run(|gm| {
                    let eco = Ecosystem::generate(EcosystemParams::demo(seed));
                    Ok(gm.import_dumps(&eco.dumps)?.len())
                })?;
                let snap = shared.snapshot();
                Ok((
                    format!("imported {} dumps; {}\n", n, snap.cardinalities()?),
                    RequestClass::Write,
                ))
            }
            _ => Err(ServeError::bad_request("usage: import demo <seed>")),
        },
        "materialize" => match rest {
            ["composed", path @ ..] if path.len() >= 2 => {
                let permit = admit_write(shared, ctx)?;
                let (rel, n) = permit.run(|gm| gm.materialize_composed(path))?;
                Ok((
                    format!("materialized {rel} with {n} associations\n"),
                    RequestClass::Write,
                ))
            }
            ["subsumed", source] => {
                let permit = admit_write(shared, ctx)?;
                let (rel, n) = permit.run(|gm| gm.materialize_subsumed(source))?;
                Ok((
                    format!("materialized {rel} with {n} associations\n"),
                    RequestClass::Write,
                ))
            }
            _ => Err(ServeError::bad_request(
                "usage: materialize composed <s1> <s2> [...] | materialize subsumed <source>",
            )),
        },
        other => Err(ServeError::bad_request(format!(
            "unknown endpoint {other:?}"
        ))),
    }
}

/// Admit one write under the context's budget, or shed with a retryable
/// `err busy`. Holding the permit bounds the writer *queue* — the slot is
/// occupied while the write waits on the writer mutex, not just while it
/// executes.
fn admit_write<'a>(
    shared: &'a SharedGenMapper,
    ctx: &RequestContext<'_>,
) -> Result<genmapper::WritePermit<'a>, ServeError> {
    shared.try_admit_write(ctx.max_in_flight_writes).ok_or_else(|| {
        ServeError::busy(format!(
            "write budget exhausted ({} in flight, budget {}); retry after backoff",
            shared.in_flight_writes(),
            ctx.max_in_flight_writes
        ))
    })
}

/// The `stats` body: cardinalities, snapshot version, association total,
/// and — inside a running server — the service counters.
fn render_stats(snap: &Arc<Snapshot>, ctx: &RequestContext<'_>) -> Result<String, ServeError> {
    let cards = snap.cardinalities()?;
    let (v0, v1) = snap.version();
    let mut out = format!("{cards}\nsnapshot version {v0}.{v1}\n");
    if let Some(stats) = ctx.stats {
        let (connections, requests, reads, writes, errors) = stats.snapshot();
        let (shed_writes, timeouts, oversized) = stats.hardening_snapshot();
        let _ = writeln!(
            out,
            "service: connections={connections} requests={requests} reads={reads} \
             writes={writes} errors={errors} shed_writes={shed_writes} \
             timeouts={timeouts} oversized={oversized}"
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeErrorKind;
    use genmapper::GenMapper;

    fn shared() -> SharedGenMapper {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        SharedGenMapper::new(gm).unwrap()
    }

    fn bare() -> RequestContext<'static> {
        RequestContext::default()
    }

    #[test]
    fn read_endpoints_answer_from_the_snapshot() {
        let sh = shared();
        let ctx = bare();
        let (body, class) = handle_request(&sh, "ping", &ctx).unwrap();
        assert_eq!(body, "pong\n");
        assert_eq!(class, RequestClass::Read);

        let (body, _) = handle_request(&sh, "stats", &ctx).unwrap();
        assert!(body.contains("19 sources"), "stats: {body}");
        assert!(body.contains("snapshot version"));
        assert!(
            !body.contains("service:"),
            "no service counters in bare context: {body}"
        );

        let (body, _) = handle_request(&sh, "sources", &ctx).unwrap();
        assert!(body.contains("LocusLink"));

        let (body, _) = handle_request(&sh, "query LocusLink:353 or Hugo GO", &ctx).unwrap();
        assert!(body.contains("APRT"), "query: {body}");

        let (body, _) = handle_request(&sh, "view json LocusLink:353 or Hugo", &ctx).unwrap();
        assert!(body.contains("\"APRT\""), "view json: {body}");

        let (body, _) = handle_request(&sh, "path NetAffx GO", &ctx).unwrap();
        assert!(body.starts_with("NetAffx ->"));

        let (body, _) = handle_request(&sh, "paths NetAffx GO 2", &ctx).unwrap();
        assert!(body.lines().count() >= 1);

        let (body, _) = handle_request(&sh, "info LocusLink 353", &ctx).unwrap();
        assert!(body.contains("adenine phosphoribosyltransferase"));

        let (body, _) = handle_request(&sh, "import-status", &ctx).unwrap();
        assert!(body.starts_with("writing=false completed=0"));
    }

    #[test]
    fn health_and_ready_report_liveness_and_drain() {
        let sh = shared();
        let (body, class) = handle_request(&sh, "health", &bare()).unwrap();
        assert_eq!(body, "ok\n");
        assert_eq!(class, RequestClass::Read);

        let (body, _) = handle_request(&sh, "ready", &bare()).unwrap();
        assert!(body.starts_with("ready version="), "{body}");
        assert!(body.contains("in_flight_writes=0"), "{body}");

        let draining = RequestContext {
            draining: true,
            ..bare()
        };
        let e = handle_request(&sh, "ready", &draining).unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::Unavailable);
        // liveness and reads still answer while draining
        assert!(handle_request(&sh, "health", &draining).is_ok());
        assert!(handle_request(&sh, "ping", &draining).is_ok());
    }

    #[test]
    fn stats_fold_in_service_counters_when_present() {
        let sh = shared();
        let stats = ServerStats::default();
        stats
            .shed_writes
            .store(3, std::sync::atomic::Ordering::Relaxed);
        let ctx = RequestContext {
            stats: Some(&stats),
            ..bare()
        };
        let (body, _) = handle_request(&sh, "stats", &ctx).unwrap();
        assert!(body.contains("service: connections=0"), "{body}");
        assert!(body.contains("shed_writes=3"), "{body}");
    }

    #[test]
    fn write_endpoints_go_through_the_writer_and_publish() {
        let sh = shared();
        let ctx = bare();
        let v0 = sh.snapshot().version();
        let (body, class) = handle_request(&sh, "materialize subsumed GO", &ctx).unwrap();
        assert!(body.starts_with("materialized"));
        assert_eq!(class, RequestClass::Write);
        assert_ne!(sh.snapshot().version(), v0, "write published a new snapshot");
        let (body, _) = handle_request(&sh, "import-status", &ctx).unwrap();
        assert!(body.contains("completed=1"));
    }

    #[test]
    fn writes_beyond_the_budget_are_shed_as_busy() {
        let sh = shared();
        // saturate the budget from outside, as a stuck write would
        let slot = sh.try_admit_write(1).unwrap();
        let ctx = RequestContext {
            max_in_flight_writes: 1,
            ..bare()
        };
        let e = handle_request(&sh, "materialize subsumed GO", &ctx).unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::Busy);
        assert!(e.kind.is_retryable());
        // reads are never admission-controlled
        assert!(handle_request(&sh, "query LocusLink:353 or Hugo", &ctx).is_ok());
        drop(slot);
        // the freed slot admits the same write
        assert!(handle_request(&sh, "materialize subsumed GO", &ctx).is_ok());
    }

    #[test]
    fn errors_carry_protocol_kinds() {
        let sh = shared();
        let ctx = bare();
        let e = handle_request(&sh, "frobnicate", &ctx).unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        let e = handle_request(&sh, "path Nowhere GO", &ctx).unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
        let e = handle_request(&sh, "query LocusLink", &ctx).unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        let e = handle_request(&sh, "", &ctx).unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        // an isolated snapshot keeps answering while a write fails
        let e = handle_request(&sh, "materialize subsumed Nowhere", &ctx).unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
        assert!(handle_request(&sh, "ping", &ctx).is_ok());
    }

    #[test]
    fn read_class_covers_exactly_the_snapshot_endpoints() {
        for read in [
            "ping", "stats", "sources", "query LocusLink:353", "explain x",
            "view md x", "path A B", "paths A B 2", "info A 1", "import-status",
            "health", "ready",
        ] {
            assert!(is_read_request(read), "{read} is read-class");
        }
        for other in ["import demo 7", "materialize subsumed GO", "quit", "frobnicate", ""] {
            assert!(!is_read_request(other), "{other} is not read-class");
        }
    }
}
