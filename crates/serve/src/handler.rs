//! Per-endpoint request handlers.
//!
//! [`handle_request`] is the whole service brain: it parses one request
//! line, grabs either the published snapshot (reads) or the writer lock
//! (writes), and renders a text body. It holds no lock while executing a
//! read — the snapshot `Arc` is cloned first, then the guard is gone —
//! which is the invariant genlint's snapshot-coherence check pins.

use crate::error::ServeError;
use genmapper::cli::parse_query;
use genmapper::{SharedGenMapper, Snapshot};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::fmt::Write as _;
use std::sync::Arc;

/// Whether a handled request went down the read or the write path
/// (service statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    Read,
    Write,
}

/// Handle one request line against the shared system. Returns the
/// response body and the request class.
pub fn handle_request(
    shared: &SharedGenMapper,
    line: &str,
) -> Result<(String, RequestClass), ServeError> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let Some((&verb, rest)) = words.split_first() else {
        return Err(ServeError::bad_request("empty request"));
    };
    match verb {
        // ---------------- read path: published snapshot only ----------
        "ping" => Ok(("pong\n".to_owned(), RequestClass::Read)),
        "stats" => {
            let snap = shared.snapshot();
            Ok((render_stats(&snap)?, RequestClass::Read))
        }
        "sources" => {
            let snap = shared.snapshot();
            let mut out = String::new();
            for s in snap.sources()? {
                let _ = writeln!(out, "{}\t{}\t{}", s.name, s.content, s.structure);
            }
            Ok((out, RequestClass::Read))
        }
        "query" => {
            let spec = parse_query(rest).map_err(|e| ServeError::bad_request(e.to_string()))?;
            let snap = shared.snapshot();
            let view = snap.query(&spec)?;
            Ok((view.to_tsv(), RequestClass::Read))
        }
        "explain" => {
            // the cost-based plan for a query, answered from the published
            // snapshot — the same planner the read path executes
            let spec = parse_query(rest).map_err(|e| ServeError::bad_request(e.to_string()))?;
            let snap = shared.snapshot();
            Ok((snap.explain(&spec)?, RequestClass::Read))
        }
        "view" => {
            // generate-view with an explicit export format
            let Some((&format, query_words)) = rest.split_first() else {
                return Err(ServeError::bad_request(
                    "usage: view <tsv|csv|json|md> <query words>",
                ));
            };
            let spec =
                parse_query(query_words).map_err(|e| ServeError::bad_request(e.to_string()))?;
            let snap = shared.snapshot();
            let view = snap.query(&spec)?;
            let body = match format {
                "tsv" => view.to_tsv(),
                "csv" => view.to_csv(),
                "json" => view.to_json()?,
                "md" | "markdown" => view.to_markdown(),
                other => {
                    return Err(ServeError::bad_request(format!(
                        "unknown view format {other:?}"
                    )))
                }
            };
            Ok((body, RequestClass::Read))
        }
        "path" => match rest {
            [from, to] => {
                let snap = shared.snapshot();
                let path = snap.find_path(from, to)?;
                Ok((format!("{}\n", path.join(" -> ")), RequestClass::Read))
            }
            _ => Err(ServeError::bad_request("usage: path <from> <to>")),
        },
        "paths" => match rest {
            [from, to, k] => {
                let k: usize = k
                    .parse()
                    .map_err(|_| ServeError::bad_request("paths takes a numeric k"))?;
                let snap = shared.snapshot();
                let mut out = String::new();
                for path in snap.find_paths(from, to, k)? {
                    let _ = writeln!(out, "{}", path.join(" -> "));
                }
                Ok((out, RequestClass::Read))
            }
            _ => Err(ServeError::bad_request("usage: paths <from> <to> <k>")),
        },
        "info" => match rest {
            [source, accession] => {
                let snap = shared.snapshot();
                let info = snap.object_info(source, accession)?;
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "{} ({}) name={:?} number={:?}",
                    info.accession, info.source, info.text, info.number
                );
                for (partner_source, partner, evidence) in &info.associations {
                    match evidence {
                        Some(e) => {
                            let _ = writeln!(out, "  -> {partner_source}: {partner} (~{e:.2})");
                        }
                        None => {
                            let _ = writeln!(out, "  -> {partner_source}: {partner}");
                        }
                    }
                }
                Ok((out, RequestClass::Read))
            }
            _ => Err(ServeError::bad_request("usage: info <source> <accession>")),
        },
        "import-status" => {
            let status = shared.import_status();
            Ok((
                format!(
                    "writing={} completed={} version={}.{}\n",
                    status.writing,
                    status.completed,
                    status.published_version.0,
                    status.published_version.1
                ),
                RequestClass::Read,
            ))
        }
        // ---------------- write path: single writer, then publish ------
        "import" => match rest {
            ["demo", seed] => {
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| ServeError::bad_request("import demo takes a numeric seed"))?;
                let n = shared.with_writer(|gm| {
                    let eco = Ecosystem::generate(EcosystemParams::demo(seed));
                    Ok(gm.import_dumps(&eco.dumps)?.len())
                })?;
                let snap = shared.snapshot();
                Ok((
                    format!("imported {} dumps; {}\n", n, snap.cardinalities()?),
                    RequestClass::Write,
                ))
            }
            _ => Err(ServeError::bad_request("usage: import demo <seed>")),
        },
        "materialize" => match rest {
            ["composed", path @ ..] if path.len() >= 2 => {
                let (rel, n) = shared.with_writer(|gm| gm.materialize_composed(path))?;
                Ok((
                    format!("materialized {rel} with {n} associations\n"),
                    RequestClass::Write,
                ))
            }
            ["subsumed", source] => {
                let (rel, n) = shared.with_writer(|gm| gm.materialize_subsumed(source))?;
                Ok((
                    format!("materialized {rel} with {n} associations\n"),
                    RequestClass::Write,
                ))
            }
            _ => Err(ServeError::bad_request(
                "usage: materialize composed <s1> <s2> [...] | materialize subsumed <source>",
            )),
        },
        other => Err(ServeError::bad_request(format!(
            "unknown endpoint {other:?}"
        ))),
    }
}

/// The `stats` body: cardinalities, snapshot version, association total.
fn render_stats(snap: &Arc<Snapshot>) -> Result<String, ServeError> {
    let cards = snap.cardinalities()?;
    let (v0, v1) = snap.version();
    Ok(format!("{cards}\nsnapshot version {v0}.{v1}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ServeErrorKind;
    use genmapper::GenMapper;

    fn shared() -> SharedGenMapper {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        SharedGenMapper::new(gm).unwrap()
    }

    #[test]
    fn read_endpoints_answer_from_the_snapshot() {
        let sh = shared();
        let (body, class) = handle_request(&sh, "ping").unwrap();
        assert_eq!(body, "pong\n");
        assert_eq!(class, RequestClass::Read);

        let (body, _) = handle_request(&sh, "stats").unwrap();
        assert!(body.contains("19 sources"), "stats: {body}");
        assert!(body.contains("snapshot version"));

        let (body, _) = handle_request(&sh, "sources").unwrap();
        assert!(body.contains("LocusLink"));

        let (body, _) = handle_request(&sh, "query LocusLink:353 or Hugo GO").unwrap();
        assert!(body.contains("APRT"), "query: {body}");

        let (body, _) = handle_request(&sh, "view json LocusLink:353 or Hugo").unwrap();
        assert!(body.contains("\"APRT\""), "view json: {body}");

        let (body, _) = handle_request(&sh, "path NetAffx GO").unwrap();
        assert!(body.starts_with("NetAffx ->"));

        let (body, _) = handle_request(&sh, "paths NetAffx GO 2").unwrap();
        assert!(body.lines().count() >= 1);

        let (body, _) = handle_request(&sh, "info LocusLink 353").unwrap();
        assert!(body.contains("adenine phosphoribosyltransferase"));

        let (body, _) = handle_request(&sh, "import-status").unwrap();
        assert!(body.starts_with("writing=false completed=0"));
    }

    #[test]
    fn write_endpoints_go_through_the_writer_and_publish() {
        let sh = shared();
        let v0 = sh.snapshot().version();
        let (body, class) = handle_request(&sh, "materialize subsumed GO").unwrap();
        assert!(body.starts_with("materialized"));
        assert_eq!(class, RequestClass::Write);
        assert_ne!(sh.snapshot().version(), v0, "write published a new snapshot");
        let (body, _) = handle_request(&sh, "import-status").unwrap();
        assert!(body.contains("completed=1"));
    }

    #[test]
    fn errors_carry_protocol_kinds() {
        let sh = shared();
        let e = handle_request(&sh, "frobnicate").unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        let e = handle_request(&sh, "path Nowhere GO").unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
        let e = handle_request(&sh, "query LocusLink").unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        let e = handle_request(&sh, "").unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        // an isolated snapshot keeps answering while a write fails
        let e = handle_request(&sh, "materialize subsumed Nowhere").unwrap_err();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
        assert!(handle_request(&sh, "ping").is_ok());
    }
}
