//! The threaded request loop: N acceptor/worker threads over one
//! listening socket, graceful shutdown, and a tiny client helper.

use crate::error::ServeError;
use crate::handler::{handle_request, RequestClass};
use genmapper::SharedGenMapper;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070`. Port `0` picks a free port
    /// (tests, harnesses).
    pub addr: String,
    /// Worker threads accepting and serving connections.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".to_owned(),
            threads: 4,
        }
    }
}

/// Monotonic service counters, updated by workers with relaxed atomics —
/// readers of the stats never block request handling.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub errors: AtomicU64,
}

impl ServerStats {
    /// A plain-data copy of the counters.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.connections.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}

/// A running annotation service.
pub struct Server {
    shared: Arc<SharedGenMapper>,
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `shared` with `config.threads` workers.
    pub fn start(shared: Arc<SharedGenMapper>, config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let threads = config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let listener = listener.try_clone()?;
            let shared = shared.clone();
            let stop = stop.clone();
            let stats = stats.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&listener, &shared, &stop, &stats))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            stop,
            stats,
            workers,
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The shared system behind the server.
    pub fn shared(&self) -> &Arc<SharedGenMapper> {
        &self.shared
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Graceful shutdown: stop accepting, unblock every worker, join all.
    /// In-flight requests complete; idle persistent connections are closed
    /// after their current read.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        // each worker sits in accept(); one self-connection apiece wakes
        // them to observe the stop flag
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.local_addr);
        }
        for worker in self.workers.drain(..) {
            worker
                .join()
                .map_err(|_| io::Error::other("serve worker panicked"))?;
        }
        Ok(())
    }
}

/// Accept loop of one worker: serve a connection to completion, then
/// accept the next. The stop flag is checked after every accept so a
/// shutdown self-connection terminates the loop.
fn worker_loop(
    listener: &TcpListener,
    shared: &SharedGenMapper,
    stop: &AtomicBool,
    stats: &ServerStats,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        stats.connections.fetch_add(1, Ordering::Relaxed);
        // a broken connection only ends that connection
        let _ = serve_connection(stream, shared, stop, stats);
    }
}

/// Serve one persistent connection: request lines in, framed responses out.
fn serve_connection(
    stream: TcpStream,
    shared: &SharedGenMapper,
    stop: &AtomicBool,
    stats: &ServerStats,
) -> io::Result<()> {
    // Small request/response frames ping-pong on this socket; without
    // nodelay the Nagle + delayed-ACK interaction costs ~40ms per turn.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "quit" {
            break;
        }
        stats.requests.fetch_add(1, Ordering::Relaxed);
        match handle_request(shared, trimmed) {
            Ok((body, class)) => {
                match class {
                    RequestClass::Read => stats.reads.fetch_add(1, Ordering::Relaxed),
                    RequestClass::Write => stats.writes.fetch_add(1, Ordering::Relaxed),
                };
                write!(writer, "ok {}\n{}", body.len(), body)?;
            }
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                write_error(&mut writer, &e)?;
            }
        }
        writer.flush()?;
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}

/// Frame one error response.
fn write_error(writer: &mut impl Write, e: &ServeError) -> io::Result<()> {
    write!(
        writer,
        "err {} {}\n{}",
        e.kind.token(),
        e.message.len(),
        e.message
    )
}

/// Send one request to a running server and return `(ok, body)` — the
/// client side of the protocol, used by `genmapper-cli call` and the load
/// harness.
pub fn call(addr: &str, request: &str) -> io::Result<(bool, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    writeln!(stream, "{}", request.trim())?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Read one framed response from `reader`. Exposed so clients holding a
/// persistent connection can reuse it.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<(bool, String)> {
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response header",
        ));
    }
    let header = header.trim_end();
    let (ok, len) = parse_response_header(header)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad header {header:?}")))?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok((ok, body))
}

/// `ok <len>` / `err <kind> <len>` → `(ok, len)`.
fn parse_response_header(header: &str) -> Option<(bool, usize)> {
    let mut words = header.split_whitespace();
    match words.next()? {
        "ok" => {
            let len = words.next()?.parse().ok()?;
            Some((true, len))
        }
        "err" => {
            let _kind = words.next()?;
            let len = words.next()?.parse().ok()?;
            Some((false, len))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_header_parses() {
        assert_eq!(parse_response_header("ok 12"), Some((true, 12)));
        assert_eq!(parse_response_header("err not-found 3"), Some((false, 3)));
        assert_eq!(parse_response_header("nope"), None);
        assert_eq!(parse_response_header("ok lots"), None);
        assert_eq!(parse_response_header(""), None);
    }
}
