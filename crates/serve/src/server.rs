//! The threaded request loop: N acceptor/worker threads over one
//! listening socket, deadline-guarded connections, admission-controlled
//! writes, and drain-bounded graceful shutdown.
//!
//! Every accepted socket is wrapped in a [`ConnGuard`](crate::conn::ConnGuard)
//! before a byte is read — the deadline / size-cap seam genlint's
//! `socket-discipline` rule pins. The client helpers (`call`,
//! `read_response`) live in [`crate::conn`] and are re-exported here for
//! compatibility.

use crate::conn::{ConnGuard, RequestRead};
use crate::error::{ServeError, ServeErrorKind};
use crate::handler::{handle_request, RequestClass, RequestContext};
use genmapper::SharedGenMapper;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use crate::conn::{call, read_response};

/// Server configuration: bind/threading plus the hardening knobs
/// (deadlines, size caps, write budget, drain bound).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7070`. Port `0` picks a free port
    /// (tests, harnesses).
    pub addr: String,
    /// Worker threads accepting and serving connections.
    pub threads: usize,
    /// Per-connection read deadline: a connection idle (or dribbling an
    /// unfinished request) longer than this is evicted. Zero disables.
    pub read_timeout: Duration,
    /// Per-connection write deadline for one response frame. Zero
    /// disables.
    pub write_timeout: Duration,
    /// Cap on one request line; an over-budget line gets `err too-large`
    /// and the connection is closed.
    pub max_request_bytes: usize,
    /// Advisory cap for clients reading responses from this server
    /// (mirrored into harness/client configs; the server itself never
    /// frames a body it did not produce).
    pub max_response_bytes: usize,
    /// Write-admission budget: writes admitted (queued or executing)
    /// beyond this are shed with retryable `err busy`. Reads are never
    /// admission-controlled.
    pub max_in_flight_writes: usize,
    /// How long [`Server::shutdown`] waits for workers to finish their
    /// in-flight connections before detaching them.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7070".to_owned(),
            threads: 4,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_request_bytes: 64 * 1024,
            max_response_bytes: 16 << 20,
            max_in_flight_writes: 2,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// Monotonic service counters, updated by workers with relaxed atomics —
/// readers of the stats never block request handling.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub connections: AtomicU64,
    pub requests: AtomicU64,
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub errors: AtomicU64,
    /// Writes shed by admission control (`err busy`).
    pub shed_writes: AtomicU64,
    /// Connections evicted at the read deadline.
    pub timeouts: AtomicU64,
    /// Connections closed for an over-budget request line.
    pub oversized: AtomicU64,
}

impl ServerStats {
    /// A plain-data copy of the request counters.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.connections.load(Ordering::Relaxed),
            self.requests.load(Ordering::Relaxed),
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }

    /// A plain-data copy of the hardening counters:
    /// `(shed_writes, timeouts, oversized)`.
    pub fn hardening_snapshot(&self) -> (u64, u64, u64) {
        (
            self.shed_writes.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.oversized.load(Ordering::Relaxed),
        )
    }
}

/// A running annotation service.
pub struct Server {
    shared: Arc<SharedGenMapper>,
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    drain_timeout: Duration,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `shared` with `config.threads` workers.
    pub fn start(shared: Arc<SharedGenMapper>, config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let threads = config.threads.max(1);
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let listener = listener.try_clone()?;
            let shared = shared.clone();
            let stop = stop.clone();
            let stats = stats.clone();
            let config = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&listener, &shared, &stop, &stats, &config))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            stop,
            stats,
            drain_timeout: config.drain_timeout,
            workers,
        })
    }

    /// The bound address (resolves port `0` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The shared system behind the server.
    pub fn shared(&self) -> &Arc<SharedGenMapper> {
        &self.shared
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Graceful shutdown: stop accepting, unblock every worker, then wait
    /// up to `drain_timeout` for in-flight connections to finish. Workers
    /// that drain in time are joined; if the deadline passes, the
    /// stragglers are detached (their connections die at the read
    /// deadline) and `TimedOut` is returned.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        // each worker sits in accept(); one self-connection apiece wakes
        // them to observe the stop flag
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.local_addr);
        }
        let deadline = Instant::now() + self.drain_timeout;
        loop {
            if self.workers.iter().all(|w| w.is_finished()) {
                for worker in self.workers.drain(..) {
                    worker
                        .join()
                        .map_err(|_| io::Error::other("serve worker panicked"))?;
                }
                return Ok(());
            }
            if Instant::now() >= deadline {
                let stuck = self.workers.len();
                self.workers.clear();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "drain incomplete after {:?}: detached {stuck} worker(s) \
                         still serving connections",
                        self.drain_timeout
                    ),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Accept loop of one worker: serve a connection to completion, then
/// accept the next. The stop flag is checked after every accept so a
/// shutdown self-connection terminates the loop.
fn worker_loop(
    listener: &TcpListener,
    shared: &SharedGenMapper,
    stop: &AtomicBool,
    stats: &ServerStats,
    config: &ServerConfig,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        stats.connections.fetch_add(1, Ordering::Relaxed);
        // a broken connection only ends that connection
        let _ = serve_connection(stream, shared, stop, stats, config);
    }
}

/// Serve one persistent connection: request lines in, framed responses
/// out, every byte through the [`ConnGuard`] seam. Deadline expiry and
/// over-budget requests close the connection after a best-effort error
/// frame.
fn serve_connection(
    stream: TcpStream,
    shared: &SharedGenMapper,
    stop: &AtomicBool,
    stats: &ServerStats,
    config: &ServerConfig,
) -> io::Result<()> {
    let mut conn = ConnGuard::new(stream, config)?;
    loop {
        match conn.read_request()? {
            RequestRead::Eof => break,
            RequestRead::TimedOut => {
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = conn.write_err(&ServeError::timeout(format!(
                    "no complete request within {:?}; closing connection",
                    config.read_timeout
                )));
                break;
            }
            RequestRead::TooLarge => {
                stats.oversized.fetch_add(1, Ordering::Relaxed);
                let _ = conn.write_err(&ServeError::too_large(format!(
                    "request line exceeds {} bytes; closing connection",
                    config.max_request_bytes
                )));
                break;
            }
            RequestRead::Line(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed == "quit" {
                    break;
                }
                stats.requests.fetch_add(1, Ordering::Relaxed);
                let ctx = RequestContext {
                    max_in_flight_writes: config.max_in_flight_writes,
                    stats: Some(stats),
                    draining: stop.load(Ordering::SeqCst),
                };
                match handle_request(shared, trimmed, &ctx) {
                    Ok((body, class)) => {
                        match class {
                            RequestClass::Read => stats.reads.fetch_add(1, Ordering::Relaxed),
                            RequestClass::Write => stats.writes.fetch_add(1, Ordering::Relaxed),
                        };
                        conn.write_ok(&body)?;
                    }
                    Err(e) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        if e.kind == ServeErrorKind::Busy {
                            stats.shed_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        conn.write_err(&e)?;
                    }
                }
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    Ok(())
}
