//! The one socket-discipline seam of the service: every byte the server
//! or the bundled client moves over TCP goes through this module.
//!
//! [`ConnGuard`] wraps an accepted connection with the three protections
//! raw `BufReader::lines()` lacks:
//!
//! * **deadlines** — `set_read_timeout` / `set_write_timeout` are applied
//!   at construction, so a slow-loris peer is evicted instead of pinning
//!   a worker thread forever;
//! * **bounded request framing** — the line reader buffers at most
//!   `max_request_bytes`; an unterminated request reports
//!   [`RequestRead::TooLarge`] instead of growing memory without bound;
//! * **single-write responses** — each response frame is assembled and
//!   written with one `write_all`, keeping the write deadline meaningful.
//!
//! The client half ([`call`], [`call_retry`], [`read_response_with`])
//! lives here for the same reason: `read_response` used to allocate
//! `vec![0u8; len]` from a wire-controlled header, so a bad (or
//! byzantine) server could OOM its clients. Response bodies above the
//! configured cap are rejected with `InvalidData` *before* allocation.
//!
//! genlint's `socket-discipline` rule pins this seam: raw `BufReader` /
//! `lines()` tokens anywhere else under `crates/serve/src` fail the
//! build.

use crate::error::ServeError;
use crate::server::ServerConfig;
use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Read chunk size for the capped line reader.
const READ_CHUNK: usize = 4096;

/// Cap on a response *header* line (`ok <len>` / `err <kind> <len>`);
/// independent of the body cap so a garbage header can't run the reader
/// unbounded either.
const MAX_HEADER_BYTES: u64 = 4096;

/// Default client-side cap on response bodies (16 MiB) — matches
/// `ServerConfig::default().max_response_bytes`.
pub const DEFAULT_MAX_RESPONSE_BYTES: usize = 16 << 20;

/// One request-line read outcome on a guarded connection.
#[derive(Debug, PartialEq, Eq)]
pub enum RequestRead {
    /// A complete request line (newline stripped, may still need
    /// trimming).
    Line(String),
    /// The peer closed the connection.
    Eof,
    /// More than `max_request_bytes` buffered without a newline — the
    /// caller should answer `err too-large` and close.
    TooLarge,
    /// The read deadline expired mid-request — the caller should answer
    /// `err timeout` (best effort) and close.
    TimedOut,
}

/// A server-side connection with deadlines and bounded framing applied.
pub struct ConnGuard {
    stream: TcpStream,
    /// Bytes received but not yet returned as lines.
    pending: Vec<u8>,
    max_request_bytes: usize,
}

impl ConnGuard {
    /// Wrap an accepted stream, applying nodelay and both deadlines from
    /// `config`.
    pub fn new(stream: TcpStream, config: &ServerConfig) -> io::Result<ConnGuard> {
        // Small request/response frames ping-pong on this socket; without
        // nodelay the Nagle + delayed-ACK interaction costs ~40ms per
        // turn.
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(some_timeout(config.read_timeout))?;
        stream.set_write_timeout(some_timeout(config.write_timeout))?;
        Ok(ConnGuard {
            stream,
            pending: Vec::new(),
            max_request_bytes: config.max_request_bytes.max(1),
        })
    }

    /// Read the next request line, enforcing the size cap and the read
    /// deadline. Pipelined lines already buffered are returned without
    /// touching the socket.
    pub fn read_request(&mut self) -> io::Result<RequestRead> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=pos).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(RequestRead::Line(
                    String::from_utf8_lossy(&line).into_owned(),
                ));
            }
            if self.pending.len() > self.max_request_bytes {
                return Ok(RequestRead::TooLarge);
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.pending.is_empty() {
                        return Ok(RequestRead::Eof);
                    }
                    // a trailing unterminated line is still a request
                    let line = String::from_utf8_lossy(&self.pending).into_owned();
                    self.pending.clear();
                    return Ok(RequestRead::Line(line));
                }
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                    return Ok(RequestRead::TimedOut)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Frame and send one success response in a single write.
    pub fn write_ok(&mut self, body: &str) -> io::Result<()> {
        let frame = format!("ok {}\n{}", body.len(), body);
        self.stream.write_all(frame.as_bytes())
    }

    /// Frame and send one error response in a single write.
    pub fn write_err(&mut self, e: &ServeError) -> io::Result<()> {
        let frame = format!("err {} {}\n{}", e.kind.token(), e.message.len(), e.message);
        self.stream.write_all(frame.as_bytes())
    }
}

/// `Duration::ZERO` would make `set_read_timeout` error; treat it as "no
/// deadline" like the `None` the std API wants.
fn some_timeout(d: Duration) -> Option<Duration> {
    if d.is_zero() {
        None
    } else {
        Some(d)
    }
}

// ---------------------------------------------------------------- client

/// Client-side limits for one call: deadlines plus the response-size cap.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    pub read_timeout: Duration,
    pub write_timeout: Duration,
    /// Reject response bodies larger than this before allocating.
    pub max_response_bytes: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_response_bytes: DEFAULT_MAX_RESPONSE_BYTES,
        }
    }
}

/// One parsed response frame, with the error kind token preserved so
/// clients can distinguish retryable `busy` from terminal failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub ok: bool,
    /// The `err <kind>` token (`busy`, `not-found`, ...); `None` on `ok`.
    pub kind: Option<String>,
    pub body: String,
}

/// Send one request to a running server and return `(ok, body)` — the
/// client side of the protocol, used by `genmapper-cli call` and the load
/// harness. Applies the default [`ClientConfig`] deadlines and caps.
pub fn call(addr: &str, request: &str) -> io::Result<(bool, String)> {
    let resp = call_with(addr, request, &ClientConfig::default())?;
    Ok((resp.ok, resp.body))
}

/// [`call`] with explicit client limits, returning the full [`Response`].
pub fn call_with(addr: &str, request: &str, config: &ClientConfig) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(some_timeout(config.read_timeout))?;
    stream.set_write_timeout(some_timeout(config.write_timeout))?;
    stream.write_all(format!("{}\n", request.trim()).as_bytes())?;
    let mut reader = io::BufReader::new(stream);
    read_response_with(&mut reader, config.max_response_bytes)
}

/// Read one framed response from `reader`, with the default response-size
/// cap. Exposed so clients holding a persistent connection can reuse it.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<(bool, String)> {
    let resp = read_response_with(reader, DEFAULT_MAX_RESPONSE_BYTES)?;
    Ok((resp.ok, resp.body))
}

/// Read one framed response, rejecting headers that announce a body
/// larger than `max_response_bytes` with `InvalidData` *before*
/// allocating — the wire-controlled length must never size an
/// allocation unchecked.
pub fn read_response_with(
    reader: &mut impl BufRead,
    max_response_bytes: usize,
) -> io::Result<Response> {
    let mut header = String::new();
    if reader.by_ref().take(MAX_HEADER_BYTES).read_line(&mut header)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response header",
        ));
    }
    let header = header.trim_end();
    let (ok, kind, len) = parse_response_header(header).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, format!("bad header {header:?}"))
    })?;
    if len > max_response_bytes {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("response of {len} bytes exceeds the {max_response_bytes}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response body"))?;
    Ok(Response { ok, kind, body })
}

/// `ok <len>` / `err <kind> <len>` → `(ok, kind, len)`.
fn parse_response_header(header: &str) -> Option<(bool, Option<String>, usize)> {
    let mut words = header.split_whitespace();
    match words.next()? {
        "ok" => {
            let len = words.next()?.parse().ok()?;
            Some((true, None, len))
        }
        "err" => {
            let kind = words.next()?.to_owned();
            let len = words.next()?.parse().ok()?;
            Some((false, Some(kind), len))
        }
        _ => None,
    }
}

// ----------------------------------------------------------------- retry

/// Capped, jittered exponential backoff for the client call path.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for deterministic jitter (each backoff is scaled into
    /// [50%, 100%] of its nominal value).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            seed: 0x5eed,
        }
    }
}

/// The outcome of a retried call, with the attempt count surfaced so
/// harnesses can report how much retrying actually happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallReport {
    pub ok: bool,
    pub kind: Option<String>,
    pub body: String,
    /// Attempts actually made (1 = first try succeeded).
    pub attempts: u32,
}

/// [`call_with`] plus capped jittered retry for *read-class* requests:
/// connection-level failures and retryable server errors (`err busy`)
/// are retried up to `retry.attempts` times. Write requests are never
/// retried — a write whose response was lost may have executed, and the
/// protocol does not promise idempotence.
pub fn call_retry(
    addr: &str,
    request: &str,
    config: &ClientConfig,
    retry: &RetryPolicy,
) -> io::Result<CallReport> {
    let retryable_request = crate::handler::is_read_request(request);
    let attempts_cap = retry.attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let more = retryable_request && attempt < attempts_cap;
        match call_with(addr, request, config) {
            Ok(resp) => {
                let transient = resp
                    .kind
                    .as_deref()
                    .is_some_and(|k| k == "busy" || k == "unavailable");
                if !(transient && more) {
                    return Ok(CallReport {
                        ok: resp.ok,
                        kind: resp.kind,
                        body: resp.body,
                        attempts: attempt,
                    });
                }
            }
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::ConnectionAborted
                        | io::ErrorKind::NotConnected
                        | io::ErrorKind::UnexpectedEof
                );
                if !(transient && more) {
                    return Err(e);
                }
            }
        }
        std::thread::sleep(backoff_for(retry, attempt));
    }
}

/// The sleep before attempt `attempt + 1`: base doubled per retry, capped,
/// then deterministically jittered into [50%, 100%].
fn backoff_for(retry: &RetryPolicy, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let nominal = retry
        .base_backoff
        .saturating_mul(1u32 << exp)
        .min(retry.max_backoff);
    let r = splitmix(retry.seed ^ u64::from(attempt));
    let scale_milli = 500 + (r % 501); // 500..=1000 per-mille
    nominal.saturating_mul(scale_milli as u32) / 1000
}

/// SplitMix64 step — cheap deterministic jitter without a rand dep.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn response_header_parses() {
        assert_eq!(parse_response_header("ok 12"), Some((true, None, 12)));
        assert_eq!(
            parse_response_header("err not-found 3"),
            Some((false, Some("not-found".to_owned()), 3))
        );
        assert_eq!(parse_response_header("nope"), None);
        assert_eq!(parse_response_header("ok lots"), None);
        assert_eq!(parse_response_header(""), None);
    }

    #[test]
    fn oversized_response_header_is_rejected_before_allocation() {
        // a giant announced length must fail fast, not allocate
        let mut r = Cursor::new(b"ok 999999999999\nx".to_vec());
        let e = read_response_with(&mut r, 1 << 20).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("cap"), "{e}");
        // at exactly the cap the read proceeds
        let mut r = Cursor::new(b"ok 2\nhi".to_vec());
        let resp = read_response_with(&mut r, 2).unwrap();
        assert_eq!(resp.body, "hi");
        // one over fails
        let mut r = Cursor::new(b"ok 3\nhi!".to_vec());
        assert!(read_response_with(&mut r, 2).is_err());
    }

    #[test]
    fn error_kind_token_is_surfaced() {
        let mut r = Cursor::new(b"err busy 5\nshed!".to_vec());
        let resp = read_response_with(&mut r, 1024).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.kind.as_deref(), Some("busy"));
        assert_eq!(resp.body, "shed!");
    }

    #[test]
    fn unterminated_garbage_header_is_bounded() {
        // no newline in sight: the header read stops at MAX_HEADER_BYTES
        // and parsing fails instead of reading forever
        let junk = vec![b'x'; 64 * 1024];
        let mut r = Cursor::new(junk);
        let e = read_response_with(&mut r, 1024).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let retry = RetryPolicy::default();
        let b1 = backoff_for(&retry, 1);
        let b2 = backoff_for(&retry, 2);
        let b9 = backoff_for(&retry, 9);
        // jitter keeps every sleep within [50%, 100%] of nominal
        assert!(b1 >= Duration::from_millis(5) && b1 <= Duration::from_millis(10));
        assert!(b2 >= Duration::from_millis(10) && b2 <= Duration::from_millis(20));
        assert!(b9 <= retry.max_backoff, "{b9:?} capped");
        // deterministic: same policy, same attempt, same sleep
        assert_eq!(backoff_for(&retry, 3), backoff_for(&retry, 3));
    }
}
