//! The GenMapper command-line front end: interactive REPL, annotation
//! service, and service client in one binary.
//!
//! ```text
//! genmapper-cli [OPTIONS]                  interactive shell (default)
//! genmapper-cli serve --addr H:P [OPTIONS] run the annotation service
//! genmapper-cli call --addr H:P <words..>  send one request to a service
//! ```
//!
//! REPL mode is the paper's interactive access (§5.1): `demo 7`,
//! `sources`, `query LocusLink:353 or Hugo GO`, `quit`.
//!
//! Service mode publishes MVCC snapshots: any number of clients read
//! (query/view/path/stats) while one writer imports or materializes;
//! readers never block on the writer. The service stops gracefully on
//! EOF or a `quit` line on stdin.
//!
//! Shared options:
//! * `--jobs N` caps the worker threads of the parallel Compose /
//!   GenerateView executor (REPL: also changeable at runtime via `jobs`).
//! * `--db DIR` opens (or creates) a durable store rooted at `DIR`.
//! * `--paged[=POOL_PAGES]` makes `--db` use paged table storage with a
//!   bounded buffer pool (default 64 pages).
//!
//! Serve-only options:
//! * `--addr HOST:PORT` bind address (default 127.0.0.1:7070; port 0
//!   picks a free port and prints it).
//! * `--threads N` service worker threads (default 4).
//! * `--demo SEED` pre-import a demo ecosystem before serving.

use genmapper::cli::{CliOutcome, CliSession};
use genmapper::system::GenMapper;
use genmapper::SharedGenMapper;
use serve::{Server, ServerConfig};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;

const USAGE: &str = "usage: genmapper-cli [--jobs N] [--db DIR [--paged[=POOL_PAGES]]]\n\
       genmapper-cli serve [--addr HOST:PORT] [--threads N] [--demo SEED] [store options]\n\
       genmapper-cli call [--addr HOST:PORT] <request words...>";

#[derive(Default)]
struct CliArgs {
    jobs: Option<usize>,
    db: Option<PathBuf>,
    /// `Some(None)` = `--paged` with the default pool size.
    paged: Option<Option<usize>>,
    addr: Option<String>,
    threads: Option<usize>,
    demo: Option<u64>,
    /// Positional words (the request, in `call` mode).
    words: Vec<String>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<CliArgs, String> {
    let mut parsed = CliArgs::default();
    let parse_jobs = |value: &str| {
        value
            .parse()
            .map_err(|_| format!("invalid --jobs value {value:?}"))
    };
    let parse_pool = |value: &str| match value.parse() {
        Ok(0) | Err(_) => Err(format!("invalid --paged pool size {value:?}")),
        Ok(n) => Ok(n),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let value = args
                .next()
                .ok_or_else(|| "--jobs requires a count".to_owned())?;
            parsed.jobs = Some(parse_jobs(&value)?);
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            parsed.jobs = Some(parse_jobs(value)?);
        } else if arg == "--db" {
            let value = args
                .next()
                .ok_or_else(|| "--db requires a directory".to_owned())?;
            parsed.db = Some(PathBuf::from(value));
        } else if let Some(value) = arg.strip_prefix("--db=") {
            parsed.db = Some(PathBuf::from(value));
        } else if arg == "--paged" {
            parsed.paged = Some(None);
        } else if let Some(value) = arg.strip_prefix("--paged=") {
            parsed.paged = Some(Some(parse_pool(value)?));
        } else if arg == "--addr" {
            let value = args
                .next()
                .ok_or_else(|| "--addr requires HOST:PORT".to_owned())?;
            parsed.addr = Some(value);
        } else if let Some(value) = arg.strip_prefix("--addr=") {
            parsed.addr = Some(value.to_owned());
        } else if arg == "--threads" {
            let value = args
                .next()
                .ok_or_else(|| "--threads requires a count".to_owned())?;
            parsed.threads =
                Some(value.parse().map_err(|_| {
                    format!("invalid --threads value {value:?}")
                })?);
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            parsed.threads = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid --threads value {value:?}"))?,
            );
        } else if arg == "--demo" {
            let value = args
                .next()
                .ok_or_else(|| "--demo requires a seed".to_owned())?;
            parsed.demo = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid --demo seed {value:?}"))?,
            );
        } else if let Some(value) = arg.strip_prefix("--demo=") {
            parsed.demo = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid --demo seed {value:?}"))?,
            );
        } else if arg.starts_with("--") {
            return Err(format!("unknown argument {arg:?}; {USAGE}"));
        } else {
            parsed.words.push(arg);
            // everything after the first positional word is the request
            for rest in args.by_ref() {
                parsed.words.push(rest);
            }
        }
    }
    if parsed.paged.is_some() && parsed.db.is_none() {
        return Err(format!("--paged requires --db; {USAGE}"));
    }
    Ok(parsed)
}

fn open_system(args: &CliArgs) -> Result<GenMapper, String> {
    let gm = match &args.db {
        None => GenMapper::in_memory(),
        Some(dir) => match args.paged {
            None => GenMapper::open(dir),
            Some(pool_pages) => {
                let mut config = relstore::PoolConfig::default();
                if let Some(pages) = pool_pages {
                    config.pool_pages = pages;
                }
                GenMapper::open_paged(dir, config)
            }
        },
    };
    let mut gm = gm.map_err(|e| format!("failed to open store: {e}"))?;
    if let Some(jobs) = args.jobs {
        gm.set_jobs(jobs);
    }
    Ok(gm)
}

fn run_repl(args: &CliArgs) -> Result<(), String> {
    let gm = open_system(args)?;
    let mut session = CliSession::with_system(gm);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("GenMapper shell — type 'help' for commands, 'demo 7' to load data");
    loop {
        print!("genmapper> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let (output, outcome) = session.execute_line(&line);
        print!("{output}");
        if outcome == CliOutcome::Quit {
            break;
        }
    }
    Ok(())
}

fn run_serve(args: &CliArgs) -> Result<(), String> {
    let mut gm = open_system(args)?;
    if let Some(seed) = args.demo {
        use sources::ecosystem::{Ecosystem, EcosystemParams};
        let eco = Ecosystem::generate(EcosystemParams::demo(seed));
        gm.import_dumps(&eco.dumps)
            .map_err(|e| format!("demo import failed: {e}"))?;
    }
    let shared = Arc::new(SharedGenMapper::new(gm).map_err(|e| format!("snapshot failed: {e}"))?);
    let config = ServerConfig {
        addr: args.addr.clone().unwrap_or_else(|| "127.0.0.1:7070".to_owned()),
        threads: args.threads.unwrap_or(4),
        // deadlines, size caps, write budget, drain bound
        ..ServerConfig::default()
    };
    let server =
        Server::start(shared, &config).map_err(|e| format!("failed to bind {}: {e}", config.addr))?;
    println!("serving on {} ({} threads); 'quit' or EOF stops", server.local_addr(), config.threads);
    // block on stdin so the service can be stopped gracefully from a pipe
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line.trim() == "quit" => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
    }
    let (connections, requests, reads, writes, errors) = server.stats().snapshot();
    let (shed_writes, timeouts, oversized) = server.stats().hardening_snapshot();
    server
        .shutdown()
        .map_err(|e| format!("shutdown failed: {e}"))?;
    println!(
        "served {requests} requests ({reads} reads, {writes} writes, {errors} errors) over {connections} connections; \
         shed {shed_writes} writes, evicted {timeouts} timeouts, rejected {oversized} oversized"
    );
    Ok(())
}

fn run_call(args: &CliArgs) -> Result<bool, String> {
    if args.words.is_empty() {
        return Err(format!("call needs a request; {USAGE}"));
    }
    let addr = args.addr.clone().unwrap_or_else(|| "127.0.0.1:7070".to_owned());
    let request = args.words.join(" ");
    // read-class requests retry transient failures (connect errors,
    // `err busy`) with capped jittered backoff; writes go out once
    let report = serve::call_retry(
        &addr,
        &request,
        &serve::ClientConfig::default(),
        &serve::RetryPolicy::default(),
    )
    .map_err(|e| format!("call to {addr} failed: {e}"))?;
    if report.attempts > 1 {
        eprintln!("({} attempts)", report.attempts);
    }
    if report.ok {
        print!("{}", report.body);
        if !report.body.ends_with('\n') {
            println!();
        }
    } else {
        eprintln!("error: {}", report.body);
    }
    Ok(report.ok)
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let mode = match argv.first().map(String::as_str) {
        Some("serve") | Some("call") => argv.remove(0),
        _ => String::new(),
    };
    let args = match parse_args(argv.into_iter()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let result = match mode.as_str() {
        "serve" => run_serve(&args).map(|()| true),
        "call" => run_call(&args),
        _ => run_repl(&args).map(|()| true),
    };
    match result {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
