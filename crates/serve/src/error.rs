//! Typed request/response errors for the service protocol.

use gam::GamError;

/// The wire-visible error class; determines the `err <kind>` header token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// The request was malformed: unknown endpoint, bad arity, unparsable
    /// query words.
    BadRequest,
    /// The request was well-formed but names something that does not
    /// exist: an unknown source, object, or mapping path.
    NotFound,
    /// The engine failed while executing a valid request.
    Internal,
}

impl ServeErrorKind {
    /// The protocol token for this kind.
    pub fn token(self) -> &'static str {
        match self {
            ServeErrorKind::BadRequest => "bad-request",
            ServeErrorKind::NotFound => "not-found",
            ServeErrorKind::Internal => "internal",
        }
    }
}

/// One failed request: a kind plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    pub kind: ServeErrorKind,
    pub message: String,
}

impl ServeError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::BadRequest,
            message: message.into(),
        }
    }

    pub fn not_found(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::NotFound,
            message: message.into(),
        }
    }

    pub fn internal(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Internal,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.token(), self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<GamError> for ServeError {
    fn from(e: GamError) -> Self {
        let kind = match &e {
            GamError::UnknownSourceName(_)
            | GamError::UnknownSource(_)
            | GamError::UnknownObject(_)
            | GamError::UnknownSourceRel(_)
            | GamError::NoMapping { .. } => ServeErrorKind::NotFound,
            GamError::Invalid(_) => ServeErrorKind::BadRequest,
            _ => ServeErrorKind::Internal,
        };
        ServeError {
            kind,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::SourceId;

    #[test]
    fn gam_errors_map_to_protocol_kinds() {
        let e: ServeError = GamError::UnknownSourceName("Nope".into()).into();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
        assert!(e.message.contains("Nope"));
        let e: ServeError = GamError::Invalid("bad spec".into()).into();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        let e: ServeError = GamError::NoMapping {
            from: SourceId(1),
            to: SourceId(2),
        }
        .into();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
    }

    #[test]
    fn tokens_are_stable() {
        assert_eq!(ServeErrorKind::BadRequest.token(), "bad-request");
        assert_eq!(ServeErrorKind::NotFound.token(), "not-found");
        assert_eq!(ServeErrorKind::Internal.token(), "internal");
    }
}
