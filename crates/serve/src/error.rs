//! Typed request/response errors for the service protocol.

use gam::GamError;

/// The wire-visible error class; determines the `err <kind>` header token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeErrorKind {
    /// The request was malformed: unknown endpoint, bad arity, unparsable
    /// query words.
    BadRequest,
    /// The request was well-formed but names something that does not
    /// exist: an unknown source, object, or mapping path.
    NotFound,
    /// The request (or its line framing) exceeded a configured size cap.
    /// The server closes the connection after sending this.
    TooLarge,
    /// The write budget is exhausted: the request was shed by admission
    /// control rather than queued. Retryable — the budget frees as soon
    /// as an in-flight write completes.
    Busy,
    /// A connection deadline expired (slow-loris eviction). The server
    /// closes the connection after a best-effort notification.
    Timeout,
    /// The service is up but not accepting new work (draining before
    /// shutdown). Reported by the `ready` endpoint.
    Unavailable,
    /// The engine failed while executing a valid request.
    Internal,
}

impl ServeErrorKind {
    /// The protocol token for this kind.
    pub fn token(self) -> &'static str {
        match self {
            ServeErrorKind::BadRequest => "bad-request",
            ServeErrorKind::NotFound => "not-found",
            ServeErrorKind::TooLarge => "too-large",
            ServeErrorKind::Busy => "busy",
            ServeErrorKind::Timeout => "timeout",
            ServeErrorKind::Unavailable => "unavailable",
            ServeErrorKind::Internal => "internal",
        }
    }

    /// Whether a client may safely retry a request that failed with this
    /// kind (after backoff). Only transient, state-independent failures
    /// qualify.
    pub fn is_retryable(self) -> bool {
        matches!(self, ServeErrorKind::Busy | ServeErrorKind::Unavailable)
    }
}

/// One failed request: a kind plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    pub kind: ServeErrorKind,
    pub message: String,
}

impl ServeError {
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::BadRequest,
            message: message.into(),
        }
    }

    pub fn not_found(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::NotFound,
            message: message.into(),
        }
    }

    pub fn too_large(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::TooLarge,
            message: message.into(),
        }
    }

    pub fn busy(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Busy,
            message: message.into(),
        }
    }

    pub fn timeout(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Timeout,
            message: message.into(),
        }
    }

    pub fn unavailable(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Unavailable,
            message: message.into(),
        }
    }

    pub fn internal(message: impl Into<String>) -> Self {
        ServeError {
            kind: ServeErrorKind::Internal,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.token(), self.message)
    }
}

impl std::error::Error for ServeError {}

impl From<GamError> for ServeError {
    fn from(e: GamError) -> Self {
        let kind = match &e {
            GamError::UnknownSourceName(_)
            | GamError::UnknownSource(_)
            | GamError::UnknownObject(_)
            | GamError::UnknownSourceRel(_)
            | GamError::NoMapping { .. } => ServeErrorKind::NotFound,
            GamError::Invalid(_) => ServeErrorKind::BadRequest,
            _ => ServeErrorKind::Internal,
        };
        ServeError {
            kind,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::SourceId;

    #[test]
    fn gam_errors_map_to_protocol_kinds() {
        let e: ServeError = GamError::UnknownSourceName("Nope".into()).into();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
        assert!(e.message.contains("Nope"));
        let e: ServeError = GamError::Invalid("bad spec".into()).into();
        assert_eq!(e.kind, ServeErrorKind::BadRequest);
        let e: ServeError = GamError::NoMapping {
            from: SourceId(1),
            to: SourceId(2),
        }
        .into();
        assert_eq!(e.kind, ServeErrorKind::NotFound);
    }

    #[test]
    fn tokens_are_stable() {
        assert_eq!(ServeErrorKind::BadRequest.token(), "bad-request");
        assert_eq!(ServeErrorKind::NotFound.token(), "not-found");
        assert_eq!(ServeErrorKind::TooLarge.token(), "too-large");
        assert_eq!(ServeErrorKind::Busy.token(), "busy");
        assert_eq!(ServeErrorKind::Timeout.token(), "timeout");
        assert_eq!(ServeErrorKind::Unavailable.token(), "unavailable");
        assert_eq!(ServeErrorKind::Internal.token(), "internal");
    }

    #[test]
    fn only_transient_kinds_are_retryable() {
        assert!(ServeErrorKind::Busy.is_retryable());
        assert!(ServeErrorKind::Unavailable.is_retryable());
        assert!(!ServeErrorKind::BadRequest.is_retryable());
        assert!(!ServeErrorKind::NotFound.is_retryable());
        assert!(!ServeErrorKind::TooLarge.is_retryable());
        assert!(!ServeErrorKind::Internal.is_retryable());
    }
}
