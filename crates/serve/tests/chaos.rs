//! Deterministic network-fault sweep: every fault point must leave the
//! server serving — a fresh connection gets a bit-identical read at a
//! monotone snapshot version.
//!
//! The sweep drives a request mix through a [`FaultNet`] chaos proxy and
//! fires one planned fault per point: 25 op indices × 4 fault kinds
//! (disconnect, torn frame, stall past the deadline, latency spike) =
//! 100 points, plus 8 shutdown-during-load points — 108 in total. The
//! mix includes `import demo 7` writes, which are idempotent on the
//! demo-7 corpus, so the reference query body is a fixed point: its FNV
//! checksum must never change, no matter where a fault lands.

use genmapper::{GenMapper, SharedGenMapper};
use serve::{call, call_with, ClientConfig, FaultNet, NetFaultPlan, Server, ServerConfig};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The reference read: resolved through two mapping paths, sensitive to
/// sources, mappings, and associations alike.
const REFERENCE_QUERY: &str = "query LocusLink:353 or Hugo GO";

/// Reads interleaved between writes while driving faults.
const READ_MIX: [&str; 4] = [REFERENCE_QUERY, "stats", "import-status", "ping"];

fn demo_shared() -> Arc<SharedGenMapper> {
    let eco = Ecosystem::generate(EcosystemParams::demo(7));
    let mut gm = GenMapper::in_memory().unwrap();
    gm.import_dumps(&eco.dumps).unwrap();
    Arc::new(SharedGenMapper::new(gm).unwrap())
}

fn chaos_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 4,
        // tight read deadline so stalled/severed proxy connections free
        // their workers quickly
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

/// FNV-1a over the response body — the bit-identity witness.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The snapshot version from `import-status`, as an ordered pair.
fn current_version(addr: &str) -> (u64, u64) {
    let (ok, body) = call(addr, "import-status").unwrap();
    assert!(ok, "import-status failed: {body}");
    let raw = body
        .split_whitespace()
        .find_map(|word| word.strip_prefix("version="))
        .unwrap_or_else(|| panic!("no version in {body:?}"));
    let (major, minor) = raw.split_once('.').unwrap_or_else(|| panic!("bad version {raw:?}"));
    (major.parse().unwrap(), minor.parse().unwrap())
}

/// After each fault point the server must hand a fresh connection the
/// bit-identical reference body at a non-decreasing version.
fn assert_serving(addr: &str, reference_sum: u64, last_version: &mut (u64, u64), point: &str) {
    let (ok, body) = call(addr, REFERENCE_QUERY)
        .unwrap_or_else(|e| panic!("{point}: fresh connection failed: {e}"));
    assert!(ok, "{point}: reference query errored: {body}");
    assert_eq!(
        fnv1a(body.as_bytes()),
        reference_sum,
        "{point}: reference body changed"
    );
    let version = current_version(addr);
    assert!(
        version >= *last_version,
        "{point}: version went backwards: {version:?} < {last_version:?}"
    );
    *last_version = version;
}

#[test]
fn hundred_point_fault_sweep_leaves_the_server_serving() {
    let server = Server::start(demo_shared(), &chaos_config()).unwrap();
    let addr = server.local_addr();
    let addr_str = addr.to_string();

    let (ok, reference) = call(&addr_str, REFERENCE_QUERY).unwrap();
    assert!(ok && reference.contains("APRT"), "reference read: {reference}");
    let reference_sum = fnv1a(reference.as_bytes());
    let mut last_version = current_version(&addr_str);

    // clients through the proxy give up fast and tolerate every error;
    // only the post-fault direct read is load-bearing
    let proxy_client = ClientConfig {
        read_timeout: Duration::from_millis(200),
        ..ClientConfig::default()
    };

    let mut points = 0u64;
    let mut injected = 0u64;
    for kind in ["disconnect", "torn", "stall", "delay"] {
        for idx in 1..=25u64 {
            let mut plan = NetFaultPlan {
                seed: 0xc4a0_5000 + idx,
                ..NetFaultPlan::default()
            };
            match kind {
                "disconnect" => plan.disconnect_at = Some(idx),
                "torn" => plan.torn_at = Some(idx),
                "stall" => plan.stall_at = Some(idx),
                _ => {
                    plan.delay_at = Some(idx);
                    plan.delay = Duration::from_millis(50);
                }
            }
            let net = FaultNet::start(addr, plan).unwrap();
            let proxy = net.local_addr().to_string();
            // drive the mix until the planned op index is reached; each
            // request is at least two ops (request + response chunk)
            for i in 0..80u64 {
                if net.counters().total() >= 1 {
                    break;
                }
                let request = if i % 9 == 7 { "import demo 7" } else { READ_MIX[(i % 4) as usize] };
                let _ = call_with(&proxy, request, &proxy_client);
            }
            let fired = net.counters().total();
            net.shutdown();
            let point = format!("{kind}@{idx}");
            assert!(fired >= 1, "{point}: fault never fired");
            points += 1;
            injected += fired;
            assert_serving(&addr_str, reference_sum, &mut last_version, &point);
        }
    }
    assert_eq!(points, 100, "sweep covers 100 proxy fault points");
    assert!(injected >= 100, "injected {injected} faults across the sweep");
    server.shutdown().unwrap();
}

#[test]
fn shutdown_under_load_leaves_the_snapshot_consistent() {
    let shared = demo_shared();
    // the probe server outlives every victim and witnesses consistency
    let probe = Server::start(shared.clone(), &chaos_config()).unwrap();
    let probe_addr = probe.local_addr().to_string();

    let (ok, reference) = call(&probe_addr, REFERENCE_QUERY).unwrap();
    assert!(ok, "{reference}");
    let reference_sum = fnv1a(reference.as_bytes());
    let mut last_version = current_version(&probe_addr);

    for point in 0..8u64 {
        let victim = Server::start(shared.clone(), &chaos_config()).unwrap();
        let victim_addr = victim.local_addr().to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let loaders: Vec<_> = (0..3u64)
            .map(|loader| {
                let addr = victim_addr.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut i = loader;
                    while !stop.load(Ordering::SeqCst) {
                        // one loader mixes writes in; shutdown lands on
                        // reads and an in-flight import alike
                        let request = if loader == 0 && i % 5 == 2 {
                            "import demo 7"
                        } else {
                            READ_MIX[(i % 4) as usize]
                        };
                        let _ = call(&addr, request);
                        i += 1;
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(25));
        victim.shutdown().unwrap_or_else(|e| panic!("point {point}: drain failed: {e}"));
        stop.store(true, Ordering::SeqCst);
        for loader in loaders {
            loader.join().unwrap();
        }
        assert_serving(
            &probe_addr,
            reference_sum,
            &mut last_version,
            &format!("shutdown-under-load@{point}"),
        );
    }
    probe.shutdown().unwrap();
}
