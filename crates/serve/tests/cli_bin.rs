//! Drive the compiled `genmapper-cli` binary through a scripted stdin
//! session — the closest offline equivalent of a user at the paper's
//! interactive interface.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_genmapper-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("binary exits");
    assert!(output.status.success(), "cli exited with {:?}", output.status);
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn scripted_session_through_the_binary() {
    let out = run_script(
        "demo 7\n\
         stats\n\
         search LocusLink adenine\n\
         path NetAffx GO\n\
         query LocusLink:353 or Hugo GO\n\
         export csv\n\
         quit\n",
    );
    assert!(out.contains("sources"), "stats shown");
    assert!(out.contains("Fact"), "type breakdown shown");
    assert!(out.contains("353"), "keyword search hit");
    assert!(out.contains("NetAffx ->"), "path printed");
    assert!(out.contains("APRT"), "query answered");
    assert!(out.contains("LocusLink,Hugo,GO"), "csv export");
}

#[test]
fn binary_survives_errors_and_eof() {
    // unknown commands and runtime errors must not kill the process; EOF
    // (no quit) must end it cleanly
    let out = run_script("nonsense\ninfo Nowhere 1\nsources\n");
    assert!(out.contains("parse error"));
    assert!(out.contains("error:"));
}

#[test]
fn serve_mode_answers_calls_and_stops_on_quit() {
    use std::io::{BufRead, BufReader};

    let mut child = Command::new(env!("CARGO_BIN_EXE_genmapper-cli"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--demo", "7"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    // the first stdout line announces the bound address
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("announce line");
    let addr = line
        .strip_prefix("serving on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
        .to_owned();

    let (ok, body) = serve::call(&addr, "ping").expect("ping");
    assert!(ok);
    assert_eq!(body, "pong\n");
    let (ok, body) = serve::call(&addr, "query LocusLink:353 or Hugo").expect("query");
    assert!(ok, "query failed: {body}");
    assert!(body.contains("APRT"));

    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(b"quit\n")
        .expect("quit written");
    let status = child.wait().expect("binary exits");
    assert!(status.success(), "serve exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).expect("summary read");
    assert!(rest.contains("served "), "summary printed: {rest}");
}

#[test]
fn call_mode_round_trips_against_a_server() {
    let server = {
        use genmapper::GenMapper;
        use sources::ecosystem::{Ecosystem, EcosystemParams};
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let shared = std::sync::Arc::new(genmapper::SharedGenMapper::new(gm).unwrap());
        serve::Server::start(
            shared,
            &serve::ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                threads: 2,
                ..serve::ServerConfig::default()
            },
        )
        .unwrap()
    };
    let addr = server.local_addr().to_string();

    let out = Command::new(env!("CARGO_BIN_EXE_genmapper-cli"))
        .args(["call", "--addr", &addr, "stats"])
        .output()
        .expect("call runs");
    assert!(out.status.success());
    let body = String::from_utf8(out.stdout).expect("utf-8");
    assert!(body.contains("19 sources"), "stats over call: {body}");

    // protocol errors surface as exit code 1 with the message on stderr
    let out = Command::new(env!("CARGO_BIN_EXE_genmapper-cli"))
        .args(["call", "--addr", &addr, "path", "Nowhere", "GO"])
        .output()
        .expect("call runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf-8");
    assert!(err.contains("unknown source"), "stderr: {err}");
    server.shutdown().unwrap();
}
