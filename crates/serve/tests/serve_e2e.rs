//! End-to-end service tests: a real TCP server, real client connections,
//! concurrent readers during a bulk import, and graceful shutdown.

use genmapper::{GenMapper, SharedGenMapper};
use serve::{call, Server, ServerConfig};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn start_server(imported: bool, threads: usize) -> Server {
    let mut gm = GenMapper::in_memory().unwrap();
    if imported {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        gm.import_dumps(&eco.dumps).unwrap();
    }
    let shared = Arc::new(SharedGenMapper::new(gm).unwrap());
    Server::start(
        shared,
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

#[test]
fn endpoints_over_the_wire() {
    let server = start_server(true, 2);
    let addr = server.local_addr().to_string();

    let (ok, body) = call(&addr, "ping").unwrap();
    assert!(ok);
    assert_eq!(body, "pong\n");

    let (ok, body) = call(&addr, "stats").unwrap();
    assert!(ok);
    assert!(body.contains("19 sources"), "stats: {body}");

    let (ok, body) = call(&addr, "query LocusLink:353 or Hugo GO").unwrap();
    assert!(ok);
    assert!(body.contains("APRT"));

    // explain returns the cost-based plan tree for the same query, with
    // actual cardinalities from a one-shot instrumented snapshot run
    let (ok, plan) = call(&addr, "explain LocusLink:353 or Hugo GO").unwrap();
    assert!(ok, "explain: {plan}");
    assert!(plan.starts_with("generate-view OR"), "plan root: {plan}");
    assert!(plan.contains("target"), "target nodes: {plan}");
    assert!(plan.contains("actual="), "actuals: {plan}");
    let (ok, bad) = call(&addr, "explain").unwrap();
    assert!(!ok, "explain without a query must fail: {bad}");

    let (ok, body) = call(&addr, "path NetAffx GO").unwrap();
    assert!(ok);
    assert!(body.starts_with("NetAffx ->"));

    let (ok, body) = call(&addr, "no-such-endpoint").unwrap();
    assert!(!ok);
    assert!(body.contains("unknown endpoint"));

    let (_, _, reads, _, errors) = server.stats().snapshot();
    assert!(reads >= 5, "reads counted: {reads}");
    // two failed requests above: unknown endpoint + explain without query
    assert_eq!(errors, 2);

    server.shutdown().unwrap();
}

#[test]
fn persistent_connections_carry_many_requests() {
    let server = start_server(true, 2);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    for _ in 0..10 {
        writeln!(stream, "stats").unwrap();
        let (ok, body) = serve::server::read_response(&mut reader).unwrap();
        assert!(ok);
        assert!(body.contains("snapshot version"));
    }
    writeln!(stream, "quit").unwrap();
    let (connections, requests, ..) = server.stats().snapshot();
    assert_eq!(connections, 1);
    assert_eq!(requests, 10);
    server.shutdown().unwrap();
}

#[test]
fn readers_progress_during_bulk_import() {
    // start empty: the import below is the first real write
    let server = start_server(false, 4);
    let addr = server.local_addr().to_string();

    let stop = Arc::new(AtomicBool::new(false));
    let reads_done = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let addr = addr.clone();
        let stop = stop.clone();
        let reads_done = reads_done.clone();
        readers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let (ok, _) = call(&addr, "import-status").unwrap();
                assert!(ok);
                reads_done.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }

    // the write: a full demo-ecosystem import through the service
    let (ok, body) = call(&addr, "import demo 7").unwrap();
    assert!(ok, "import failed: {body}");
    assert!(body.contains("19 sources"), "import summary: {body}");

    stop.store(true, Ordering::SeqCst);
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        reads_done.load(Ordering::SeqCst) > 0,
        "readers progressed during the import"
    );

    // post-import reads see the new snapshot
    let (ok, body) = call(&addr, "query LocusLink:353 or Hugo").unwrap();
    assert!(ok, "query after import: {body}");
    assert!(body.contains("APRT"));
    server.shutdown().unwrap();
}

#[test]
fn graceful_shutdown_joins_all_workers() {
    let server = start_server(false, 3);
    let addr = server.local_addr().to_string();
    let (ok, _) = call(&addr, "ping").unwrap();
    assert!(ok);
    server.shutdown().unwrap();
    // the port no longer accepts requests (connect may succeed briefly on
    // some stacks, but a request gets no response)
    if let Ok((_, body)) = call(&addr, "ping") {
        panic!("server still answering after shutdown: {body}");
    }
}
