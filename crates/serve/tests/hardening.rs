//! Hardening end-to-end tests: slow-loris eviction at the read deadline,
//! oversized-request rejection, write shedding under a saturated writer,
//! and drain-bounded graceful shutdown — all over real TCP.

use genmapper::{GenMapper, SharedGenMapper};
use serve::{call, call_retry, ClientConfig, RetryPolicy, Server, ServerConfig};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn demo_shared() -> Arc<SharedGenMapper> {
    let eco = Ecosystem::generate(EcosystemParams::demo(7));
    let mut gm = GenMapper::in_memory().unwrap();
    gm.import_dumps(&eco.dumps).unwrap();
    Arc::new(SharedGenMapper::new(gm).unwrap())
}

fn start(config: ServerConfig) -> Server {
    Server::start(demo_shared(), &config).unwrap()
}

fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: 2,
        ..ServerConfig::default()
    }
}

#[test]
fn slow_loris_is_evicted_at_the_read_deadline() {
    let server = start(ServerConfig {
        read_timeout: Duration::from_millis(100),
        ..base_config()
    });
    let addr = server.local_addr();

    // dribble half a request and then go silent
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"query Locus").unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let started = Instant::now();
    let mut tail = String::new();
    // the server answers err timeout (best effort) and closes — either
    // way the connection must end promptly, not hold the worker forever
    let _ = conn.read_to_string(&mut tail);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "eviction took {:?}",
        started.elapsed()
    );
    if !tail.is_empty() {
        assert!(tail.starts_with("err timeout"), "frame: {tail:?}");
    }
    let (_, timeouts, _) = (
        server.stats().hardening_snapshot().0,
        server.stats().hardening_snapshot().1,
        (),
    );
    assert_eq!(timeouts, 1, "timeout counted");

    // the worker is free again: a fresh connection answers immediately
    let (ok, body) = call(&addr.to_string(), "ping").unwrap();
    assert!(ok);
    assert_eq!(body, "pong\n");
    server.shutdown().unwrap();
}

#[test]
fn oversized_request_is_rejected_and_the_connection_closed() {
    let server = start(ServerConfig {
        max_request_bytes: 256,
        ..base_config()
    });
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).unwrap();
    // 4 KiB without a newline: over budget long before a line completes
    conn.write_all(&[b'q'; 4096]).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let mut resp = String::new();
    let _ = conn.read_to_string(&mut resp);
    assert!(resp.starts_with("err too-large"), "frame: {resp:?}");
    // read_to_string returning means the server closed the connection
    let (_, _, oversized) = server.stats().hardening_snapshot();
    assert_eq!(oversized, 1);

    // a well-behaved request under the cap still works
    let (ok, _) = call(&addr.to_string(), "stats").unwrap();
    assert!(ok);
    server.shutdown().unwrap();
}

#[test]
fn writes_are_shed_while_the_budget_is_saturated_and_readers_progress() {
    let server = start(ServerConfig {
        max_in_flight_writes: 1,
        ..base_config()
    });
    let addr = server.local_addr().to_string();

    // saturate the single write slot, as a long-running import would
    let slot = server.shared().try_admit_write(1).unwrap();

    // service writes now shed deterministically with retryable busy
    let resp = serve::call_with(&addr, "materialize subsumed GO", &ClientConfig::default()).unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.kind.as_deref(), Some("busy"), "{resp:?}");
    assert!(resp.body.contains("budget"), "{resp:?}");

    // readers keep answering off the snapshot the whole time
    for request in ["ping", "stats", "query LocusLink:353 or Hugo GO", "ready"] {
        let (ok, body) = call(&addr, request).unwrap();
        assert!(ok, "{request}: {body}");
    }

    let (shed, _, _) = server.stats().hardening_snapshot();
    assert_eq!(shed, 1, "shed counted");
    let (body, _) = {
        let (ok, body) = call(&addr, "stats").unwrap();
        assert!(ok);
        (body, ())
    };
    assert!(body.contains("shed_writes=1"), "stats fold: {body}");

    // freeing the slot lets the same write through
    drop(slot);
    let (ok, body) = call(&addr, "materialize subsumed GO").unwrap();
    assert!(ok, "{body}");
    server.shutdown().unwrap();
}

#[test]
fn shed_writes_succeed_on_retry_once_the_budget_frees() {
    let server = start(ServerConfig {
        max_in_flight_writes: 1,
        ..base_config()
    });
    let addr = server.local_addr().to_string();
    let slot = server.shared().try_admit_write(1).unwrap();

    // writes are never auto-retried — one attempt, shed
    let report = call_retry(
        &addr,
        "materialize subsumed GO",
        &ClientConfig::default(),
        &RetryPolicy::default(),
    )
    .unwrap();
    assert!(!report.ok);
    assert_eq!(report.attempts, 1, "writes go out exactly once");

    // a reader retried while the server restarts-or-sheds is fine; here
    // just pin the attempts surface on the happy path
    let report = call_retry(&addr, "ping", &ClientConfig::default(), &RetryPolicy::default()).unwrap();
    assert!(report.ok);
    assert_eq!(report.attempts, 1);

    drop(slot);
    server.shutdown().unwrap();
}

#[test]
fn graceful_drain_completes_in_flight_requests() {
    let server = start(ServerConfig {
        drain_timeout: Duration::from_secs(10),
        ..base_config()
    });
    let addr = server.local_addr().to_string();

    // a write in flight when shutdown lands must complete and get its
    // response before the connection closes
    let writer = {
        let addr = addr.clone();
        std::thread::spawn(move || call(&addr, "import demo 7"))
    };
    // give the request time to be read off the socket
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown().unwrap();
    let (ok, body) = writer.join().unwrap().unwrap();
    assert!(ok, "in-flight write finished across shutdown: {body}");
    assert!(body.contains("19 sources"), "{body}");
}

#[test]
fn drain_times_out_when_a_connection_wont_finish() {
    let server = start(ServerConfig {
        // the connection's read deadline is far beyond the drain bound
        read_timeout: Duration::from_secs(30),
        drain_timeout: Duration::from_millis(150),
        ..base_config()
    });
    let addr = server.local_addr();

    // an idle persistent connection pins its worker in read()
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.write_all(b"ping\n").unwrap();
    let mut reader = BufReader::new(idle.try_clone().unwrap());
    let (ok, _) = serve::read_response(&mut reader).unwrap();
    assert!(ok);

    let started = Instant::now();
    let err = server.shutdown().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "drain bound respected, took {:?}",
        started.elapsed()
    );
}
