//! The GenMapper interactive shell — stdin/stdout REPL over the command
//! language in `genmapper::cli` (the paper's interactive access, §5.1).
//!
//! Run with: `cargo run -p genmapper --bin genmapper-cli [-- --jobs N]`
//! Then e.g.: `demo 7`, `sources`, `query LocusLink:353 or Hugo GO`, `quit`.
//!
//! `--jobs N` caps the worker threads used by the parallel Compose /
//! GenerateView executor (default: all available cores; `--jobs 1` forces
//! sequential execution). The cap can also be changed at runtime with the
//! `jobs` command.

use genmapper::cli::{CliOutcome, CliSession};
use std::io::{BufRead, Write};

fn parse_args() -> Result<Option<usize>, String> {
    let mut jobs = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let value = args
                .next()
                .ok_or_else(|| "--jobs requires a count".to_owned())?;
            jobs = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid --jobs value {value:?}"))?,
            );
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            jobs = Some(
                value
                    .parse()
                    .map_err(|_| format!("invalid --jobs value {value:?}"))?,
            );
        } else {
            return Err(format!("unknown argument {arg:?}; usage: genmapper-cli [--jobs N]"));
        }
    }
    Ok(jobs)
}

fn main() {
    let jobs = match parse_args() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut session = match CliSession::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    if let Some(jobs) = jobs {
        session.system().set_jobs(jobs);
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("GenMapper shell — type 'help' for commands, 'demo 7' to load data");
    loop {
        print!("genmapper> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let (output, outcome) = session.execute_line(&line);
        print!("{output}");
        if outcome == CliOutcome::Quit {
            break;
        }
    }
}
