//! The GenMapper interactive shell — stdin/stdout REPL over the command
//! language in `genmapper::cli` (the paper's interactive access, §5.1).
//!
//! Run with: `cargo run -p genmapper --bin genmapper-cli [-- OPTIONS]`
//! Then e.g.: `demo 7`, `sources`, `query LocusLink:353 or Hugo GO`, `quit`.
//!
//! Options:
//! * `--jobs N` caps the worker threads used by the parallel Compose /
//!   GenerateView executor (default: all available cores; `--jobs 1`
//!   forces sequential execution). Also changeable at runtime (`jobs`).
//! * `--db DIR` opens (or creates) a durable store rooted at `DIR`
//!   instead of the default volatile in-memory store.
//! * `--paged[=POOL_PAGES]` makes `--db` use paged table storage: rows
//!   live in slotted heap pages behind a buffer pool, so stores larger
//!   than RAM stay queryable. `POOL_PAGES` caps resident pages
//!   (default 64); `stats` then reports pool residency and hit rate.

use genmapper::cli::{CliOutcome, CliSession};
use genmapper::system::GenMapper;
use std::io::{BufRead, Write};
use std::path::PathBuf;

const USAGE: &str = "usage: genmapper-cli [--jobs N] [--db DIR [--paged[=POOL_PAGES]]]";

struct CliArgs {
    jobs: Option<usize>,
    db: Option<PathBuf>,
    /// `Some(None)` = `--paged` with the default pool size.
    paged: Option<Option<usize>>,
}

fn parse_args() -> Result<CliArgs, String> {
    let mut parsed = CliArgs {
        jobs: None,
        db: None,
        paged: None,
    };
    let parse_jobs = |value: &str| {
        value
            .parse()
            .map_err(|_| format!("invalid --jobs value {value:?}"))
    };
    let parse_pool = |value: &str| {
        match value.parse() {
            Ok(0) | Err(_) => Err(format!("invalid --paged pool size {value:?}")),
            Ok(n) => Ok(n),
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let value = args
                .next()
                .ok_or_else(|| "--jobs requires a count".to_owned())?;
            parsed.jobs = Some(parse_jobs(&value)?);
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            parsed.jobs = Some(parse_jobs(value)?);
        } else if arg == "--db" {
            let value = args
                .next()
                .ok_or_else(|| "--db requires a directory".to_owned())?;
            parsed.db = Some(PathBuf::from(value));
        } else if let Some(value) = arg.strip_prefix("--db=") {
            parsed.db = Some(PathBuf::from(value));
        } else if arg == "--paged" {
            parsed.paged = Some(None);
        } else if let Some(value) = arg.strip_prefix("--paged=") {
            parsed.paged = Some(Some(parse_pool(value)?));
        } else {
            return Err(format!("unknown argument {arg:?}; {USAGE}"));
        }
    }
    if parsed.paged.is_some() && parsed.db.is_none() {
        return Err(format!("--paged requires --db; {USAGE}"));
    }
    Ok(parsed)
}

fn open_session(args: &CliArgs) -> Result<CliSession, String> {
    let Some(dir) = &args.db else {
        return CliSession::new().map_err(|e| format!("failed to start: {e}"));
    };
    let gm = match args.paged {
        None => GenMapper::open(dir),
        Some(pool_pages) => {
            let mut config = relstore::PoolConfig::default();
            if let Some(pages) = pool_pages {
                config.pool_pages = pages;
            }
            GenMapper::open_paged(dir, config)
        }
    };
    match gm {
        Ok(gm) => Ok(CliSession::with_system(gm)),
        Err(e) => Err(format!("failed to open {}: {e}", dir.display())),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut session = match open_session(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Some(jobs) = args.jobs {
        session.system().set_jobs(jobs);
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("GenMapper shell — type 'help' for commands, 'demo 7' to load data");
    loop {
        print!("genmapper> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let (output, outcome) = session.execute_line(&line);
        print!("{output}");
        if outcome == CliOutcome::Quit {
            break;
        }
    }
}
