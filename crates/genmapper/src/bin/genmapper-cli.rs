//! The GenMapper interactive shell — stdin/stdout REPL over the command
//! language in `genmapper::cli` (the paper's interactive access, §5.1).
//!
//! Run with: `cargo run -p genmapper --bin genmapper-cli`
//! Then e.g.: `demo 7`, `sources`, `query LocusLink:353 or Hugo GO`, `quit`.

use genmapper::cli::{CliOutcome, CliSession};
use std::io::{BufRead, Write};

fn main() {
    let mut session = match CliSession::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("GenMapper shell — type 'help' for commands, 'demo 7' to load data");
    loop {
        print!("genmapper> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let (output, outcome) = session.execute_line(&line);
        print!("{output}");
        if outcome == CliOutcome::Quit {
            break;
        }
    }
}
