//! The [`GenMapper`] system handle.

use crate::query::QuerySpec;
use crate::resolved::{ObjectInfo, ResolvedCell, ResolvedRow, ResolvedView};
use gam::store::GamCardinalities;
use gam::{
    GamError, GamRead, GamResult, GamStore, Mapping, MappingIndex, ObjectId, SourceId, SourceRelId,
};
use import::{Importer, PipelineOptions};
use operators::{
    generate_view_idx, ExecConfig, IndexResolver, MappingResolver, TargetSpec, ViewQuery,
};
use parking_lot::RwLock;
use pathfinder::{SavedPaths, SourceGraph};
use sources::ecosystem::SourceDump;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::Arc;

/// Mapping resolver that first tries a direct `Map` and otherwise searches
/// the source graph for a shortest mapping path and composes along it —
/// exactly how the interactive interface determines mappings (paper §5.1).
pub struct PathResolver<'g> {
    graph: &'g SourceGraph,
}

impl<'g> PathResolver<'g> {
    /// A resolver over a prebuilt source graph.
    pub fn new(graph: &'g SourceGraph) -> Self {
        PathResolver { graph }
    }
}

impl MappingResolver for PathResolver<'_> {
    fn resolve(&self, store: &dyn GamRead, from: SourceId, to: SourceId) -> GamResult<Mapping> {
        match operators::map(store, from, to) {
            Ok(m) => Ok(m),
            Err(GamError::NoMapping { .. }) => {
                let path = self
                    .graph
                    .shortest_path(from, to)
                    .ok_or(GamError::NoMapping { from, to })?;
                operators::compose_path(store, &path)
            }
            Err(e) => Err(e),
        }
    }
}

/// The mapping/object-set cache surface the shared query executor resolves
/// through. Two implementors: [`GenMapper`] (versioned entries, discarded
/// on any store mutation) and [`crate::Snapshot`] (plain entries — a
/// snapshot is immutable, so its cache never invalidates). `Sync` because
/// the parallel per-target workers of `generate_view_idx` share it.
pub(crate) trait IndexCache: Sync {
    /// Look `key` up, building and inserting on a miss.
    fn cached_mapping(
        &self,
        key: MappingKey,
        build: &mut dyn FnMut() -> GamResult<MappingIndex>,
    ) -> GamResult<Arc<MappingIndex>>;

    /// The cached set of all object ids of `source`, built from `reader`
    /// on a miss.
    fn cached_source_objects(
        &self,
        reader: &dyn GamRead,
        source: SourceId,
    ) -> GamResult<Arc<BTreeSet<ObjectId>>>;
}

/// [`PathResolver`] backed by an [`IndexCache`]: a resolved `(from, to)`
/// mapping is indexed once and then served as a shared CSR
/// [`MappingIndex`] behind an `Arc` — the view executor probes the cached
/// index directly, cloning nothing. Safe to call from the parallel
/// per-target workers of `generate_view_idx`.
struct CachingPathResolver<'a> {
    cache: &'a dyn IndexCache,
    graph: &'a SourceGraph,
    /// Config for compose joins performed *inside* a resolution — kept
    /// sequential when the caller already parallelizes across targets.
    compose_exec: ExecConfig,
}

impl IndexResolver for CachingPathResolver<'_> {
    fn resolve_index(
        &self,
        store: &dyn GamRead,
        from: SourceId,
        to: SourceId,
    ) -> GamResult<Arc<MappingIndex>> {
        self.cache
            .cached_mapping(MappingKey::direct(from, to), &mut || {
                match operators::map_index(store, from, to) {
                    Ok(m) => Ok(m),
                    Err(GamError::NoMapping { .. }) => {
                        let path = self
                            .graph
                            .shortest_path(from, to)
                            .ok_or(GamError::NoMapping { from, to })?;
                        operators::compose_path_idx(store, &path, &self.compose_exec)
                    }
                    Err(e) => Err(e),
                }
            })
    }
}

/// Cache key for one resolved mapping: endpoints, the explicit compose
/// path (if any), and the evidence floor (as its bit pattern — `f64` is
/// neither `Eq` nor `Hash`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MappingKey {
    from: SourceId,
    to: SourceId,
    path: Option<Vec<SourceId>>,
    min_evidence_bits: Option<u64>,
}

impl MappingKey {
    fn direct(from: SourceId, to: SourceId) -> Self {
        MappingKey {
            from,
            to,
            path: None,
            min_evidence_bits: None,
        }
    }

    fn composed(path: &[SourceId]) -> GamResult<Self> {
        let (Some(&from), Some(&to)) = (path.first(), path.last()) else {
            return Err(GamError::Invalid("compose path is empty".into()));
        };
        Ok(MappingKey {
            from,
            to,
            path: Some(path.to_vec()),
            min_evidence_bits: None,
        })
    }

    fn with_min_evidence(mut self, threshold: f64) -> Self {
        self.min_evidence_bits = Some(threshold.to_bits());
        self
    }
}

/// The versioned mapping cache. Entries are tagged with the store mutation
/// counter they were built against; the first access after any mutation
/// sees the version mismatch and discards everything. This generalizes the
/// pattern of the `graph` cache (drop on mutation) to a keyed map that can
/// be consulted from `&self` (hence the `RwLock`) and shared with the
/// parallel view executor.
#[derive(Default)]
struct CacheInner {
    /// `(GenMapper invalidation counter, GamStore mutation counter)` the
    /// entries were built against. The second component is defense in
    /// depth: even a mutation that reaches the store without going
    /// through a GenMapper entry point moves it (the store bumps it
    /// itself — enforced by genlint's cache-coherence rule).
    version: (u64, u64),
    /// Cached mappings in CSR form — the unit the system caches and joins.
    /// Consumers probe the shared index (restrictions, view folds, merge
    /// joins) and only materialize a `Mapping` at the public facade.
    mappings: HashMap<MappingKey, Arc<MappingIndex>>,
    /// Per-source object-id sets for whole-source views, so repeated
    /// queries over one source don't rescan the object table.
    source_objects: HashMap<SourceId, Arc<BTreeSet<ObjectId>>>,
    /// The source graph, shared with readers; same invalidation protocol
    /// as the mapping entries.
    graph: Option<Arc<SourceGraph>>,
}

impl CacheInner {
    /// Discard every entry and stamp the cache with `version`.
    fn reset_to(&mut self, version: (u64, u64)) {
        self.mappings.clear();
        self.source_objects.clear();
        self.graph = None;
        self.version = version;
    }
}

/// The assembled GenMapper system.
pub struct GenMapper {
    store: GamStore,
    saved: SavedPaths,
    /// Parallel execution tunables for Compose / GenerateView.
    exec: ExecConfig,
    /// Per-dump quarantine budget for lenient parsing during imports
    /// (`0` = strict, the default).
    error_budget: usize,
    /// Store mutation counter; bumped by every mutating entry point.
    version: u64,
    /// Versioned mapping + source-object cache (see [`CacheInner`]).
    cache: RwLock<CacheInner>,
}

impl GenMapper {
    /// A volatile instance.
    pub fn in_memory() -> GamResult<Self> {
        Ok(GenMapper {
            store: GamStore::in_memory()?,
            saved: SavedPaths::new(),
            exec: ExecConfig::default(),
            error_budget: 0,
            version: 0,
            cache: RwLock::new(CacheInner::default()),
        })
    }

    /// A durable instance rooted at `dir`.
    pub fn open(dir: &Path) -> GamResult<Self> {
        Ok(GenMapper {
            store: GamStore::open(dir)?,
            saved: SavedPaths::new(),
            exec: ExecConfig::default(),
            error_budget: 0,
            version: 0,
            cache: RwLock::new(CacheInner::default()),
        })
    }

    /// A durable instance rooted at `dir` with paged table storage: rows
    /// live in slotted heap pages behind a buffer pool of
    /// `config.pool_pages`, so annotation sets larger than RAM stay
    /// queryable with bounded resident memory.
    pub fn open_paged(dir: &Path, config: relstore::PoolConfig) -> GamResult<Self> {
        Ok(GenMapper {
            store: GamStore::open_paged(dir, config)?,
            saved: SavedPaths::new(),
            exec: ExecConfig::default(),
            error_budget: 0,
            version: 0,
            cache: RwLock::new(CacheInner::default()),
        })
    }

    /// Snapshot + WAL truncation for durable instances.
    pub fn checkpoint(&mut self) -> GamResult<()> {
        self.store.checkpoint()
    }

    // ------------------------------------------------------------------
    // Execution configuration
    // ------------------------------------------------------------------

    /// The current parallel execution configuration.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec
    }

    /// Replace the parallel execution configuration.
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// Set the worker-thread cap (`0`/`1` = sequential), keeping the
    /// parallel threshold.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.exec.jobs = jobs;
    }

    /// The current per-dump quarantine budget for imports.
    pub fn error_budget(&self) -> usize {
        self.error_budget
    }

    /// Allow up to `budget` malformed lines per dump to be quarantined
    /// (reported, not imported) instead of failing the run. `0` restores
    /// strict parsing.
    pub fn set_error_budget(&mut self, budget: usize) {
        self.error_budget = budget;
    }

    // ------------------------------------------------------------------
    // Cache plumbing
    // ------------------------------------------------------------------

    /// Invalidate every derived cache: the source graph and all versioned
    /// mapping/object entries. Called by every mutating entry point.
    fn invalidate_caches(&mut self) {
        self.version += 1;
    }

    /// The version tag cache entries must carry to be served: the local
    /// invalidation counter plus the store's own mutation counter. Public
    /// so concurrency tests and the service layer can correlate published
    /// snapshots with the writer state they were captured from.
    pub fn version_stamp(&self) -> (u64, u64) {
        (self.version, self.store.mutation_count())
    }

    fn cache_version(&self) -> (u64, u64) {
        self.version_stamp()
    }

    /// Look `key` up in the mapping cache, building and inserting it on a
    /// miss. Entries from before the current store version are discarded.
    /// Correctness note: the builder reads the store at `self.version`, and
    /// the version can only move under `&mut self`, so an entry can never
    /// be inserted against a newer store state than it was built from.
    fn cached_mapping(
        &self,
        key: MappingKey,
        build: impl FnOnce() -> GamResult<MappingIndex>,
    ) -> GamResult<Arc<MappingIndex>> {
        {
            let inner = self.cache.read();
            if inner.version == self.cache_version() {
                if let Some(hit) = inner.mappings.get(&key) {
                    return Ok(hit.clone());
                }
            }
        }
        let built = Arc::new(build()?);
        let mut inner = self.cache.write();
        if inner.version != self.cache_version() {
            inner.reset_to(self.cache_version());
        }
        inner.mappings.insert(key, built.clone());
        Ok(built)
    }

    /// The cached set of all object ids of `source` (same invalidation
    /// protocol as the mapping entries).
    fn cached_source_objects(&self, source: SourceId) -> GamResult<Arc<BTreeSet<ObjectId>>> {
        {
            let inner = self.cache.read();
            if inner.version == self.cache_version() {
                if let Some(hit) = inner.source_objects.get(&source) {
                    return Ok(hit.clone());
                }
            }
        }
        let built: Arc<BTreeSet<ObjectId>> =
            Arc::new(self.store.object_ids_of(source)?.into_iter().collect());
        let mut inner = self.cache.write();
        if inner.version != self.cache_version() {
            inner.reset_to(self.cache_version());
        }
        inner.source_objects.insert(source, built.clone());
        Ok(built)
    }

    /// Number of live entries in the mapping cache (diagnostics, tests).
    pub fn mapping_cache_len(&self) -> usize {
        let inner = self.cache.read();
        if inner.version == self.cache_version() {
            inner.mappings.len() + inner.source_objects.len()
        } else {
            0
        }
    }

    /// Direct access to the underlying store (operators, statistics).
    pub fn store(&self) -> &GamStore {
        &self.store
    }

    /// Mutable access to the underlying store. Invalidates the graph and
    /// mapping caches, since callers may add mappings.
    pub fn store_mut(&mut self) -> &mut GamStore {
        self.invalidate_caches();
        &mut self.store
    }

    // ------------------------------------------------------------------
    // Integration
    // ------------------------------------------------------------------

    /// Parse and import source dumps through the two-phase pipeline.
    pub fn import_dumps(&mut self, dumps: &[SourceDump]) -> GamResult<Vec<import::ImportReport>> {
        self.invalidate_caches();
        // parse fan-out follows the system's execution config, like
        // Compose/GenerateView do
        let options = PipelineOptions {
            parse_threads: self.exec.jobs.max(1),
            error_budget: self.error_budget,
            ..PipelineOptions::default()
        };
        import::run_pipeline(&mut self.store, dumps, &options)
    }

    /// Import one pre-parsed EAV batch.
    pub fn import_batch(&mut self, batch: &eav::EavBatch) -> GamResult<import::ImportReport> {
        self.invalidate_caches();
        Importer::new(&mut self.store).import(batch)
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Resolve a source name to its id.
    pub fn source_id(&self, name: &str) -> GamResult<SourceId> {
        self.store
            .find_source(name)?
            .map(|s| s.id)
            .ok_or_else(|| GamError::UnknownSourceName(name.to_owned()))
    }

    /// All registered sources.
    pub fn sources(&self) -> GamResult<Vec<gam::Source>> {
        self.store.sources()
    }

    /// The §5 deployment cardinalities.
    pub fn cardinalities(&self) -> GamResult<GamCardinalities> {
        self.store.cardinalities()
    }

    // ------------------------------------------------------------------
    // Paths
    // ------------------------------------------------------------------

    /// The (cached, shared) source graph. Read path: serves a shared
    /// handle from the versioned cache, rebuilding only after a mutation.
    pub fn graph(&self) -> GamResult<Arc<SourceGraph>> {
        {
            let inner = self.cache.read();
            if inner.version == self.cache_version() {
                if let Some(g) = &inner.graph {
                    return Ok(g.clone());
                }
            }
        }
        let built = Arc::new(SourceGraph::from_store(&self.store)?);
        let mut inner = self.cache.write();
        if inner.version != self.cache_version() {
            inner.reset_to(self.cache_version());
        }
        inner.graph = Some(built.clone());
        Ok(built)
    }

    /// Automatically determined shortest mapping path between two sources,
    /// as source names.
    pub fn find_path(&self, from: &str, to: &str) -> GamResult<Vec<String>> {
        let from_id = self.source_id(from)?;
        let to_id = self.source_id(to)?;
        let graph = self.graph()?;
        let path = graph
            .shortest_path(from_id, to_id)
            .ok_or(GamError::NoMapping {
                from: from_id,
                to: to_id,
            })?;
        self.path_names(&path)
    }

    /// Up to `k` alternative mapping paths.
    pub fn find_paths(&self, from: &str, to: &str, k: usize) -> GamResult<Vec<Vec<String>>> {
        let from_id = self.source_id(from)?;
        let to_id = self.source_id(to)?;
        let graph = self.graph()?;
        let paths = graph.k_shortest_paths(from_id, to_id, k);
        paths.iter().map(|p| self.path_names(p)).collect()
    }

    /// Save a manually built path under a name (validated).
    pub fn save_path(&mut self, name: &str, path: &[&str]) -> GamResult<()> {
        let ids = self.path_ids(path)?;
        let graph = self.graph()?;
        self.saved.save(name, ids, &graph)
    }

    /// A previously saved path, as names.
    pub fn saved_path(&self, name: &str) -> Option<Vec<SourceId>> {
        self.saved.get(name).map(<[SourceId]>::to_vec)
    }

    fn path_names(&self, path: &[SourceId]) -> GamResult<Vec<String>> {
        path.iter()
            .map(|&id| Ok(self.store.get_source(id)?.name))
            .collect()
    }

    fn path_ids(&self, path: &[&str]) -> GamResult<Vec<SourceId>> {
        path.iter().map(|n| self.source_id(n)).collect()
    }

    // ------------------------------------------------------------------
    // Operators, by name
    // ------------------------------------------------------------------

    /// `Map(S, T)` by source names. Served from the versioned mapping
    /// cache when warm; see [`GenMapper::map_shared`] for the clone-free
    /// CSR handle.
    pub fn map(&self, from: &str, to: &str) -> GamResult<Mapping> {
        Ok(self.map_shared(from, to)?.to_mapping())
    }

    /// `Map(S, T)` by source names, as a shared CSR index handle into the
    /// versioned mapping cache (no clone of the association data; the
    /// index loads through the batched `OBJECT_REL` scan on a cold miss).
    pub fn map_shared(&self, from: &str, to: &str) -> GamResult<Arc<MappingIndex>> {
        let from = self.source_id(from)?;
        let to = self.source_id(to)?;
        self.cached_mapping(MappingKey::direct(from, to), || {
            operators::map_index(&self.store, from, to)
        })
    }

    /// `Compose` along a path of source names. Served from the versioned
    /// mapping cache when warm; joins run under the system's
    /// [`ExecConfig`].
    pub fn compose(&self, path: &[&str]) -> GamResult<Mapping> {
        Ok(self.compose_shared(path)?.to_mapping())
    }

    /// `Compose` along a path of source names, as a shared CSR cache
    /// handle. Sequential joins run as sorted merge joins over the step
    /// indexes; above the parallel threshold they fall back to the
    /// partitioned hash probe — bit-identical either way.
    pub fn compose_shared(&self, path: &[&str]) -> GamResult<Arc<MappingIndex>> {
        let ids = self.path_ids(path)?;
        if ids.len() < 2 {
            return Err(GamError::Invalid(
                "compose path needs at least two sources".into(),
            ));
        }
        self.cached_mapping(MappingKey::composed(&ids)?, || {
            operators::compose_path_idx(&self.store, &ids, &self.exec)
        })
    }

    /// `Compose` along a path with an evidence floor applied at every join
    /// step (cached under the `(path, min_evidence)` key).
    pub fn compose_with_threshold(
        &self,
        path: &[&str],
        min_evidence: f64,
    ) -> GamResult<Arc<MappingIndex>> {
        let ids = self.path_ids(path)?;
        if ids.len() < 2 {
            return Err(GamError::Invalid(
                "compose path needs at least two sources".into(),
            ));
        }
        self.cached_mapping(
            MappingKey::composed(&ids)?.with_min_evidence(min_evidence),
            || operators::compose_path_idx_with_threshold(&self.store, &ids, min_evidence, &self.exec),
        )
    }

    /// Materialize the composition along a path of source names.
    pub fn materialize_composed(&mut self, path: &[&str]) -> GamResult<(SourceRelId, usize)> {
        let ids = self.path_ids(path)?;
        self.invalidate_caches();
        operators::materialize::materialize_composed(&mut self.store, &ids)
    }

    /// Derive and materialize the Subsumed mapping of a taxonomy source.
    pub fn materialize_subsumed(&mut self, source: &str) -> GamResult<(SourceRelId, usize)> {
        let id = self.source_id(source)?;
        self.invalidate_caches();
        operators::materialize::materialize_subsumed(&mut self.store, id)
    }

    // ------------------------------------------------------------------
    // Queries (the Figure 6 workflow)
    // ------------------------------------------------------------------

    /// Execute a [`QuerySpec`]: GenerateView with automatic path
    /// discovery, then resolve ids back to accessions/names. Target
    /// columns are resolved in parallel under the system's [`ExecConfig`],
    /// and every resolved mapping (and the whole-source object set) is
    /// served from the versioned cache on repeat queries. `&self`: the
    /// entire read path runs without exclusive access, so any number of
    /// readers can query while sharing one system.
    pub fn query(&self, spec: &QuerySpec) -> GamResult<ResolvedView> {
        let graph = self.graph()?;
        run_query(&self.store, self, &graph, self.exec, spec)
    }

    /// Explain a [`QuerySpec`]: the cost-based plan the executor would
    /// choose, rendered with estimated vs actual cardinalities from a
    /// one-shot instrumented (uncached) run. `&self`, like [`Self::query`].
    pub fn explain(&self, spec: &QuerySpec) -> GamResult<String> {
        let graph = self.graph()?;
        run_explain(&self.store, self, &graph, self.exec, spec)
    }

    /// Full information about one object (Figure 6c).
    pub fn object_info(&self, source: &str, accession: &str) -> GamResult<ObjectInfo> {
        object_info_of(&self.store, source, accession)
    }

    /// An immutable, self-contained snapshot of the whole read surface:
    /// store data, source graph, saved paths, and (pre-warmed) mapping
    /// cache. The snapshot answers queries bit-identically to this system
    /// at the moment of capture and never changes afterwards — the unit
    /// the service layer publishes to readers with one `Arc` swap.
    pub fn capture_snapshot(&self) -> GamResult<crate::Snapshot> {
        let reader = gam::GamSnapshot::capture(&self.store)?;
        let graph = self.graph()?;
        // Pre-warm the snapshot cache from the live cache: every entry at
        // the current version was built from exactly the state the
        // snapshot captured, and indexes are immutable behind Arcs.
        let warm = {
            let inner = self.cache.read();
            if inner.version == self.cache_version() {
                Some(crate::snapshot::SnapshotCache {
                    mappings: inner.mappings.clone(),
                    source_objects: inner.source_objects.clone(),
                })
            } else {
                None
            }
        };
        Ok(crate::Snapshot::assemble(
            reader,
            graph,
            self.saved.clone(),
            self.exec,
            self.version_stamp(),
            warm,
        ))
    }
}

impl IndexCache for GenMapper {
    fn cached_mapping(
        &self,
        key: MappingKey,
        build: &mut dyn FnMut() -> GamResult<MappingIndex>,
    ) -> GamResult<Arc<MappingIndex>> {
        GenMapper::cached_mapping(self, key, build)
    }

    fn cached_source_objects(
        &self,
        _reader: &dyn GamRead,
        source: SourceId,
    ) -> GamResult<Arc<BTreeSet<ObjectId>>> {
        GenMapper::cached_source_objects(self, source)
    }
}

/// Resolve accessions to object ids against any reader; unknown
/// accessions are an error listing what is missing.
pub(crate) fn resolve_accessions(
    reader: &dyn GamRead,
    source: SourceId,
    accessions: &[String],
) -> GamResult<BTreeSet<ObjectId>> {
    let mut out = BTreeSet::new();
    let mut missing = Vec::new();
    for acc in accessions {
        match reader.find_object(source, acc)? {
            Some(obj) => {
                out.insert(obj.id);
            }
            None => missing.push(acc.as_str()),
        }
    }
    if !missing.is_empty() {
        return Err(GamError::Invalid(format!(
            "unknown accessions in source {source}: {}",
            missing.join(", ")
        )));
    }
    Ok(out)
}

/// Resolve a source name to its id against any reader.
pub(crate) fn source_id_of(reader: &dyn GamRead, name: &str) -> GamResult<SourceId> {
    reader
        .find_source(name)?
        .map(|s| s.id)
        .ok_or_else(|| GamError::UnknownSourceName(name.to_owned()))
}

/// Source-name path to ids against any reader.
pub(crate) fn path_ids_of(reader: &dyn GamRead, path: &[&str]) -> GamResult<Vec<SourceId>> {
    path.iter().map(|n| source_id_of(reader, n)).collect()
}

/// The one shared query executor: both the live system ([`GenMapper::query`])
/// and the published [`crate::Snapshot`] run *this exact code* over their
/// respective reader + cache, which is what makes concurrent snapshot reads
/// structurally bit-identical to the single-threaded path.
pub(crate) fn run_query(
    reader: &dyn GamRead,
    cache: &dyn IndexCache,
    graph: &SourceGraph,
    exec: ExecConfig,
    spec: &QuerySpec,
) -> GamResult<ResolvedView> {
    let (vq, header) = build_view_query(reader, cache, spec)?;
    // when several targets resolve concurrently, keep their inner
    // compose joins sequential so the thread count stays ≤ exec.jobs
    let compose_exec = if exec.jobs > 1 && vq.targets.len() > 1 {
        ExecConfig::sequential().with_plan(exec.plan)
    } else {
        exec
    };
    let resolver = CachingPathResolver {
        cache,
        graph,
        compose_exec,
    };
    let view = generate_view_idx(reader, &vq, &resolver, &exec)?;

    let mut rows = Vec::with_capacity(view.rows.len());
    for row in &view.rows {
        let mut cells = Vec::with_capacity(row.len());
        for cell in row {
            cells.push(match cell {
                Some(id) => {
                    let obj = reader.get_object(*id)?;
                    Some(ResolvedCell {
                        accession: obj.accession,
                        text: obj.text,
                    })
                }
                None => None,
            });
        }
        rows.push(ResolvedRow { cells });
    }
    Ok(ResolvedView { header, rows })
}

/// Translate a [`QuerySpec`] (source/target names, accessions, via paths)
/// into the typed [`ViewQuery`] plus the display header — shared by the
/// query executor and the explain path so both describe the same plan.
fn build_view_query(
    reader: &dyn GamRead,
    cache: &dyn IndexCache,
    spec: &QuerySpec,
) -> GamResult<(ViewQuery, Vec<String>)> {
    let source = source_id_of(reader, &spec.source)?;
    let mut vq = ViewQuery::new(source).combine(spec.combine);
    if spec.accessions.is_empty() {
        // whole-source query: reuse the cached object-id set instead of
        // rescanning the object table inside generate_view
        vq = vq.objects((*cache.cached_source_objects(reader, source)?).clone());
    } else {
        vq = vq.objects(resolve_accessions(reader, source, &spec.accessions)?);
    }
    let mut header = vec![spec.source.clone()];
    for t in &spec.targets {
        let target = source_id_of(reader, &t.source)?;
        let mut ts = TargetSpec::all(target);
        if !t.accessions.is_empty() {
            ts.objects = Some(resolve_accessions(reader, target, &t.accessions)?);
        }
        ts.negated = t.negated;
        ts.min_evidence = t.min_evidence;
        if let Some(via) = &t.via {
            let refs: Vec<&str> = via.iter().map(String::as_str).collect();
            ts.path = Some(path_ids_of(reader, &refs)?);
        }
        header.push(t.source.clone());
        vq = vq.target(ts);
    }
    Ok((vq, header))
}

/// One-shot instrumented explain of a [`QuerySpec`]: build the same
/// [`ViewQuery`] as [`run_query`], pre-resolve each target's mapping path
/// from the source graph (so the plan tree shows the full Compose chain
/// the executor would run), then plan and execute it uncached through
/// [`operators::plan::explain_view`], returning the rendered plan tree
/// with estimated vs actual cardinalities.
pub(crate) fn run_explain(
    reader: &dyn GamRead,
    cache: &dyn IndexCache,
    graph: &SourceGraph,
    exec: ExecConfig,
    spec: &QuerySpec,
) -> GamResult<String> {
    let (mut vq, _header) = build_view_query(reader, cache, spec)?;
    for ts in &mut vq.targets {
        if ts.path.is_none() {
            // Mirror CachingPathResolver: direct map first (explain_view
            // probes that before composing), shortest graph path otherwise.
            if let Some(p) = graph.shortest_path(vq.source, ts.target) {
                if p.len() >= 2 {
                    ts.path = Some(p);
                }
            }
        }
    }
    let path_resolver = PathResolver::new(graph);
    let resolver = operators::BuildIndexResolver(&path_resolver);
    let tree = operators::plan::explain_view(reader, &vq, &resolver, &exec)?;
    Ok(tree.render())
}

/// Full information about one object against any reader (Figure 6c).
pub(crate) fn object_info_of(
    reader: &dyn GamRead,
    source: &str,
    accession: &str,
) -> GamResult<ObjectInfo> {
    let source_id = source_id_of(reader, source)?;
    let obj = reader.find_object(source_id, accession)?.ok_or_else(|| {
        GamError::Invalid(format!("unknown accession {accession} in {source}"))
    })?;
    let mut associations = Vec::new();
    for (_, assoc) in reader.associations_of_object(obj.id)? {
        let partner = reader.get_object(assoc.to)?;
        let partner_source = reader.get_source(partner.source)?;
        associations.push((partner_source.name, partner.accession, assoc.evidence));
    }
    associations.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
    Ok(ObjectInfo {
        id: obj.id,
        source: source.to_owned(),
        accession: obj.accession,
        text: obj.text,
        number: obj.number,
        associations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::TargetQuery;
    use sources::ecosystem::{Ecosystem, EcosystemParams};

    fn system() -> GenMapper {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        let reports = gm.import_dumps(&eco.dumps).unwrap();
        assert!(reports.iter().all(|r| !r.skipped));
        gm
    }

    #[test]
    fn figure3_view_for_locus_353() {
        let gm = system();
        let spec = QuerySpec::source("LocusLink")
            .accessions(["353"])
            .target("Hugo")
            .target("GO")
            .target("Location")
            .target("OMIM");
        let view = gm.query(&spec).unwrap();
        assert_eq!(view.header, vec!["LocusLink", "Hugo", "GO", "Location", "OMIM"]);
        assert!(!view.is_empty());
        // every row anchors at locus 353
        assert!(view.rows.iter().all(|r| r.cell_text(0) == Some("353")));
        // APRT symbol, 16q24 location, GO:0009116, OMIM 102600 all present
        assert!(view.rows.iter().any(|r| r.cell_text(1) == Some("APRT")));
        assert!(view.rows.iter().any(|r| r.cell_text(3) == Some("16q24")));
        assert!(view
            .rows
            .iter()
            .any(|r| r.cell_text(2) == Some("GO:0009116")));
        assert!(view.rows.iter().any(|r| r.cell_text(4) == Some("102600")));
        // and the GO term resolves its name
        assert!(view
            .rows
            .iter()
            .any(|r| r.cell_name(2) == Some("nucleoside metabolism")));
    }

    #[test]
    fn automatic_path_discovery_composes() {
        let gm = system();
        // NetAffx has no direct GO mapping; the resolver must route via
        // Unigene/LocusLink
        let path = gm.find_path("NetAffx", "GO").unwrap();
        assert_eq!(path.first().map(String::as_str), Some("NetAffx"));
        assert_eq!(path.last().map(String::as_str), Some("GO"));
        assert!(path.len() >= 3);

        let spec = QuerySpec::source("NetAffx").target("GO").and();
        let view = gm.query(&spec).unwrap();
        assert!(!view.is_empty(), "probe sets reach GO through composition");
        // alternatives exist in a well-connected graph
        let paths = gm.find_paths("NetAffx", "GO", 3).unwrap();
        assert!(!paths.is_empty());
    }

    #[test]
    fn negated_query_partitions() {
        let gm = system();
        let with = gm
            .query(&QuerySpec::source("LocusLink").target("OMIM").and())
            .unwrap();
        let without = gm
            .query(
                &QuerySpec::source("LocusLink")
                    .target_spec(TargetQuery::new("OMIM").negated())
                    .and(),
            )
            .unwrap();
        let all = gm.store().object_count(gm.source_id("LocusLink").unwrap()).unwrap();
        let with_set: BTreeSet<&str> = with.rows.iter().filter_map(|r| r.cell_text(0)).collect();
        let without_set: BTreeSet<&str> =
            without.rows.iter().filter_map(|r| r.cell_text(0)).collect();
        assert_eq!(with_set.len() + without_set.len(), all);
        assert!(with_set.is_disjoint(&without_set));
    }

    #[test]
    fn saved_paths_and_explicit_via() {
        let mut gm = system();
        gm.save_path("affy-go", &["NetAffx", "Unigene", "LocusLink", "GO"])
            .unwrap();
        assert!(gm.saved_path("affy-go").is_some());
        // a query pinning the path produces the same columns
        let spec = QuerySpec::source("NetAffx")
            .target_spec(TargetQuery::new("GO").via(["NetAffx", "Unigene", "LocusLink", "GO"]))
            .and();
        let view = gm.query(&spec).unwrap();
        assert!(!view.is_empty());
        // invalid saved path is rejected
        assert!(gm.save_path("bogus", &["NetAffx", "Enzyme"]).is_err());
    }

    #[test]
    fn materialization_speeds_up_and_survives_reuse() {
        let mut gm = system();
        let composed = gm.compose(&["Unigene", "LocusLink", "GO"]).unwrap();
        assert!(!composed.is_empty());
        let (rel, n) = gm
            .materialize_composed(&["Unigene", "LocusLink", "GO"])
            .unwrap();
        assert_eq!(n, composed.len());
        // Map now finds the derived mapping directly
        let direct = gm.map("Unigene", "GO").unwrap();
        assert_eq!(direct.len(), composed.len());
        let stored = gm.store().get_source_rel(rel).unwrap();
        assert_eq!(stored.derivation.as_deref(), Some("Unigene-LocusLink-GO"));
    }

    #[test]
    fn subsumed_materialization_via_names() {
        let mut gm = system();
        let (_, n) = gm.materialize_subsumed("GO").unwrap();
        assert!(n > 0);
        // subsumed pairs exceed direct IS_A edge count (transitivity)
        let go = gm.source_id("GO").unwrap();
        let (isa, _) = gm
            .store()
            .find_source_rel(go, go, Some(gam::model::RelType::IsA))
            .unwrap()
            .unwrap();
        let isa_count = gm.store().association_count(isa.id).unwrap();
        assert!(n >= isa_count);
    }

    #[test]
    fn mapping_cache_serves_repeats_and_invalidates_on_mutation() {
        let mut gm = system();
        assert_eq!(gm.mapping_cache_len(), 0);
        let first = gm.map("LocusLink", "GO").unwrap();
        assert!(gm.mapping_cache_len() > 0, "miss populated the cache");
        // repeat hit: same Arc, no rebuild
        let a1 = gm.map_shared("LocusLink", "GO").unwrap();
        let a2 = gm.map_shared("LocusLink", "GO").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "repeat query hits the same entry");
        assert_eq!(a1.to_mapping(), first);

        // a whole-source query also caches the source object set
        let before = gm.mapping_cache_len();
        let spec = crate::query::QuerySpec::source("LocusLink").target("GO");
        gm.query(&spec).unwrap();
        assert!(gm.mapping_cache_len() > before);

        // any store mutation invalidates everything
        let ll = gm.source_id("LocusLink").unwrap();
        let go = gm.source_id("GO").unwrap();
        let (rel, forward) = gm
            .store()
            .find_source_rel(ll, go, Some(gam::model::RelType::Fact))
            .unwrap()
            .expect("demo ecosystem has a LocusLink<->GO fact mapping");
        let obj_ll = gm.store().object_ids_of(ll).unwrap()[0];
        let obj_go = gm.store().object_ids_of(go).unwrap()[0];
        let (o1, o2) = if forward { (obj_ll, obj_go) } else { (obj_go, obj_ll) };
        gm.store_mut()
            .add_association(rel.id, o1, o2, Some(0.42))
            .unwrap();
        assert_eq!(gm.mapping_cache_len(), 0, "mutation dropped the cache");
        // and the rebuilt mapping matches a direct, cache-free computation
        let rebuilt = gm.map("LocusLink", "GO").unwrap();
        let direct = operators::map(gm.store(), ll, go).unwrap();
        assert_eq!(rebuilt, direct);
    }

    #[test]
    fn cache_invalidated_by_every_mutating_entry_point() {
        use sources::ecosystem::{Ecosystem, EcosystemParams};
        let eco = Ecosystem::generate(EcosystemParams::demo(7));

        // import_dumps
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        gm.map("LocusLink", "GO").unwrap();
        assert!(gm.mapping_cache_len() > 0);
        gm.import_dumps(&eco.dumps).unwrap(); // idempotent, still invalidates
        assert_eq!(gm.mapping_cache_len(), 0);

        // import_batch
        gm.map("LocusLink", "GO").unwrap();
        let batch = eco.dumps[0].parse().unwrap();
        gm.import_batch(&batch).unwrap();
        assert_eq!(gm.mapping_cache_len(), 0);

        // materialize_composed
        gm.map("LocusLink", "GO").unwrap();
        gm.materialize_composed(&["Unigene", "LocusLink", "GO"]).unwrap();
        assert_eq!(gm.mapping_cache_len(), 0);

        // materialize_subsumed
        gm.map("LocusLink", "GO").unwrap();
        gm.materialize_subsumed("GO").unwrap();
        assert_eq!(gm.mapping_cache_len(), 0);

        // store_mut (even without an actual write)
        gm.map("LocusLink", "GO").unwrap();
        let _ = gm.store_mut();
        assert_eq!(gm.mapping_cache_len(), 0);
    }

    #[test]
    fn parallel_query_matches_sequential() {
        let mut seq_gm = system();
        seq_gm.set_exec_config(ExecConfig::sequential());
        let mut par_gm = system();
        par_gm.set_exec_config(ExecConfig {
            jobs: 4,
            parallel_threshold: 0,
            plan: true,
        });
        let specs = [
            QuerySpec::source("LocusLink")
                .target("Hugo")
                .target("GO")
                .target("Location")
                .target("OMIM")
                .or(),
            QuerySpec::source("LocusLink")
                .target("GO")
                .target("OMIM")
                .and(),
            QuerySpec::source("NetAffx").target("GO").and(),
            QuerySpec::source("LocusLink")
                .target("GO")
                .target_spec(crate::query::TargetQuery::new("OMIM").negated())
                .and(),
        ];
        for (i, spec) in specs.iter().enumerate() {
            let seq = seq_gm.query(spec).unwrap();
            let par = par_gm.query(spec).unwrap();
            assert_eq!(par, seq, "spec {i}");
            // and a second (cache-hit) run is still identical
            let hit = par_gm.query(spec).unwrap();
            assert_eq!(hit, seq, "spec {i} cache hit");
        }
    }

    #[test]
    fn compose_with_threshold_cached_per_floor() {
        let gm = system();
        let lax = gm
            .compose_with_threshold(&["Unigene", "LocusLink", "GO"], 0.0)
            .unwrap();
        let strict = gm
            .compose_with_threshold(&["Unigene", "LocusLink", "GO"], 0.9)
            .unwrap();
        assert!(strict.len() <= lax.len());
        // distinct floors are distinct cache entries
        let lax2 = gm
            .compose_with_threshold(&["Unigene", "LocusLink", "GO"], 0.0)
            .unwrap();
        assert!(Arc::ptr_eq(&lax, &lax2));
        assert!(!Arc::ptr_eq(&lax, &strict));
        // invalid floor still rejected
        assert!(gm
            .compose_with_threshold(&["Unigene", "LocusLink", "GO"], f64::NAN)
            .is_err());
    }

    #[test]
    fn object_info_lists_partner_accessions() {
        let gm = system();
        let info = gm.object_info("LocusLink", "353").unwrap();
        assert_eq!(info.accession, "353");
        assert_eq!(
            info.text.as_deref(),
            Some("adenine phosphoribosyltransferase")
        );
        let partners: Vec<&str> = info.associations.iter().map(|(s, _, _)| s.as_str()).collect();
        assert!(partners.contains(&"Hugo"));
        assert!(partners.contains(&"GO"));
        assert!(partners.contains(&"OMIM"));
        // unknown accession errors
        assert!(gm.object_info("LocusLink", "does-not-exist").is_err());
    }

    #[test]
    fn unknown_names_are_reported() {
        let gm = system();
        assert!(matches!(
            gm.query(&QuerySpec::source("Nope")),
            Err(GamError::UnknownSourceName(_))
        ));
        let spec = QuerySpec::source("LocusLink").accessions(["no-such-locus"]);
        let err = gm.query(&spec).unwrap_err();
        assert!(err.to_string().contains("no-such-locus"));
    }

    #[test]
    fn durable_roundtrip() {
        let dir = std::env::temp_dir().join("genmapper-system-tests").join("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let eco = Ecosystem::generate(EcosystemParams::demo(9));
        let cards = {
            let mut gm = GenMapper::open(&dir).unwrap();
            gm.import_dumps(&eco.dumps).unwrap();
            gm.checkpoint().unwrap();
            gm.cardinalities().unwrap()
        };
        {
            let gm = GenMapper::open(&dir).unwrap();
            assert_eq!(gm.cardinalities().unwrap(), cards);
            let view = gm
                .query(&QuerySpec::source("LocusLink").accessions(["353"]).target("Hugo"))
                .unwrap();
            assert!(view.rows.iter().any(|r| r.cell_text(1) == Some("APRT")));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
