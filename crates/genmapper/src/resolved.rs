//! Resolved annotation views: object ids mapped back to accessions and
//! names, ready for display and export (paper Figure 6b/6c — "All results
//! can be saved and downloaded in different formats for further analysis
//! in external tools").

use gam::ObjectId;
use std::fmt::Write as _;

/// One resolved cell: the object's accession and optional name.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ResolvedCell {
    pub accession: String,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub text: Option<String>,
}

/// One view row; cells align with [`ResolvedView::header`]. `None` is a
/// NULL (missing annotation).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ResolvedRow {
    pub cells: Vec<Option<ResolvedCell>>,
}

impl ResolvedRow {
    /// Accession in column `i`, if present.
    pub fn cell_text(&self, i: usize) -> Option<&str> {
        self.cells.get(i)?.as_ref().map(|c| c.accession.as_str())
    }

    /// Object name in column `i`, if present.
    pub fn cell_name(&self, i: usize) -> Option<&str> {
        self.cells.get(i)?.as_ref()?.text.as_deref()
    }
}

/// A fully resolved annotation view.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ResolvedView {
    /// Column names: the source, then each target (paper Figure 3 uses
    /// the source names as column headers).
    pub header: Vec<String>,
    pub rows: Vec<ResolvedRow>,
}

impl ResolvedView {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct accessions of a column.
    pub fn column_accessions(&self, column: usize) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .rows
            .iter()
            .filter_map(|r| r.cell_text(column))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Export as TSV (one header line; NULLs as empty cells).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let cells: Vec<&str> = row
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.accession.as_str()).unwrap_or(""))
                .collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        out
    }

    /// Export as CSV with minimal quoting (fields containing commas or
    /// quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| field(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .cells
                .iter()
                .map(|c| field(c.as_ref().map(|c| c.accession.as_str()).unwrap_or("")))
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Export as a GitHub-flavored Markdown table (NULLs as empty cells) —
    /// handy for pasting views into lab notebooks and issue trackers.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let cells: Vec<&str> = row
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.accession.as_str()).unwrap_or(""))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Export as JSON (array of objects keyed by header; NULL cells as
    /// `null`, cells without a name omit `"text"`).
    ///
    /// The writer is local so the export works even where `serde_json`
    /// is unavailable; output is plain RFC 8259 JSON that any parser
    /// (including `serde_json`, when present) round-trips.
    pub fn to_json(&self) -> gam::GamResult<String> {
        let mut out = String::from("[");
        for (ri, row) in self.rows.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push_str("\n  {");
            for (ci, (h, cell)) in self.header.iter().zip(&row.cells).enumerate() {
                if ci > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                write_json_string(&mut out, h);
                out.push_str(": ");
                match cell {
                    Some(c) => {
                        out.push_str("{\"accession\": ");
                        write_json_string(&mut out, &c.accession);
                        if let Some(text) = &c.text {
                            out.push_str(", \"text\": ");
                            write_json_string(&mut out, text);
                        }
                        out.push('}');
                    }
                    None => out.push_str("null"),
                }
            }
            out.push_str("\n  }");
        }
        out.push_str("\n]");
        Ok(out)
    }
}

/// Append `s` to `out` as a JSON string literal with RFC 8259 escaping.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Full information about one object (paper Figure 6c: "the user can
/// retrieve the names and other information of the corresponding
/// objects").
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ObjectInfo {
    pub id: ObjectId,
    pub source: String,
    pub accession: String,
    pub text: Option<String>,
    pub number: Option<f64>,
    /// (mapping partner source, partner accession, evidence) of every
    /// association touching the object.
    pub associations: Vec<(String, String, Option<f64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> ResolvedView {
        ResolvedView {
            header: vec!["LocusLink".into(), "GO".into()],
            rows: vec![
                ResolvedRow {
                    cells: vec![
                        Some(ResolvedCell {
                            accession: "353".into(),
                            text: Some("adenine phosphoribosyltransferase".into()),
                        }),
                        Some(ResolvedCell {
                            accession: "GO:0009116".into(),
                            text: Some("nucleoside metabolism".into()),
                        }),
                    ],
                },
                ResolvedRow {
                    cells: vec![
                        Some(ResolvedCell {
                            accession: "1234".into(),
                            text: None,
                        }),
                        None,
                    ],
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let v = view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.rows[0].cell_text(1), Some("GO:0009116"));
        assert_eq!(v.rows[0].cell_name(1), Some("nucleoside metabolism"));
        assert_eq!(v.rows[1].cell_text(1), None);
        assert_eq!(v.column_accessions(0), vec!["1234", "353"]);
    }

    #[test]
    fn tsv_export() {
        let tsv = view().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "LocusLink\tGO");
        assert_eq!(lines[1], "353\tGO:0009116");
        assert_eq!(lines[2], "1234\t");
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut v = view();
        v.rows[0].cells[0].as_mut().unwrap().accession = "a,b".into();
        let csv = v.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.starts_with("LocusLink,GO\n"));
    }

    #[test]
    fn markdown_export() {
        let md = view().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| LocusLink | GO |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 353 | GO:0009116 |");
        assert_eq!(lines[3], "| 1234 |  |");
    }

    #[test]
    fn json_export() {
        let json = view().to_json().unwrap();
        // shape assertions that hold without a JSON parser
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"GO\": {\"accession\": \"GO:0009116\""));
        assert!(json.contains("\"text\": \"nucleoside metabolism\""));
        assert!(json.contains("\"GO\": null"));
        // a cell without a name omits "text" instead of writing null
        assert!(json.contains("{\"accession\": \"1234\"}"));
        // full round-trip only where a real serde_json is available (the
        // offline check environment stubs it out)
        if serde_json::from_str::<serde_json::Value>("0").is_ok() {
            let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed[0]["GO"]["accession"], "GO:0009116");
            assert!(parsed[1]["GO"].is_null());
        }
    }

    #[test]
    fn json_export_escapes_special_characters() {
        let mut v = view();
        let cell = v.rows[0].cells[0].as_mut().unwrap();
        cell.accession = "a\"b\\c".into();
        cell.text = Some("line1\nline2\tend\u{1}".into());
        let json = v.to_json().unwrap();
        assert!(json.contains("\"accession\": \"a\\\"b\\\\c\""));
        assert!(json.contains("\"text\": \"line1\\nline2\\tend\\u0001\""));
        if serde_json::from_str::<serde_json::Value>("0").is_ok() {
            let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed[0]["LocusLink"]["accession"], "a\"b\\c");
        }
    }
}
