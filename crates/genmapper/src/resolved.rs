//! Resolved annotation views: object ids mapped back to accessions and
//! names, ready for display and export (paper Figure 6b/6c — "All results
//! can be saved and downloaded in different formats for further analysis
//! in external tools").

use gam::ObjectId;
use std::fmt::Write as _;

/// One resolved cell: the object's accession and optional name.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ResolvedCell {
    pub accession: String,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub text: Option<String>,
}

/// One view row; cells align with [`ResolvedView::header`]. `None` is a
/// NULL (missing annotation).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ResolvedRow {
    pub cells: Vec<Option<ResolvedCell>>,
}

impl ResolvedRow {
    /// Accession in column `i`, if present.
    pub fn cell_text(&self, i: usize) -> Option<&str> {
        self.cells.get(i)?.as_ref().map(|c| c.accession.as_str())
    }

    /// Object name in column `i`, if present.
    pub fn cell_name(&self, i: usize) -> Option<&str> {
        self.cells.get(i)?.as_ref()?.text.as_deref()
    }
}

/// A fully resolved annotation view.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ResolvedView {
    /// Column names: the source, then each target (paper Figure 3 uses
    /// the source names as column headers).
    pub header: Vec<String>,
    pub rows: Vec<ResolvedRow>,
}

impl ResolvedView {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct accessions of a column.
    pub fn column_accessions(&self, column: usize) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .rows
            .iter()
            .filter_map(|r| r.cell_text(column))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Export as TSV (one header line; NULLs as empty cells).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let cells: Vec<&str> = row
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.accession.as_str()).unwrap_or(""))
                .collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        out
    }

    /// Export as CSV with minimal quoting (fields containing commas or
    /// quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(|h| field(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .cells
                .iter()
                .map(|c| field(c.as_ref().map(|c| c.accession.as_str()).unwrap_or("")))
                .collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
        out
    }

    /// Export as a GitHub-flavored Markdown table (NULLs as empty cells) —
    /// handy for pasting views into lab notebooks and issue trackers.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let cells: Vec<&str> = row
                .cells
                .iter()
                .map(|c| c.as_ref().map(|c| c.accession.as_str()).unwrap_or(""))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        out
    }

    /// Export as JSON (array of objects keyed by header).
    pub fn to_json(&self) -> gam::GamResult<String> {
        let objects: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let mut obj = serde_json::Map::new();
                for (h, cell) in self.header.iter().zip(&row.cells) {
                    let value = match cell {
                        Some(c) => serde_json::json!({
                            "accession": c.accession,
                            "text": c.text,
                        }),
                        None => serde_json::Value::Null,
                    };
                    obj.insert(h.clone(), value);
                }
                serde_json::Value::Object(obj)
            })
            .collect();
        serde_json::to_string_pretty(&objects)
            .map_err(|e| gam::GamError::Invalid(format!("view serialization failed: {e}")))
    }
}

/// Full information about one object (paper Figure 6c: "the user can
/// retrieve the names and other information of the corresponding
/// objects").
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ObjectInfo {
    pub id: ObjectId,
    pub source: String,
    pub accession: String,
    pub text: Option<String>,
    pub number: Option<f64>,
    /// (mapping partner source, partner accession, evidence) of every
    /// association touching the object.
    pub associations: Vec<(String, String, Option<f64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> ResolvedView {
        ResolvedView {
            header: vec!["LocusLink".into(), "GO".into()],
            rows: vec![
                ResolvedRow {
                    cells: vec![
                        Some(ResolvedCell {
                            accession: "353".into(),
                            text: Some("adenine phosphoribosyltransferase".into()),
                        }),
                        Some(ResolvedCell {
                            accession: "GO:0009116".into(),
                            text: Some("nucleoside metabolism".into()),
                        }),
                    ],
                },
                ResolvedRow {
                    cells: vec![
                        Some(ResolvedCell {
                            accession: "1234".into(),
                            text: None,
                        }),
                        None,
                    ],
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let v = view();
        assert_eq!(v.len(), 2);
        assert_eq!(v.rows[0].cell_text(1), Some("GO:0009116"));
        assert_eq!(v.rows[0].cell_name(1), Some("nucleoside metabolism"));
        assert_eq!(v.rows[1].cell_text(1), None);
        assert_eq!(v.column_accessions(0), vec!["1234", "353"]);
    }

    #[test]
    fn tsv_export() {
        let tsv = view().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "LocusLink\tGO");
        assert_eq!(lines[1], "353\tGO:0009116");
        assert_eq!(lines[2], "1234\t");
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut v = view();
        v.rows[0].cells[0].as_mut().unwrap().accession = "a,b".into();
        let csv = v.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.starts_with("LocusLink,GO\n"));
    }

    #[test]
    fn markdown_export() {
        let md = view().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| LocusLink | GO |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 353 | GO:0009116 |");
        assert_eq!(lines[3], "| 1234 |  |");
    }

    #[test]
    fn json_export() {
        let json = view().to_json().unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["GO"]["accession"], "GO:0009116");
        assert!(parsed[1]["GO"].is_null());
    }
}
