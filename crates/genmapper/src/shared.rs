//! Single-writer / many-reader sharing of one GenMapper system.
//!
//! [`SharedGenMapper`] is the concurrency shell around [`GenMapper`]: the
//! writer (imports, materializations, saved paths) runs under an exclusive
//! `Mutex`, readers run against the currently *published*
//! [`Arc<Snapshot>`](crate::Snapshot). Publication is one atomic `Arc`
//! swap under a `RwLock` that is held only for the swap itself — never
//! across query execution or snapshot capture — so readers never block on
//! the writer and always observe a fully-published, internally consistent
//! state (MVCC with exactly one writer version in flight).

use crate::{GenMapper, Snapshot};
use gam::{GamError, GamResult};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// What the writer is currently doing, as reported to service clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportStatus {
    /// True while a writer operation is executing.
    pub writing: bool,
    /// Number of writer operations completed since startup.
    pub completed: u64,
    /// The version stamp of the currently published snapshot.
    pub published_version: (u64, u64),
}

/// A GenMapper shared between one writer and any number of readers.
pub struct SharedGenMapper {
    /// The live system; every mutation goes through this lock.
    writer: Mutex<GenMapper>,
    /// The snapshot readers see. Swapped atomically after each writer
    /// operation; the lock is held only for the `Arc` clone or swap.
    published: RwLock<Arc<Snapshot>>,
    writing: AtomicBool,
    completed: AtomicU64,
    /// Writes admitted (via [`try_admit_write`](Self::try_admit_write))
    /// and not yet finished — the semaphore count behind service-level
    /// admission control.
    in_flight: AtomicUsize,
}

/// An admitted slot in the write budget, returned by
/// [`SharedGenMapper::try_admit_write`]. The slot is held from admission
/// until drop, so it covers both the time a write waits on the writer
/// mutex and the time it executes — callers that shed on `None` bound the
/// writer queue, not just writer concurrency. Run the writer operation
/// through [`run`](Self::run).
#[must_use = "dropping the permit releases the write slot without running anything"]
pub struct WritePermit<'a> {
    shared: &'a SharedGenMapper,
}

impl WritePermit<'_> {
    /// Run one writer operation under this permit (see
    /// [`SharedGenMapper::with_writer`] for publication semantics). The
    /// slot frees when the permit drops, whether `f` succeeds or fails.
    pub fn run<R>(self, f: impl FnOnce(&mut GenMapper) -> GamResult<R>) -> GamResult<R> {
        self.shared.with_writer(f)
    }
}

impl Drop for WritePermit<'_> {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

impl SharedGenMapper {
    /// Wrap a system, capturing and publishing its initial snapshot.
    pub fn new(gm: GenMapper) -> GamResult<Self> {
        let initial = Arc::new(gm.capture_snapshot()?);
        Ok(SharedGenMapper {
            writer: Mutex::new(gm),
            published: RwLock::new(initial),
            writing: AtomicBool::new(false),
            completed: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// Writes currently admitted and not yet finished (waiting on the
    /// writer mutex or executing).
    pub fn in_flight_writes(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Try to admit one write under a budget of `max_in_flight` slots.
    /// Returns `None` — shed, the caller should report a retryable
    /// busy error — when the budget is already full. Reads are never
    /// admission-controlled: they answer from the published snapshot and
    /// cannot queue behind the writer.
    pub fn try_admit_write(&self, max_in_flight: usize) -> Option<WritePermit<'_>> {
        let mut current = self.in_flight.load(Ordering::SeqCst);
        loop {
            if current >= max_in_flight {
                return None;
            }
            match self.in_flight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(WritePermit { shared: self }),
                Err(actual) => current = actual,
            }
        }
    }

    /// The currently published snapshot. Never blocks on the writer: the
    /// read guard lives only for the duration of the `Arc` clone.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published.read().clone()
    }

    /// Run one writer operation, then capture and publish the resulting
    /// snapshot. Readers keep answering from the previous snapshot for the
    /// whole duration and switch to the new state atomically. The new
    /// snapshot is published even when `f` fails partway: a failed import
    /// may have durably changed the store, and readers must never be left
    /// on a state the writer has moved past.
    pub fn with_writer<R>(
        &self,
        f: impl FnOnce(&mut GenMapper) -> GamResult<R>,
    ) -> GamResult<R> {
        let mut gm = self.writer.lock();
        self.writing.store(true, Ordering::SeqCst);
        let result = f(&mut gm);
        let capture = gm.capture_snapshot();
        self.writing.store(false, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::SeqCst);
        match capture {
            Ok(snap) => {
                *self.published.write() = Arc::new(snap);
                result
            }
            Err(e) => {
                // keep the previous snapshot; surface whichever error
                // happened first
                result?;
                Err(GamError::Invalid(format!(
                    "writer succeeded but snapshot capture failed: {e}"
                )))
            }
        }
    }

    /// Writer/publication status for service clients.
    pub fn import_status(&self) -> ImportStatus {
        ImportStatus {
            writing: self.writing.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            published_version: self.snapshot().version(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuerySpec;
    use sources::ecosystem::{Ecosystem, EcosystemParams};

    fn shared() -> SharedGenMapper {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        SharedGenMapper::new(gm).unwrap()
    }

    #[test]
    fn publication_is_atomic_per_writer_op() {
        let sh = shared();
        let v0 = sh.snapshot().version();
        let before = sh.snapshot().cardinalities().unwrap();
        // a reader holding the old snapshot across a write is unaffected
        let held = sh.snapshot();
        sh.with_writer(|gm| gm.materialize_subsumed("GO").map(|_| ()))
            .unwrap();
        assert_eq!(held.cardinalities().unwrap(), before);
        let now = sh.snapshot();
        assert_ne!(now.version(), v0);
        assert_ne!(now.cardinalities().unwrap(), before);
        let status = sh.import_status();
        assert!(!status.writing);
        assert_eq!(status.completed, 1);
        assert_eq!(status.published_version, now.version());
    }

    #[test]
    fn failed_writer_op_republishes_current_state() {
        let sh = shared();
        let err = sh.with_writer(|gm| gm.materialize_subsumed("NoSuchSource").map(|_| ()));
        assert!(err.is_err());
        // publication still advanced (same data, fresh capture) and
        // readers still get working queries
        let snap = sh.snapshot();
        let view = snap
            .query(&QuerySpec::source("LocusLink").accessions(["353"]).target("Hugo"))
            .unwrap();
        assert!(!view.is_empty());
        assert_eq!(sh.import_status().completed, 1);
    }

    #[test]
    fn readers_share_one_published_snapshot() {
        let sh = shared();
        let a = sh.snapshot();
        let b = sh.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn write_admission_sheds_beyond_the_budget() {
        let sh = shared();
        assert_eq!(sh.in_flight_writes(), 0);
        let first = sh.try_admit_write(2).expect("first slot");
        let second = sh.try_admit_write(2).expect("second slot");
        assert_eq!(sh.in_flight_writes(), 2);
        assert!(sh.try_admit_write(2).is_none(), "budget full: shed");
        drop(second);
        assert_eq!(sh.in_flight_writes(), 1);
        // a freed slot is admittable again
        let refill = sh.try_admit_write(2).expect("slot freed by drop");
        drop(refill);
        // the permit's run() goes through the normal publish path
        let v0 = sh.snapshot().version();
        first
            .run(|gm| gm.materialize_subsumed("GO").map(|_| ()))
            .unwrap();
        assert_ne!(sh.snapshot().version(), v0);
        assert_eq!(sh.in_flight_writes(), 0, "slot freed after run");
    }

    #[test]
    fn failed_write_still_frees_its_slot() {
        let sh = shared();
        let permit = sh.try_admit_write(1).expect("slot");
        assert!(permit
            .run(|gm| gm.materialize_subsumed("NoSuchSource").map(|_| ()))
            .is_err());
        assert_eq!(sh.in_flight_writes(), 0);
        assert!(sh.try_admit_write(1).is_some());
    }

    #[test]
    fn zero_budget_sheds_everything() {
        let sh = shared();
        assert!(sh.try_admit_write(0).is_none());
    }
}
