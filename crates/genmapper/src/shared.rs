//! Single-writer / many-reader sharing of one GenMapper system.
//!
//! [`SharedGenMapper`] is the concurrency shell around [`GenMapper`]: the
//! writer (imports, materializations, saved paths) runs under an exclusive
//! `Mutex`, readers run against the currently *published*
//! [`Arc<Snapshot>`](crate::Snapshot). Publication is one atomic `Arc`
//! swap under a `RwLock` that is held only for the swap itself — never
//! across query execution or snapshot capture — so readers never block on
//! the writer and always observe a fully-published, internally consistent
//! state (MVCC with exactly one writer version in flight).

use crate::{GenMapper, Snapshot};
use gam::{GamError, GamResult};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What the writer is currently doing, as reported to service clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportStatus {
    /// True while a writer operation is executing.
    pub writing: bool,
    /// Number of writer operations completed since startup.
    pub completed: u64,
    /// The version stamp of the currently published snapshot.
    pub published_version: (u64, u64),
}

/// A GenMapper shared between one writer and any number of readers.
pub struct SharedGenMapper {
    /// The live system; every mutation goes through this lock.
    writer: Mutex<GenMapper>,
    /// The snapshot readers see. Swapped atomically after each writer
    /// operation; the lock is held only for the `Arc` clone or swap.
    published: RwLock<Arc<Snapshot>>,
    writing: AtomicBool,
    completed: AtomicU64,
}

impl SharedGenMapper {
    /// Wrap a system, capturing and publishing its initial snapshot.
    pub fn new(gm: GenMapper) -> GamResult<Self> {
        let initial = Arc::new(gm.capture_snapshot()?);
        Ok(SharedGenMapper {
            writer: Mutex::new(gm),
            published: RwLock::new(initial),
            writing: AtomicBool::new(false),
            completed: AtomicU64::new(0),
        })
    }

    /// The currently published snapshot. Never blocks on the writer: the
    /// read guard lives only for the duration of the `Arc` clone.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published.read().clone()
    }

    /// Run one writer operation, then capture and publish the resulting
    /// snapshot. Readers keep answering from the previous snapshot for the
    /// whole duration and switch to the new state atomically. The new
    /// snapshot is published even when `f` fails partway: a failed import
    /// may have durably changed the store, and readers must never be left
    /// on a state the writer has moved past.
    pub fn with_writer<R>(
        &self,
        f: impl FnOnce(&mut GenMapper) -> GamResult<R>,
    ) -> GamResult<R> {
        let mut gm = self.writer.lock();
        self.writing.store(true, Ordering::SeqCst);
        let result = f(&mut gm);
        let capture = gm.capture_snapshot();
        self.writing.store(false, Ordering::SeqCst);
        self.completed.fetch_add(1, Ordering::SeqCst);
        match capture {
            Ok(snap) => {
                *self.published.write() = Arc::new(snap);
                result
            }
            Err(e) => {
                // keep the previous snapshot; surface whichever error
                // happened first
                result?;
                Err(GamError::Invalid(format!(
                    "writer succeeded but snapshot capture failed: {e}"
                )))
            }
        }
    }

    /// Writer/publication status for service clients.
    pub fn import_status(&self) -> ImportStatus {
        ImportStatus {
            writing: self.writing.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            published_version: self.snapshot().version(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuerySpec;
    use sources::ecosystem::{Ecosystem, EcosystemParams};

    fn shared() -> SharedGenMapper {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        SharedGenMapper::new(gm).unwrap()
    }

    #[test]
    fn publication_is_atomic_per_writer_op() {
        let sh = shared();
        let v0 = sh.snapshot().version();
        let before = sh.snapshot().cardinalities().unwrap();
        // a reader holding the old snapshot across a write is unaffected
        let held = sh.snapshot();
        sh.with_writer(|gm| gm.materialize_subsumed("GO").map(|_| ()))
            .unwrap();
        assert_eq!(held.cardinalities().unwrap(), before);
        let now = sh.snapshot();
        assert_ne!(now.version(), v0);
        assert_ne!(now.cardinalities().unwrap(), before);
        let status = sh.import_status();
        assert!(!status.writing);
        assert_eq!(status.completed, 1);
        assert_eq!(status.published_version, now.version());
    }

    #[test]
    fn failed_writer_op_republishes_current_state() {
        let sh = shared();
        let err = sh.with_writer(|gm| gm.materialize_subsumed("NoSuchSource").map(|_| ()));
        assert!(err.is_err());
        // publication still advanced (same data, fresh capture) and
        // readers still get working queries
        let snap = sh.snapshot();
        let view = snap
            .query(&QuerySpec::source("LocusLink").accessions(["353"]).target("Hugo"))
            .unwrap();
        assert!(!view.is_empty());
        assert_eq!(sh.import_status().completed, 1);
    }

    #[test]
    fn readers_share_one_published_snapshot() {
        let sh = shared();
        let a = sh.snapshot();
        let b = sh.snapshot();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
