//! An immutable, published view of one GenMapper state.
//!
//! [`Snapshot`] is the MVCC read unit: everything a reader needs to answer
//! queries — the captured GAM data ([`gam::GamSnapshot`]), the source
//! graph, the saved paths, and a mapping cache — frozen at one writer
//! version. Readers execute query / GenerateView / pathfinding against it
//! with `&self` only, while the writer builds the *next* snapshot; the
//! service layer swaps the published `Arc<Snapshot>` atomically (see
//! [`crate::SharedGenMapper`]).
//!
//! A snapshot's query path is [`crate::system::run_query`] — the same
//! executor the live [`crate::GenMapper`] uses — so snapshot answers are
//! bit-identical to the single-threaded path at the capture version.

use crate::query::QuerySpec;
use crate::resolved::{ObjectInfo, ResolvedView};
use crate::system::{
    self, path_ids_of, resolve_accessions, run_query, source_id_of, IndexCache, MappingKey,
};
use gam::store::GamCardinalities;
use gam::{GamError, GamRead, GamResult, GamSnapshot, MappingIndex, ObjectId, SourceId};
use operators::ExecConfig;
use parking_lot::RwLock;
use pathfinder::{SavedPaths, SourceGraph};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// The cache of a snapshot: same shape as the live system's, but without
/// version tags — a snapshot never changes, so entries never invalidate.
#[derive(Default)]
pub(crate) struct SnapshotCache {
    pub(crate) mappings: HashMap<MappingKey, Arc<MappingIndex>>,
    pub(crate) source_objects: HashMap<SourceId, Arc<BTreeSet<ObjectId>>>,
}

/// One immutable GenMapper state, safe to share across any number of
/// reader threads. Produced by [`crate::GenMapper::capture_snapshot`].
pub struct Snapshot {
    reader: GamSnapshot,
    graph: Arc<SourceGraph>,
    saved: SavedPaths,
    exec: ExecConfig,
    version: (u64, u64),
    cache: RwLock<SnapshotCache>,
}

impl Snapshot {
    /// Assemble a snapshot from captured parts, optionally pre-warming the
    /// mapping cache with entries built at the same version.
    pub(crate) fn assemble(
        reader: GamSnapshot,
        graph: Arc<SourceGraph>,
        saved: SavedPaths,
        exec: ExecConfig,
        version: (u64, u64),
        warm: Option<SnapshotCache>,
    ) -> Snapshot {
        Snapshot {
            reader,
            graph,
            saved,
            exec,
            version,
            cache: RwLock::new(warm.unwrap_or_default()),
        }
    }

    /// The writer version this snapshot was captured at:
    /// `(GenMapper invalidation counter, GamStore mutation counter)`.
    pub fn version(&self) -> (u64, u64) {
        self.version
    }

    /// The captured GAM read surface (for ad-hoc reads beyond the
    /// high-level entry points).
    pub fn reader(&self) -> &GamSnapshot {
        &self.reader
    }

    /// Resolve a source name to its id.
    pub fn source_id(&self, name: &str) -> GamResult<SourceId> {
        source_id_of(&self.reader, name)
    }

    /// All sources at capture time.
    pub fn sources(&self) -> GamResult<Vec<gam::Source>> {
        self.reader.sources()
    }

    /// The §5 deployment cardinalities at capture time.
    pub fn cardinalities(&self) -> GamResult<GamCardinalities> {
        self.reader.cardinalities()
    }

    /// Shortest mapping path between two sources, as names.
    pub fn find_path(&self, from: &str, to: &str) -> GamResult<Vec<String>> {
        let from_id = self.source_id(from)?;
        let to_id = self.source_id(to)?;
        let path = self
            .graph
            .shortest_path(from_id, to_id)
            .ok_or(GamError::NoMapping {
                from: from_id,
                to: to_id,
            })?;
        self.path_names(&path)
    }

    /// Up to `k` alternative mapping paths, as names.
    pub fn find_paths(&self, from: &str, to: &str, k: usize) -> GamResult<Vec<Vec<String>>> {
        let from_id = self.source_id(from)?;
        let to_id = self.source_id(to)?;
        let paths = self.graph.k_shortest_paths(from_id, to_id, k);
        paths.iter().map(|p| self.path_names(p)).collect()
    }

    /// A path saved on the writer before this snapshot was captured.
    pub fn saved_path(&self, name: &str) -> Option<Vec<SourceId>> {
        self.saved.get(name).map(<[SourceId]>::to_vec)
    }

    /// Execute a [`QuerySpec`] against the captured state. Runs the same
    /// executor as [`crate::GenMapper::query`].
    pub fn query(&self, spec: &QuerySpec) -> GamResult<ResolvedView> {
        run_query(&self.reader, self, &self.graph, self.exec, spec)
    }

    /// Explain a [`QuerySpec`] against the captured state: the same
    /// planner and executor as [`Self::query`], instrumented one-shot —
    /// live and snapshot reads plan identically by construction.
    pub fn explain(&self, spec: &QuerySpec) -> GamResult<String> {
        system::run_explain(&self.reader, self, &self.graph, self.exec, spec)
    }

    /// Full information about one object (Figure 6c) at capture time.
    pub fn object_info(&self, source: &str, accession: &str) -> GamResult<ObjectInfo> {
        system::object_info_of(&self.reader, source, accession)
    }

    /// Resolve a source-name path to ids (validation for `via` clauses).
    pub fn path_ids(&self, path: &[&str]) -> GamResult<Vec<SourceId>> {
        path_ids_of(&self.reader, path)
    }

    /// Resolve accessions of a named source to object ids.
    pub fn resolve(&self, source: &str, accessions: &[String]) -> GamResult<BTreeSet<ObjectId>> {
        let id = self.source_id(source)?;
        resolve_accessions(&self.reader, id, accessions)
    }

    fn path_names(&self, path: &[SourceId]) -> GamResult<Vec<String>> {
        path.iter()
            .map(|&id| Ok(self.reader.get_source(id)?.name))
            .collect()
    }
}

impl IndexCache for Snapshot {
    fn cached_mapping(
        &self,
        key: MappingKey,
        build: &mut dyn FnMut() -> GamResult<MappingIndex>,
    ) -> GamResult<Arc<MappingIndex>> {
        {
            let cache = self.cache.read();
            if let Some(hit) = cache.mappings.get(&key) {
                return Ok(hit.clone());
            }
        }
        let built = Arc::new(build()?);
        let mut cache = self.cache.write();
        // another reader may have raced us to the build; first insert wins
        // so every consumer shares one index
        Ok(cache.mappings.entry(key).or_insert(built).clone())
    }

    fn cached_source_objects(
        &self,
        reader: &dyn GamRead,
        source: SourceId,
    ) -> GamResult<Arc<BTreeSet<ObjectId>>> {
        {
            let cache = self.cache.read();
            if let Some(hit) = cache.source_objects.get(&source) {
                return Ok(hit.clone());
            }
        }
        let built: Arc<BTreeSet<ObjectId>> =
            Arc::new(reader.object_ids_of(source)?.into_iter().collect());
        let mut cache = self.cache.write();
        Ok(cache.source_objects.entry(source).or_insert(built).clone())
    }
}

#[cfg(test)]
mod tests {
    use crate::{GenMapper, QuerySpec};
    use sources::ecosystem::{Ecosystem, EcosystemParams};

    fn system() -> GenMapper {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        gm
    }

    fn figure3_spec() -> QuerySpec {
        QuerySpec::source("LocusLink")
            .accessions(["353"])
            .target("Hugo")
            .target("GO")
            .target("Location")
            .target("OMIM")
    }

    #[test]
    fn snapshot_query_matches_live_system() {
        let gm = system();
        let live = gm.query(&figure3_spec()).unwrap();
        let snap = gm.capture_snapshot().unwrap();
        let frozen = snap.query(&figure3_spec()).unwrap();
        assert_eq!(live, frozen);
        assert_eq!(snap.version(), gm.version_stamp());
        assert_eq!(
            snap.cardinalities().unwrap(),
            gm.cardinalities().unwrap()
        );
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut gm = system();
        let snap = gm.capture_snapshot().unwrap();
        let before = snap.cardinalities().unwrap();
        gm.materialize_subsumed("GO").unwrap();
        // the live system changed; the snapshot did not
        assert_ne!(gm.cardinalities().unwrap(), before);
        assert_eq!(snap.cardinalities().unwrap(), before);
        assert_ne!(gm.version_stamp(), snap.version());
    }

    #[test]
    fn snapshot_pathfinding_and_object_info_match() {
        let gm = system();
        let snap = gm.capture_snapshot().unwrap();
        assert_eq!(
            snap.find_path("NetAffx", "GO").unwrap(),
            gm.find_path("NetAffx", "GO").unwrap()
        );
        assert_eq!(
            snap.find_paths("NetAffx", "GO", 3).unwrap(),
            gm.find_paths("NetAffx", "GO", 3).unwrap()
        );
        assert_eq!(
            snap.object_info("LocusLink", "353").unwrap(),
            gm.object_info("LocusLink", "353").unwrap()
        );
    }

    #[test]
    fn snapshot_carries_saved_paths() {
        let mut gm = system();
        gm.save_path("affx-go", &["NetAffx", "Unigene", "LocusLink", "GO"])
            .unwrap();
        let snap = gm.capture_snapshot().unwrap();
        assert_eq!(
            snap.saved_path("affx-go"),
            gm.saved_path("affx-go"),
        );
        assert!(snap.saved_path("nope").is_none());
    }
}
