//! Name-level query specifications, mirroring the interactive interface
//! (paper Figure 6a): pick a source, paste accessions, pick targets,
//! choose AND/OR and negations, optionally pin mapping paths.

use operators::Combine;

/// One requested target column.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetQuery {
    /// Target source name.
    pub source: String,
    /// Relevant target accessions; empty means all objects.
    pub accessions: Vec<String>,
    /// Negate this target's mapping.
    pub negated: bool,
    /// Explicit mapping path (source names, from the view's source to this
    /// target). `None` lets the path finder choose.
    pub via: Option<Vec<String>>,
    /// Minimum effective evidence for this target's associations.
    pub min_evidence: Option<f64>,
}

impl TargetQuery {
    /// A plain target over all its objects.
    pub fn new(source: impl Into<String>) -> Self {
        TargetQuery {
            source: source.into(),
            accessions: Vec::new(),
            negated: false,
            via: None,
            min_evidence: None,
        }
    }

    /// Restrict to specific target accessions.
    pub fn accessions<I, S>(mut self, accs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.accessions = accs.into_iter().map(Into::into).collect();
        self
    }

    /// Negate the target.
    pub fn negated(mut self) -> Self {
        self.negated = true;
        self
    }

    /// Pin the mapping path (names of intermediate sources, inclusive of
    /// both endpoints).
    pub fn via<I, S>(mut self, path: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.via = Some(path.into_iter().map(Into::into).collect());
        self
    }

    /// Require a minimum effective evidence on this target's associations.
    pub fn min_evidence(mut self, threshold: f64) -> Self {
        self.min_evidence = Some(threshold);
        self
    }
}

/// A complete query: the Figure 6a form as a value.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Source to annotate.
    pub source: String,
    /// Accessions of interest; empty means the entire source ("if no
    /// accessions are specified, the entire source will be considered").
    pub accessions: Vec<String>,
    /// Target columns.
    pub targets: Vec<TargetQuery>,
    /// AND or OR combination of the target mappings.
    pub combine: Combine,
}

impl QuerySpec {
    /// Start a query over a source.
    pub fn source(name: impl Into<String>) -> Self {
        QuerySpec {
            source: name.into(),
            accessions: Vec::new(),
            targets: Vec::new(),
            combine: Combine::Or,
        }
    }

    /// Restrict to specific source accessions.
    pub fn accessions<I, S>(mut self, accs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.accessions = accs.into_iter().map(Into::into).collect();
        self
    }

    /// Add a plain target by name.
    pub fn target(self, name: impl Into<String>) -> Self {
        self.target_spec(TargetQuery::new(name))
    }

    /// Add a fully configured target.
    pub fn target_spec(mut self, target: TargetQuery) -> Self {
        self.targets.push(target);
        self
    }

    /// Use AND combination.
    pub fn and(mut self) -> Self {
        self.combine = Combine::And;
        self
    }

    /// Use OR combination.
    pub fn or(mut self) -> Self {
        self.combine = Combine::Or;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_figure6_shape() {
        // "Given a set of LocusLink genes, identify those that are located
        // at some given cytogenetic positions, and annotated with some
        // given GO functions, but not associated with some given OMIM
        // diseases" (paper §4.2)
        let spec = QuerySpec::source("LocusLink")
            .accessions(["353", "1234"])
            .target_spec(TargetQuery::new("Location").accessions(["16q24"]))
            .target_spec(TargetQuery::new("GO").accessions(["GO:0009116"]))
            .target_spec(TargetQuery::new("OMIM").accessions(["102600"]).negated())
            .and();
        assert_eq!(spec.source, "LocusLink");
        assert_eq!(spec.accessions.len(), 2);
        assert_eq!(spec.targets.len(), 3);
        assert!(spec.targets[2].negated);
        assert_eq!(spec.combine, Combine::And);
    }

    #[test]
    fn via_paths() {
        let t = TargetQuery::new("GO").via(["NetAffx", "Unigene", "LocusLink", "GO"]);
        assert_eq!(t.via.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn evidence_threshold_builder() {
        let t = TargetQuery::new("Unigene").min_evidence(0.8);
        assert_eq!(t.min_evidence, Some(0.8));
        assert!(TargetQuery::new("GO").min_evidence.is_none());
    }
}
