//! `genmapper` — the public facade of the GenMapper reproduction.
//!
//! One handle, [`GenMapper`], wires together the whole system of Do & Rahm
//! (EDBT 2004):
//!
//! * the GAM database ([`gam::GamStore`] over the embedded `relstore`
//!   engine),
//! * the two-phase import pipeline (`sources` parsers → `import`),
//! * the high-level operators (`operators`: Map, Compose, Subsume,
//!   GenerateView),
//! * automatic mapping-path discovery (`pathfinder`), and
//! * name/accession-level queries with exportable annotation views — the
//!   workflow of the interactive interface in the paper's Figure 6.
//!
//! # Quickstart
//!
//! ```
//! use genmapper::{GenMapper, QuerySpec};
//! use sources::ecosystem::{Ecosystem, EcosystemParams};
//!
//! // generate and integrate a small synthetic source ecosystem
//! let eco = Ecosystem::generate(EcosystemParams::demo(7));
//! let mut gm = GenMapper::in_memory().unwrap();
//! gm.import_dumps(&eco.dumps).unwrap();
//!
//! // the annotation view of paper Figure 3: LocusLink genes with their
//! // Hugo symbols, GO functions, locations and OMIM diseases
//! let spec = QuerySpec::source("LocusLink")
//!     .accessions(["353"])
//!     .target("Hugo")
//!     .target("GO")
//!     .target("Location")
//!     .target("OMIM");
//! let view = gm.query(&spec).unwrap();
//! assert!(view.rows.iter().any(|r| r.cell_text(1) == Some("APRT")));
//! ```

// Non-test code on the import/query path must propagate errors, never
// panic: one malformed dump line must not take down a whole import.
// genlint's no-panic rule enforces the same invariant where clippy is
// not run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod cli;
pub mod query;
pub mod resolved;
pub mod shared;
pub mod snapshot;
pub mod system;

pub use query::{QuerySpec, TargetQuery};
pub use resolved::{ObjectInfo, ResolvedRow, ResolvedView};
pub use shared::{ImportStatus, SharedGenMapper, WritePermit};
pub use snapshot::Snapshot;
pub use system::{GenMapper, PathResolver};

pub use gam::{GamError, GamResult};
pub use operators::{Combine, ExecConfig};
