//! A line-oriented command interface over [`GenMapper`] — the reproduction
//! of the paper's interactive access (§5.1, Figure 6), as a REPL instead
//! of a web UI. The command language is parsed and executed here so it is
//! unit-testable; `src/bin/genmapper-cli.rs` wires it to stdin/stdout.
//!
//! ```text
//! demo 7                          generate + import a demo ecosystem
//! sources                         list sources with metadata
//! stats                           deployment cardinalities
//! search <source> <keyword>       keyword search over object names
//! prefix <source> <accession..>   accession prefix search
//! info <source> <accession>       object information (Figure 6c)
//! path <from> <to>                automatic shortest mapping path
//! paths <from> <to> <k>           k alternative paths
//! map <from> <to>                 Map(S, T) summary
//! compose <s1> <s2> [<s3> ...]    Compose along a path
//! materialize composed <s1> <s2> [...]
//! materialize subsumed <source>
//! query <source>[:a1,a2] <and|or> <spec> [<spec> ...]
//!        spec = [!]Target[=a1,a2][@0.5]  (! negates; @t sets min evidence)
//! explain query <...>             the cost-based plan for a query, with
//!                                 estimated vs actual cardinalities
//! export <tsv|csv|json|md>        export the last query's view
//! jobs [<n>]                      show/set the parallel worker cap
//! budget [<n>]                    show/set the per-dump import error budget
//! help / quit
//! ```

use crate::query::{QuerySpec, TargetQuery};
use crate::resolved::ResolvedView;
use crate::system::GenMapper;
use gam::GamResult;
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::fmt::Write as _;

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Help,
    Quit,
    Demo { seed: u64 },
    Sources,
    Stats,
    Search { source: String, keyword: String },
    Prefix { source: String, prefix: String },
    Info { source: String, accession: String },
    Path { from: String, to: String },
    Paths { from: String, to: String, k: usize },
    Map { from: String, to: String },
    Compose { path: Vec<String> },
    MaterializeComposed { path: Vec<String> },
    MaterializeSubsumed { source: String },
    Query(QuerySpec),
    Explain(QuerySpec),
    Export { format: ExportFormat },
    Jobs { jobs: Option<usize> },
    Budget { budget: Option<usize> },
}

/// Export formats for the last view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    Tsv,
    Csv,
    Json,
    Markdown,
}

/// Errors from command parsing.
#[derive(Debug, PartialEq, Eq)]
pub struct CliParseError(pub String);

impl std::fmt::Display for CliParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for CliParseError {}

fn err(msg: impl Into<String>) -> CliParseError {
    CliParseError(msg.into())
}

/// Parse one input line into a command. Empty lines and `#` comments parse
/// to `Help`-free no-ops represented as `None`.
pub fn parse_command(line: &str) -> Result<Option<Command>, CliParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut words = line.split_whitespace();
    let Some(verb) = words.next() else {
        return Ok(None);
    };
    let rest: Vec<&str> = words.collect();
    let cmd = match verb {
        "help" => Command::Help,
        "quit" | "exit" => Command::Quit,
        "demo" => Command::Demo {
            seed: rest
                .first()
                .unwrap_or(&"7")
                .parse()
                .map_err(|_| err("demo takes a numeric seed"))?,
        },
        "sources" => Command::Sources,
        "stats" => Command::Stats,
        "search" => match rest.as_slice() {
            [source, keyword @ ..] if !keyword.is_empty() => Command::Search {
                source: (*source).to_owned(),
                keyword: keyword.join(" "),
            },
            _ => return Err(err("usage: search <source> <keyword>")),
        },
        "prefix" => match rest.as_slice() {
            [source, prefix] => Command::Prefix {
                source: (*source).to_owned(),
                prefix: (*prefix).to_owned(),
            },
            _ => return Err(err("usage: prefix <source> <accession-prefix>")),
        },
        "info" => match rest.as_slice() {
            [source, accession] => Command::Info {
                source: (*source).to_owned(),
                accession: (*accession).to_owned(),
            },
            _ => return Err(err("usage: info <source> <accession>")),
        },
        "path" => match rest.as_slice() {
            [from, to] => Command::Path {
                from: (*from).to_owned(),
                to: (*to).to_owned(),
            },
            _ => return Err(err("usage: path <from> <to>")),
        },
        "paths" => match rest.as_slice() {
            [from, to, k] => Command::Paths {
                from: (*from).to_owned(),
                to: (*to).to_owned(),
                k: k.parse().map_err(|_| err("paths takes a numeric k"))?,
            },
            _ => return Err(err("usage: paths <from> <to> <k>")),
        },
        "map" => match rest.as_slice() {
            [from, to] => Command::Map {
                from: (*from).to_owned(),
                to: (*to).to_owned(),
            },
            _ => return Err(err("usage: map <from> <to>")),
        },
        "compose" => {
            if rest.len() < 2 {
                return Err(err("usage: compose <s1> <s2> [<s3> ...]"));
            }
            Command::Compose {
                path: rest.iter().map(|s| (*s).to_owned()).collect(),
            }
        }
        "materialize" => match rest.as_slice() {
            ["composed", path @ ..] if path.len() >= 2 => Command::MaterializeComposed {
                path: path.iter().map(|s| (*s).to_owned()).collect(),
            },
            ["subsumed", source] => Command::MaterializeSubsumed {
                source: (*source).to_owned(),
            },
            _ => {
                return Err(err(
                    "usage: materialize composed <s1> <s2> [...] | materialize subsumed <source>",
                ))
            }
        },
        "query" => Command::Query(parse_query(&rest)?),
        "explain" => match rest.as_slice() {
            ["query", q @ ..] if !q.is_empty() => Command::Explain(parse_query(q)?),
            _ => return Err(err("usage: explain query <source>[:accs] <and|or> <spec> ...")),
        },
        "jobs" => match rest.as_slice() {
            [] => Command::Jobs { jobs: None },
            [n] => Command::Jobs {
                jobs: Some(n.parse().map_err(|_| err("jobs takes a numeric count"))?),
            },
            _ => return Err(err("usage: jobs [<n>]")),
        },
        "budget" => match rest.as_slice() {
            [] => Command::Budget { budget: None },
            [n] => Command::Budget {
                budget: Some(n.parse().map_err(|_| err("budget takes a numeric count"))?),
            },
            _ => return Err(err("usage: budget [<n>]")),
        },
        "export" => match rest.as_slice() {
            ["tsv"] => Command::Export {
                format: ExportFormat::Tsv,
            },
            ["csv"] => Command::Export {
                format: ExportFormat::Csv,
            },
            ["json"] => Command::Export {
                format: ExportFormat::Json,
            },
            ["md"] | ["markdown"] => Command::Export {
                format: ExportFormat::Markdown,
            },
            _ => return Err(err("usage: export <tsv|csv|json|md>")),
        },
        other => return Err(err(format!("unknown command {other:?}; try help"))),
    };
    Ok(Some(cmd))
}

/// `query <source>[:a1,a2] <and|or> <spec>...`, spec = `[!]Target[=a1,a2]`.
/// Public because the service layer speaks the same query words over the
/// wire as the REPL does on a line.
pub fn parse_query(rest: &[&str]) -> Result<QuerySpec, CliParseError> {
    let mut it = rest.iter();
    let head = it.next().ok_or_else(|| err("query needs a source"))?;
    let (source, accessions) = match head.split_once(':') {
        Some((s, accs)) => (
            s.to_owned(),
            accs.split(',').filter(|a| !a.is_empty()).map(str::to_owned).collect(),
        ),
        None => ((*head).to_owned(), Vec::new()),
    };
    let combine = match it.next() {
        Some(&"and") => true,
        Some(&"or") => false,
        _ => return Err(err("query needs 'and' or 'or' after the source")),
    };
    let mut spec = QuerySpec::source(source);
    spec.accessions = accessions;
    spec = if combine { spec.and() } else { spec.or() };
    let mut any = false;
    for raw in it {
        any = true;
        let (negated, body) = match raw.strip_prefix('!') {
            Some(b) => (true, b),
            None => (false, *raw),
        };
        let (body, min_evidence) = match body.split_once('@') {
            Some((b, threshold)) => (
                b,
                Some(
                    threshold
                        .parse::<f64>()
                        .map_err(|_| err("bad evidence threshold"))?,
                ),
            ),
            None => (body, None),
        };
        let (name, accs) = match body.split_once('=') {
            Some((n, accs)) => (
                n,
                accs.split(',').filter(|a| !a.is_empty()).map(str::to_owned).collect(),
            ),
            None => (body, Vec::new()),
        };
        if name.is_empty() {
            return Err(err("empty target name in query"));
        }
        let mut target = TargetQuery::new(name);
        target.accessions = accs;
        target.negated = negated;
        target.min_evidence = min_evidence;
        spec = spec.target_spec(target);
    }
    if !any {
        return Err(err("query needs at least one target spec"));
    }
    Ok(spec)
}

/// The REPL session: a system handle plus the last generated view.
pub struct CliSession {
    gm: GenMapper,
    last_view: Option<ResolvedView>,
}

/// What the caller should do after executing a command.
#[derive(Debug, PartialEq, Eq)]
pub enum CliOutcome {
    Continue,
    Quit,
}

impl CliSession {
    /// A session over a fresh in-memory system.
    pub fn new() -> GamResult<Self> {
        Ok(CliSession {
            gm: GenMapper::in_memory()?,
            last_view: None,
        })
    }

    /// A session over an existing system (tests, pre-loaded data).
    pub fn with_system(gm: GenMapper) -> Self {
        CliSession { gm, last_view: None }
    }

    /// Access the underlying system.
    pub fn system(&mut self) -> &mut GenMapper {
        &mut self.gm
    }

    /// Execute one line; returns the printable output and whether to quit.
    pub fn execute_line(&mut self, line: &str) -> (String, CliOutcome) {
        match parse_command(line) {
            Ok(None) => (String::new(), CliOutcome::Continue),
            Ok(Some(cmd)) => self.execute(cmd),
            Err(e) => (format!("{e}\n"), CliOutcome::Continue),
        }
    }

    /// Execute a parsed command.
    pub fn execute(&mut self, cmd: Command) -> (String, CliOutcome) {
        let mut out = String::new();
        match self.run(cmd, &mut out) {
            Ok(CliOutcome::Quit) => (out, CliOutcome::Quit),
            Ok(CliOutcome::Continue) => (out, CliOutcome::Continue),
            Err(e) => (format!("error: {e}\n"), CliOutcome::Continue),
        }
    }

    fn run(&mut self, cmd: Command, out: &mut String) -> GamResult<CliOutcome> {
        match cmd {
            Command::Help => {
                let _ = writeln!(
                    out,
                    "commands: demo sources stats search prefix info path paths map compose materialize query explain export jobs budget quit"
                );
            }
            Command::Quit => return Ok(CliOutcome::Quit),
            Command::Demo { seed } => {
                let eco = Ecosystem::generate(EcosystemParams::demo(seed));
                let reports = self.gm.import_dumps(&eco.dumps)?;
                let _ = writeln!(
                    out,
                    "imported {} dumps; {}",
                    reports.len(),
                    self.gm.cardinalities()?
                );
                write_quarantine_summary(out, &reports);
            }
            Command::Sources => {
                let counts: std::collections::BTreeMap<_, _> = self
                    .gm
                    .store()
                    .object_counts_per_source()?
                    .into_iter()
                    .collect();
                for s in self.gm.sources()? {
                    let _ = writeln!(
                        out,
                        "{:<24} {:<8} {:<8} {:>8} objects, release={}",
                        s.name,
                        s.content.to_string(),
                        s.structure.to_string(),
                        counts.get(&s.id).copied().unwrap_or(0),
                        s.release.as_deref().unwrap_or("-")
                    );
                }
            }
            Command::Stats => {
                let _ = writeln!(out, "{}", self.gm.cardinalities()?);
                for (rel_type, mappings, associations) in
                    self.gm.store().mapping_type_counts()?
                {
                    let _ = writeln!(
                        out,
                        "  {rel_type:<12} {mappings:>5} mappings, {associations:>8} associations"
                    );
                }
                // Paged stores additionally report buffer-pool health so an
                // operator can see residency/hit-rate at a glance.
                if let Some(pool) = self.gm.store().database().stats()?.pool {
                    let _ = writeln!(out, "  {pool}");
                }
            }
            Command::Search { source, keyword } => {
                let id = self.gm.source_id(&source)?;
                for obj in self.gm.store().search_objects(id, &keyword, 20)? {
                    let _ = writeln!(
                        out,
                        "{}\t{}",
                        obj.accession,
                        obj.text.as_deref().unwrap_or("")
                    );
                }
            }
            Command::Prefix { source, prefix } => {
                let id = self.gm.source_id(&source)?;
                for obj in self
                    .gm
                    .store()
                    .objects_with_accession_prefix(id, &prefix, 20)?
                {
                    let _ = writeln!(
                        out,
                        "{}\t{}",
                        obj.accession,
                        obj.text.as_deref().unwrap_or("")
                    );
                }
            }
            Command::Info { source, accession } => {
                let info = self.gm.object_info(&source, &accession)?;
                let _ = writeln!(
                    out,
                    "{} ({}) name={:?} number={:?}",
                    info.accession, info.source, info.text, info.number
                );
                for (partner_source, partner, evidence) in &info.associations {
                    match evidence {
                        Some(e) => {
                            let _ = writeln!(out, "  -> {partner_source}: {partner} (~{e:.2})");
                        }
                        None => {
                            let _ = writeln!(out, "  -> {partner_source}: {partner}");
                        }
                    }
                }
            }
            Command::Path { from, to } => {
                let path = self.gm.find_path(&from, &to)?;
                let _ = writeln!(out, "{}", path.join(" -> "));
            }
            Command::Paths { from, to, k } => {
                for path in self.gm.find_paths(&from, &to, k)? {
                    let _ = writeln!(out, "{}", path.join(" -> "));
                }
            }
            Command::Map { from, to } => {
                let m = self.gm.map(&from, &to)?;
                let _ = writeln!(
                    out,
                    "{} associations, {} domain objects, {} range objects ({})",
                    m.len(),
                    m.domain().len(),
                    m.range().len(),
                    m.rel_type
                );
            }
            Command::Compose { path } => {
                let refs: Vec<&str> = path.iter().map(String::as_str).collect();
                let m = self.gm.compose(&refs)?;
                let _ = writeln!(
                    out,
                    "composed {}: {} associations",
                    path.join(" -> "),
                    m.len()
                );
            }
            Command::MaterializeComposed { path } => {
                let refs: Vec<&str> = path.iter().map(String::as_str).collect();
                let (rel, n) = self.gm.materialize_composed(&refs)?;
                let _ = writeln!(out, "materialized {rel} with {n} associations");
            }
            Command::MaterializeSubsumed { source } => {
                let (rel, n) = self.gm.materialize_subsumed(&source)?;
                let _ = writeln!(out, "materialized {rel} with {n} associations");
            }
            Command::Query(spec) => {
                let view = self.gm.query(&spec)?;
                let _ = write!(out, "{}", view.to_tsv());
                let _ = writeln!(out, "({} rows)", view.len());
                self.last_view = Some(view);
            }
            Command::Explain(spec) => {
                let _ = write!(out, "{}", self.gm.explain(&spec)?);
            }
            Command::Jobs { jobs } => {
                if let Some(n) = jobs {
                    self.gm.set_jobs(n);
                }
                let cfg = self.gm.exec_config();
                let _ = writeln!(
                    out,
                    "jobs = {} (parallel threshold {} associations)",
                    cfg.jobs, cfg.parallel_threshold
                );
            }
            Command::Budget { budget } => {
                if let Some(n) = budget {
                    self.gm.set_error_budget(n);
                }
                let b = self.gm.error_budget();
                if b == 0 {
                    let _ = writeln!(out, "budget = 0 (strict: any malformed line fails a dump)");
                } else {
                    let _ = writeln!(out, "budget = {b} quarantined lines per dump");
                }
            }
            Command::Export { format } => match &self.last_view {
                None => {
                    let _ = writeln!(out, "no view yet; run a query first");
                }
                Some(view) => {
                    let text = match format {
                        ExportFormat::Tsv => view.to_tsv(),
                        ExportFormat::Csv => view.to_csv(),
                        ExportFormat::Json => view.to_json()?,
                        ExportFormat::Markdown => view.to_markdown(),
                    };
                    let _ = write!(out, "{text}");
                    if !text.ends_with('\n') {
                        let _ = writeln!(out);
                    }
                }
            },
        }
        Ok(CliOutcome::Continue)
    }
}

/// Append a per-source summary of quarantined dump lines, if any.
fn write_quarantine_summary(out: &mut String, reports: &[import::ImportReport]) {
    for report in reports {
        if report.quarantined.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "{}: quarantined {} malformed line(s):",
            report.source,
            report.quarantined.len()
        );
        for q in &report.quarantined {
            let _ = writeln!(out, "  line {}: {} ({})", q.line, q.snippet, q.reason);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use operators::Combine;

    #[test]
    fn parse_basic_commands() {
        assert_eq!(parse_command("help").unwrap(), Some(Command::Help));
        assert_eq!(parse_command("quit").unwrap(), Some(Command::Quit));
        assert_eq!(parse_command("  exit  ").unwrap(), Some(Command::Quit));
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("# comment").unwrap(), None);
        assert_eq!(
            parse_command("demo 42").unwrap(),
            Some(Command::Demo { seed: 42 })
        );
        assert_eq!(
            parse_command("path NetAffx GO").unwrap(),
            Some(Command::Path {
                from: "NetAffx".into(),
                to: "GO".into()
            })
        );
        assert!(parse_command("bogus").is_err());
        assert!(parse_command("demo notanumber").is_err());
        assert!(parse_command("path onlyone").is_err());
        assert!(parse_command("export xml").is_err());
        assert_eq!(parse_command("jobs").unwrap(), Some(Command::Jobs { jobs: None }));
        assert_eq!(
            parse_command("jobs 4").unwrap(),
            Some(Command::Jobs { jobs: Some(4) })
        );
        assert!(parse_command("jobs many").is_err());
        assert!(parse_command("jobs 1 2").is_err());
        assert_eq!(
            parse_command("budget").unwrap(),
            Some(Command::Budget { budget: None })
        );
        assert_eq!(
            parse_command("budget 5").unwrap(),
            Some(Command::Budget { budget: Some(5) })
        );
        assert!(parse_command("budget lots").is_err());
        assert!(parse_command("budget 1 2").is_err());
        // explain wraps the regular query grammar
        let cmd = parse_command("explain query LocusLink:353 or GO").unwrap().unwrap();
        let Command::Explain(spec) = cmd else {
            panic!("not an explain")
        };
        assert_eq!(spec.source, "LocusLink");
        assert_eq!(spec.targets.len(), 1);
        assert!(parse_command("explain").is_err());
        assert!(parse_command("explain query").is_err());
        assert!(parse_command("explain path A B").is_err());
    }

    #[test]
    fn explain_renders_a_plan_tree() {
        let mut session = CliSession::new().unwrap();
        let (_, _) = session.execute_line("demo 7");
        let (out, _) = session.execute_line("explain query LocusLink:353 or Hugo GO");
        assert!(out.contains("generate-view OR"), "plan root: {out}");
        assert!(out.contains("target"), "target nodes: {out}");
        assert!(out.contains("actual="), "actual cardinalities: {out}");
        // the plan must agree with the query itself on the row count
        let (rows, _) = session.execute_line("query LocusLink:353 or Hugo GO");
        let n: usize = rows
            .lines()
            .find_map(|l| l.strip_prefix('(')?.strip_suffix(" rows)")?.parse().ok())
            .unwrap();
        let plan_rows: usize = out
            .lines()
            .next()
            .and_then(|l| l.rsplit("actual=").next())
            .and_then(|v| v.trim().parse().ok())
            .unwrap();
        assert_eq!(plan_rows, n, "plan rows vs query rows: {out}\n{rows}");
    }

    #[test]
    fn jobs_command_sets_worker_cap() {
        let mut session = CliSession::new().unwrap();
        let (out, _) = session.execute_line("jobs 3");
        assert!(out.starts_with("jobs = 3"), "output: {out}");
        assert_eq!(session.system().exec_config().jobs, 3);
        let (out, _) = session.execute_line("jobs");
        assert!(out.starts_with("jobs = 3"), "unchanged: {out}");
    }

    #[test]
    fn budget_command_sets_error_budget() {
        let mut session = CliSession::new().unwrap();
        let (out, _) = session.execute_line("budget");
        assert!(out.starts_with("budget = 0 (strict"), "output: {out}");
        let (out, _) = session.execute_line("budget 4");
        assert!(out.starts_with("budget = 4"), "output: {out}");
        assert_eq!(session.system().error_budget(), 4);
    }

    #[test]
    fn parse_query_syntax() {
        let cmd = parse_command("query LocusLink:353,1234 and Location=16q24 GO !OMIM")
            .unwrap()
            .unwrap();
        let Command::Query(spec) = cmd else {
            panic!("not a query")
        };
        assert_eq!(spec.source, "LocusLink");
        assert_eq!(spec.accessions, vec!["353", "1234"]);
        assert_eq!(spec.combine, Combine::And);
        assert_eq!(spec.targets.len(), 3);
        assert_eq!(spec.targets[0].source, "Location");
        assert_eq!(spec.targets[0].accessions, vec!["16q24"]);
        assert!(!spec.targets[0].negated);
        assert_eq!(spec.targets[1].source, "GO");
        assert!(spec.targets[1].accessions.is_empty());
        assert!(spec.targets[2].negated);
        assert_eq!(spec.targets[2].source, "OMIM");

        // evidence threshold suffix
        let cmd = parse_command("query NetAffx and Unigene@0.8").unwrap().unwrap();
        let Command::Query(spec2) = cmd else { panic!("not a query") };
        assert_eq!(spec2.targets[0].min_evidence, Some(0.8));
        assert!(parse_command("query NetAffx and Unigene@high").is_err());

        // whole-source OR query
        let cmd = parse_command("query Unigene or GO").unwrap().unwrap();
        let Command::Query(spec) = cmd else {
            panic!("not a query")
        };
        assert!(spec.accessions.is_empty());
        assert_eq!(spec.combine, Combine::Or);

        // malformed
        assert!(parse_command("query LocusLink").is_err(), "missing combine");
        assert!(parse_command("query LocusLink and").is_err(), "missing targets");
        assert!(parse_command("query LocusLink maybe GO").is_err());
        assert!(parse_command("query LocusLink and !=x").is_err(), "empty target");
    }

    #[test]
    fn session_drives_the_full_workflow() {
        let mut session = CliSession::new().unwrap();
        let (out, rc) = session.execute_line("demo 7");
        assert_eq!(rc, CliOutcome::Continue);
        assert!(out.contains("sources"), "stats line printed: {out}");

        let (out, _) = session.execute_line("stats");
        assert!(out.contains("Fact"), "type breakdown shown: {out}");
        assert!(out.contains("IS_A"));

        let (out, _) = session.execute_line("sources");
        assert!(out.contains("LocusLink"));
        assert!(out.contains("GO"));

        let (out, _) = session.execute_line("search LocusLink adenine");
        assert!(out.contains("353"));

        let (out, _) = session.execute_line("prefix GO GO:0009");
        assert!(out.contains("GO:0009116"));

        let (out, _) = session.execute_line("info LocusLink 353");
        assert!(out.contains("adenine phosphoribosyltransferase"));
        assert!(out.contains("Hugo"));

        let (out, _) = session.execute_line("path NetAffx GO");
        assert!(out.starts_with("NetAffx ->"));

        let (out, _) = session.execute_line("map LocusLink GO");
        assert!(out.contains("associations"));

        let (out, _) = session.execute_line("query LocusLink:353 and Hugo GO !OMIM");
        // locus 353 has OMIM entries, so the negated AND view is empty
        assert!(out.contains("(0 rows)"), "output: {out}");

        let (out, _) = session.execute_line("query LocusLink:353 or Hugo GO");
        assert!(out.contains("APRT"));

        let (out, _) = session.execute_line("export json");
        assert!(out.contains("\"APRT\""));

        let (out, _) = session.execute_line("export md");
        assert!(out.starts_with("| LocusLink |"), "markdown export: {out}");

        let (out, _) = session.execute_line("materialize composed Unigene LocusLink GO");
        assert!(out.contains("materialized"));

        // errors are reported, not fatal
        let (out, rc) = session.execute_line("info Nowhere 1");
        assert_eq!(rc, CliOutcome::Continue);
        assert!(out.starts_with("error:"));

        let (_, rc) = session.execute_line("quit");
        assert_eq!(rc, CliOutcome::Quit);
    }

    #[test]
    fn stats_reports_pool_metrics_for_paged_stores() {
        let dir = std::env::temp_dir().join(format!("genmapper-cli-paged-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let gm = GenMapper::open_paged(&dir, relstore::PoolConfig::default()).unwrap();
        let mut session = CliSession::with_system(gm);
        let (out, _) = session.execute_line("demo 7");
        assert!(out.contains("sources"), "demo imported: {out}");
        let (out, _) = session.execute_line("stats");
        assert!(out.contains("pool:"), "pool line shown: {out}");
        assert!(out.contains("pages resident"), "output: {out}");
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);

        // the in-memory session has no pool and must not print the line
        let mut session = CliSession::new().unwrap();
        let (out, _) = session.execute_line("stats");
        assert!(!out.contains("pool:"), "output: {out}");
    }

    #[test]
    fn export_before_query_is_graceful() {
        let mut session = CliSession::new().unwrap();
        let (out, _) = session.execute_line("export tsv");
        assert!(out.contains("no view yet"));
    }
}
