//! Property test for the versioned mapping cache: no matter how cache
//! warm-ups are interleaved with store mutations (direct writes, repeated
//! imports, materializations), the cached `GenMapper::map` / `compose`
//! results must always equal a fresh, cache-free computation with the
//! low-level operators. A single stale read fails the property.

use genmapper::GenMapper;
use proptest::prelude::*;
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::sync::Arc;

/// One step of an interleaved workload.
#[derive(Debug, Clone)]
enum Op {
    /// Warm / read the cache for Map(LocusLink, GO) and check it against
    /// the uncached operator result.
    CheckMap,
    /// Same for Compose(Unigene, LocusLink, GO).
    CheckCompose,
    /// Mutate through `store_mut`: add one scored association to the
    /// LocusLink<->GO mapping (millis scales the evidence).
    AddAssociation(u32),
    /// Re-import the full ecosystem dumps (idempotent on objects, but a
    /// mutating entry point all the same).
    Reimport,
    /// Materialize the composed Unigene->GO mapping, which *changes* what
    /// Map(Unigene, GO) returns afterwards.
    MaterializeComposed,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::CheckMap),
        3 => Just(Op::CheckCompose),
        3 => (0u32..=1000).prop_map(Op::AddAssociation),
        1 => Just(Op::Reimport),
        1 => Just(Op::MaterializeComposed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_results_never_go_stale(ops in prop::collection::vec(arb_op(), 1..14)) {
        let eco = Ecosystem::generate(EcosystemParams::demo(7));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();

        let ll = gm.source_id("LocusLink").unwrap();
        let go = gm.source_id("GO").unwrap();
        let ug = gm.source_id("Unigene").unwrap();
        let (rel, forward) = gm
            .store()
            .find_source_rel(ll, go, Some(gam::model::RelType::Fact))
            .unwrap()
            .expect("demo ecosystem maps LocusLink to GO");
        let ll_objs = gm.store().object_ids_of(ll).unwrap();
        let go_objs = gm.store().object_ids_of(go).unwrap();

        let mut next_pair = 0usize;
        for op in &ops {
            match op {
                Op::CheckMap => {
                    let cached = gm.map("LocusLink", "GO").unwrap();
                    let fresh = operators::map(gm.store(), ll, go).unwrap();
                    prop_assert_eq!(cached, fresh);
                }
                Op::CheckCompose => {
                    let cached = gm.compose(&["Unigene", "LocusLink", "GO"]).unwrap();
                    let fresh =
                        operators::compose_path(gm.store(), &[ug, ll, go]).unwrap();
                    prop_assert_eq!(cached, fresh);
                }
                Op::AddAssociation(millis) => {
                    let o_ll = ll_objs[next_pair % ll_objs.len()];
                    let o_go = go_objs[next_pair % go_objs.len()];
                    next_pair += 1;
                    let (o1, o2) = if forward { (o_ll, o_go) } else { (o_go, o_ll) };
                    gm.store_mut()
                        .add_association(rel.id, o1, o2, Some(f64::from(*millis) / 1000.0))
                        .unwrap();
                    prop_assert_eq!(gm.mapping_cache_len(), 0, "mutation must drop the cache");
                }
                Op::Reimport => {
                    gm.import_dumps(&eco.dumps).unwrap();
                    prop_assert_eq!(gm.mapping_cache_len(), 0, "reimport must drop the cache");
                }
                Op::MaterializeComposed => {
                    gm.materialize_composed(&["Unigene", "LocusLink", "GO"]).unwrap();
                    prop_assert_eq!(
                        gm.mapping_cache_len(), 0,
                        "materialization must drop the cache"
                    );
                    // the new derived mapping must be visible immediately
                    let cached = gm.map("Unigene", "GO").unwrap();
                    let fresh = operators::map(gm.store(), ug, go).unwrap();
                    prop_assert_eq!(cached, fresh);
                }
            }
        }

        // after the dust settles: repeated reads hit one shared entry
        let a = gm.map_shared("LocusLink", "GO").unwrap();
        let b = gm.map_shared("LocusLink", "GO").unwrap();
        prop_assert!(Arc::ptr_eq(&a, &b));
        prop_assert_eq!(a.to_mapping(), operators::map(gm.store(), ll, go).unwrap());
    }
}
