//! Multi-threaded MVCC stress tests: concurrent readers over published
//! snapshots while a single writer mutates the store.
//!
//! Invariants pinned here:
//! 1. Readers only ever observe fully-published snapshots — every version
//!    a reader sees has a complete single-threaded reference result that
//!    was recorded *before* publication.
//! 2. Concurrent snapshot reads are bit-identical to the single-threaded
//!    live path at the same version (ResolvedView equality covers every
//!    cell string; ObjectInfo equality covers the f64 evidence values).
//! 3. Readers make progress while the writer holds its lock.

use genmapper::{GenMapper, QuerySpec, ResolvedView, SharedGenMapper};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn demo_system() -> GenMapper {
    let eco = Ecosystem::generate(EcosystemParams::demo(7));
    let mut gm = GenMapper::in_memory().unwrap();
    gm.import_dumps(&eco.dumps).unwrap();
    gm
}

fn specs() -> Vec<QuerySpec> {
    vec![
        QuerySpec::source("LocusLink")
            .accessions(["353"])
            .target("Hugo")
            .target("GO")
            .target("Location")
            .target("OMIM"),
        QuerySpec::source("LocusLink").target("GO").target("OMIM").and(),
        QuerySpec::source("NetAffx").target("GO"),
    ]
}

/// Reference results for one published version, computed single-threaded
/// on the live system before publication.
type Expected = HashMap<(u64, u64), Vec<ResolvedView>>;

fn reference_results(gm: &GenMapper) -> Vec<ResolvedView> {
    specs().iter().map(|s| gm.query(s).unwrap()).collect()
}

#[test]
fn concurrent_readers_see_only_published_versions_bit_identically() {
    let sh = Arc::new(SharedGenMapper::new(demo_system()).unwrap());
    let expected: Arc<Mutex<Expected>> = Arc::new(Mutex::new(HashMap::new()));

    // reference for the initial publication
    sh.with_writer(|gm| {
        expected
            .lock()
            .unwrap()
            .insert(gm.version_stamp(), reference_results(gm));
        Ok(())
    })
    .unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let checked = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // ---- single writer: mutate, record reference, publish ----
        {
            let sh = sh.clone();
            let expected = expected.clone();
            let done = done.clone();
            scope.spawn(move || {
                let eco = Ecosystem::generate(EcosystemParams::demo(7));
                for round in 0..4u32 {
                    sh.with_writer(|gm| {
                        match round % 4 {
                            0 => {
                                gm.materialize_subsumed("GO").map(|_| ())?;
                            }
                            1 => {
                                gm.materialize_composed(&["Unigene", "LocusLink", "GO"])
                                    .map(|_| ())?;
                            }
                            2 => {
                                gm.import_dumps(&eco.dumps).map(|_| ())?;
                            }
                            _ => {
                                gm.save_path(
                                    "affx-go",
                                    &["NetAffx", "Unigene", "LocusLink", "GO"],
                                )?;
                            }
                        }
                        // the single-threaded reference, recorded BEFORE
                        // this state is published
                        expected
                            .lock()
                            .unwrap()
                            .insert(gm.version_stamp(), reference_results(gm));
                        Ok(())
                    })
                    .unwrap();
                }
                done.store(true, Ordering::SeqCst);
            });
        }

        // ---- many readers: snapshot, query, compare to the reference ----
        for reader in 0..4 {
            let sh = sh.clone();
            let expected = expected.clone();
            let done = done.clone();
            let checked = checked.clone();
            scope.spawn(move || {
                let specs = specs();
                while !done.load(Ordering::SeqCst) {
                    let snap = sh.snapshot();
                    let version = snap.version();
                    let results: Vec<ResolvedView> =
                        specs.iter().map(|s| snap.query(s).unwrap()).collect();
                    let map = expected.lock().unwrap();
                    let reference = map.get(&version).unwrap_or_else(|| {
                        panic!(
                            "reader {reader} observed unpublished version {version:?} \
                             (published references: {:?})",
                            map.keys().collect::<Vec<_>>()
                        )
                    });
                    assert_eq!(
                        &results, reference,
                        "reader {reader}: snapshot answers diverge at {version:?}"
                    );
                    checked.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    assert!(
        checked.load(Ordering::Relaxed) > 0,
        "readers verified at least one snapshot"
    );
    // the final published snapshot matches a fresh single-threaded pass
    let final_snap = sh.snapshot();
    let map = expected.lock().unwrap();
    assert_eq!(
        map.get(&final_snap.version())
            .expect("final version has a reference"),
        &specs()
            .iter()
            .map(|s| final_snap.query(s).unwrap())
            .collect::<Vec<_>>()
    );
}

#[test]
fn readers_never_block_on_a_slow_writer() {
    let sh = Arc::new(SharedGenMapper::new(demo_system()).unwrap());
    let reads_during_write = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        {
            let sh = sh.clone();
            let reads = reads_during_write.clone();
            let done = done.clone();
            scope.spawn(move || {
                let spec = &specs()[0];
                while !done.load(Ordering::SeqCst) {
                    let snap = sh.snapshot();
                    let view = snap.query(spec).unwrap();
                    assert!(!view.is_empty());
                    if sh.import_status().writing {
                        reads.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
        // a deliberately slow writer: holds the writer lock for ~200ms
        sh.with_writer(|gm| {
            let end = std::time::Instant::now() + std::time::Duration::from_millis(200);
            gm.materialize_subsumed("GO").map(|_| ())?;
            while std::time::Instant::now() < end {
                std::thread::yield_now();
            }
            Ok(())
        })
        .unwrap();
        done.store(true, Ordering::SeqCst);
    });

    assert!(
        reads_during_write.load(Ordering::SeqCst) > 0,
        "snapshot reads completed while the writer held its lock"
    );
}

#[test]
fn snapshot_equivalence_under_repeated_capture() {
    // capture N snapshots at the same version from different cache
    // temperatures: cold, after one query, after all queries — every one
    // answers bit-identically
    let gm = demo_system();
    let reference = reference_results(&gm);
    let cold = gm.capture_snapshot().unwrap();
    let warm_results: Vec<ResolvedView> = specs().iter().map(|s| gm.query(s).unwrap()).collect();
    assert_eq!(warm_results, reference);
    let warm = gm.capture_snapshot().unwrap();
    for snap in [&cold, &warm] {
        let got: Vec<ResolvedView> = specs().iter().map(|s| snap.query(s).unwrap()).collect();
        assert_eq!(got, reference);
        assert_eq!(snap.version(), gm.version_stamp());
        assert_eq!(
            snap.object_info("LocusLink", "353").unwrap(),
            gm.object_info("LocusLink", "353").unwrap()
        );
    }
}
