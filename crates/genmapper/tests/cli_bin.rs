//! Drive the compiled `genmapper-cli` binary through a scripted stdin
//! session — the closest offline equivalent of a user at the paper's
//! interactive interface.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_genmapper-cli"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("binary exits");
    assert!(output.status.success(), "cli exited with {:?}", output.status);
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn scripted_session_through_the_binary() {
    let out = run_script(
        "demo 7\n\
         stats\n\
         search LocusLink adenine\n\
         path NetAffx GO\n\
         query LocusLink:353 or Hugo GO\n\
         export csv\n\
         quit\n",
    );
    assert!(out.contains("sources"), "stats shown");
    assert!(out.contains("Fact"), "type breakdown shown");
    assert!(out.contains("353"), "keyword search hit");
    assert!(out.contains("NetAffx ->"), "path printed");
    assert!(out.contains("APRT"), "query answered");
    assert!(out.contains("LocusLink,Hugo,GO"), "csv export");
}

#[test]
fn binary_survives_errors_and_eof() {
    // unknown commands and runtime errors must not kill the process; EOF
    // (no quit) must end it cleanly
    let out = run_script("nonsense\ninfo Nowhere 1\nsources\n");
    assert!(out.contains("parse error"));
    assert!(out.contains("error:"));
}
