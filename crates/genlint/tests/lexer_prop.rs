//! The lexer's load-bearing invariant: lexing is a byte-exact
//! *partition* of the input. Every byte belongs to exactly one token —
//! token spans are contiguous, non-overlapping, and cover `0..len` —
//! so span-based reporting (line:col) and `masked()` can never drift
//! from the raw source.
//!
//! Pinned three ways: a generator-driven sweep over adversarial
//! fragment mixes (runs everywhere, fixed seed), a proptest property
//! over arbitrary strings (runs where the proptest runner is
//! available), and a corpus sweep over every `.rs` file in this
//! workspace.

use genlint::lexer::{self, TokKind};
use genlint::source::{self, SourceFile};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Assert the partition invariant for one input and return the tokens.
fn assert_partition(src: &str) -> Vec<lexer::Tok> {
    let toks = lexer::lex(src);
    let mut cursor = 0usize;
    for (i, t) in toks.iter().enumerate() {
        assert_eq!(
            t.start, cursor,
            "gap/overlap before token {i} ({:?}) in {src:?}",
            t.kind
        );
        assert!(t.end > t.start, "empty token {i} in {src:?}");
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "token {i} splits a UTF-8 character in {src:?}"
        );
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "tokens do not cover the input {src:?}");
    let rebuilt: String = toks.iter().map(|t| &src[t.start..t.end]).collect();
    assert_eq!(rebuilt, src, "concatenated spans must reproduce the input");
    toks
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Fragments chosen to sit on the lexer's edges: raw strings with
/// varying hash counts, nested block comments, char/lifetime ticks,
/// escapes, unterminated literals, multibyte text, and plain code.
const FRAGMENTS: &[&str] = &[
    "fn f() { g(); }",
    "let s = \"a \\\" b // not a comment\";",
    "let r = r#\"inner \" quote\"#;",
    "let r2 = br##\"x\"# still \"##;",
    "let b = b\"bytes\\x00\";",
    "/* outer /* nested */ still comment */",
    "// line comment with \"quote and 'tick\n",
    "let c = '\\'';",
    "let c2 = 'x';",
    "fn l<'a>(x: &'a str) -> &'a str { x }",
    "let n = 0xFF_u32 + 1_000;",
    "let f = 2.5e-3 + 1e9;",
    "match x { 0..=9 => (), _ => () }",
    "let v = vec![1, 2]; v[0];",
    "\"unterminated",
    "r#\"unterminated raw",
    "/* unterminated comment",
    "let π = \"数据\"; // ünïcödé\n",
    "::<>()[]{};,.#!?&|^%*-+=@$~",
    "'",
    "r",
    "b'q'",
];

/// Deterministic analogue of the proptest property: random fragment
/// concatenations plus random character soup, fixed seed, so the
/// invariant is executed even where the proptest runner is a stub.
#[test]
fn deterministic_partition_sweep() {
    let mut st = 0x1234_5678_9abc_def1u64;
    let soup: Vec<char> = "ab_\"'\\/r#b*{}()0.e π\n\t".chars().collect();
    for round in 0..300u32 {
        let mut src = String::new();
        if round % 2 == 0 {
            for _ in 0..(xorshift(&mut st) % 8) {
                let i = (xorshift(&mut st) as usize) % FRAGMENTS.len();
                src.push_str(FRAGMENTS[i]);
                src.push('\n');
            }
        } else {
            for _ in 0..(xorshift(&mut st) % 64) {
                let i = (xorshift(&mut st) as usize) % soup.len();
                src.push(soup[i]);
            }
        }
        let toks = assert_partition(&src);
        let masked = lexer::masked(&src, &toks);
        assert_eq!(masked.len(), src.len(), "mask must preserve byte offsets");
        assert_eq!(
            masked.matches('\n').count(),
            src.matches('\n').count(),
            "mask must preserve line structure"
        );
    }
}

/// Classification spot-checks the sweep can't assert generically.
#[test]
fn classification_pins() {
    let toks = assert_partition("let s = \"x\"; // c\n/* b */ 'a' 'l");
    let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).filter(|k| !matches!(k, TokKind::Whitespace)).collect();
    assert_eq!(
        kinds,
        [
            TokKind::Ident,
            TokKind::Ident,
            TokKind::Punct,
            TokKind::Str,
            TokKind::Punct,
            TokKind::LineComment,
            TokKind::BlockComment,
            TokKind::Char,
            TokKind::Lifetime,
        ]
    );
}

fn workspace_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(root).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            workspace_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Seeded corpus: every `.rs` file in the workspace — sources, tests,
/// fixtures (which deliberately contain malformed-looking bait), and
/// the harness scripts — must lex as a byte-exact partition, and the
/// compatibility mask must stay offset-preserving.
#[test]
fn workspace_corpus_partitions_byte_exactly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let mut files = Vec::new();
    workspace_rs_files(&root, &mut files);
    assert!(
        files.len() > 100,
        "corpus unexpectedly small: {} files",
        files.len()
    );
    for path in files {
        let raw = match std::fs::read_to_string(&path) {
            Ok(r) => r,
            Err(_) => continue, // non-UTF-8: outside the lexer's input domain
        };
        let toks = assert_partition(&raw);
        let masked = lexer::masked(&raw, &toks);
        assert_eq!(
            masked.len(),
            raw.len(),
            "mask drifted on {}",
            path.display()
        );
        assert_eq!(source::mask(&raw).len(), raw.len());
        // parsing through the full SourceFile pipeline must agree
        let file = SourceFile::parse("crates/x/src/lib.rs", &raw);
        for tok in &file.tokens {
            assert!(
                tok.off < raw.len().max(1),
                "token offset out of range in {}",
                path.display()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any string lexes into a byte-exact partition — no gaps, no
    /// overlap, no panics, spans on UTF-8 boundaries.
    #[test]
    fn arbitrary_source_partitions(src in ".{0,200}") {
        assert_partition(&src);
    }

    /// Fragment concatenations (the adversarial mix above) also hold,
    /// and masking preserves offsets and newlines.
    #[test]
    fn fragment_mix_partitions(idx in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..8)) {
        let src: String = idx.iter().map(|&i| format!("{}\n", FRAGMENTS[i])).collect();
        let toks = assert_partition(&src);
        let masked = lexer::masked(&src, &toks);
        assert_eq!(masked.len(), src.len());
        assert_eq!(masked.matches('\n').count(), src.matches('\n').count());
    }
}
