//! Clean counterpart: coherence atomics use SeqCst, telemetry is
//! allowlisted, and the CAS failure ordering pairs Relaxed with a
//! stronger success ordering (exempt by design).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct FixtureCache {
    version: AtomicU64,
    gate: AtomicU64,
    hits: AtomicU64,
}

impl FixtureCache {
    pub fn publish(&self, v: u64) {
        self.version.store(v, Ordering::SeqCst);
    }

    pub fn try_claim(&self, cur: u64) -> bool {
        self.gate
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
    }

    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
