//! Seeded R4 violation: two declared locks nested against the
//! configured order (`inner` before `cache`) — the half of a
//! lock-inversion deadlock.

pub struct Fixture;

impl Fixture {
    pub fn rebuild(&self) {
        let cache_guard = self.cache.lock();
        let inner_guard = self.inner.lock();
        drop(inner_guard);
        drop(cache_guard);
    }
}
