//! Seeded R4 violations: two declared locks nested against the
//! configured order (`inner` before `cache`) — the half of a
//! lock-inversion deadlock — plus the two snapshot-coherence failures:
//! a guard live at a declared guard-free call, and a read-path entry
//! point that takes `&mut self`.

pub struct Fixture;

impl Fixture {
    pub fn rebuild(&self) {
        let cache_guard = self.cache.lock();
        let inner_guard = self.inner.lock();
        drop(inner_guard);
        drop(cache_guard);
    }

    pub fn answer(&self) -> u32 {
        let guard = self.cache.lock();
        run_query(&guard)
    }

    pub fn query(&mut self) -> u32 {
        1
    }
}
