//! Clean counterpart: the service socket goes through the ConnGuard
//! seam, so deadlines and size caps apply to every read. Checked at the
//! wrapper path, the `ConnGuard` definition also satisfies the
//! rotted-config probe.

use std::net::TcpStream;

pub struct ConnGuard {
    stream: TcpStream,
}

impl ConnGuard {
    pub fn new(stream: TcpStream) -> ConnGuard {
        ConnGuard { stream }
    }

    pub fn read_request(&mut self) -> Option<String> {
        let _ = &self.stream;
        None
    }
}

pub fn serve_guarded(stream: TcpStream) {
    let mut conn = ConnGuard::new(stream);
    while let Some(line) = conn.read_request() {
        let _ = line;
    }
}
