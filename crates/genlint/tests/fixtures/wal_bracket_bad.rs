//! Seeded R5 violation: a `?` inside the group-commit window. If
//! `import_body` fails, `end_group_commit` is skipped and every later
//! commit silently runs without durability.

pub struct Importer;

impl Importer {
    pub fn import(&mut self) -> Result<(), String> {
        self.store.begin_group_commit();
        self.import_body()?;
        self.store.end_group_commit();
        Ok(())
    }
}
