//! Seeded R2 violations: a dump-line parser that panics on short or
//! malformed input. Scanned as `crates/gam/src/fixture.rs`.

pub fn parse_pair(line: &str) -> (u64, u64) {
    let fields: Vec<&str> = line.split('\t').collect();
    let a = fields[0].parse().unwrap();
    let b = fields[1].parse().expect("second field");
    (a, b)
}
