//! Clean R5 counterpart: the deferred-propagation shape. The fallible
//! body's `Result` is captured, the window is closed unconditionally,
//! and only then do errors propagate.

pub struct Importer;

impl Importer {
    pub fn import(&mut self) -> Result<(), String> {
        self.store.begin_group_commit();
        let body = self.import_body();
        let synced = self.store.end_group_commit();
        body?;
        synced?;
        Ok(())
    }
}
