//! Seeded atomics-discipline violation: a publish stamp stored with
//! `Ordering::Relaxed`. The `hits` counter is allowlisted and must stay
//! silent even in this file.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct FixtureCache {
    version: AtomicU64,
    hits: AtomicU64,
}

impl FixtureCache {
    pub fn publish(&self, v: u64) {
        // BAD: readers key coherence decisions on `version`; a relaxed
        // store can be observed arbitrarily late
        self.version.store(v, Ordering::Relaxed);
    }

    pub fn record_hit(&self) {
        // allowlisted telemetry: fine
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
