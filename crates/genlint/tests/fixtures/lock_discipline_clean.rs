//! Clean R4 counterpart: the same two locks taken in the declared
//! order and released innermost-first, the snapshot cloned out of the
//! guard before the executor runs, and a `&self` read-path entry point.

pub struct Fixture;

impl Fixture {
    pub fn rebuild(&self) {
        let inner_guard = self.inner.lock();
        let cache_guard = self.cache.lock();
        drop(cache_guard);
        drop(inner_guard);
    }

    pub fn answer(&self) -> u32 {
        let snap = { self.cache.lock().clone() };
        run_query(&snap)
    }

    pub fn query(&self) -> u32 {
        1
    }
}
