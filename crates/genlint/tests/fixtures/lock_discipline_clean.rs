//! Clean R4 counterpart: the same two locks taken in the declared
//! order and released innermost-first.

pub struct Fixture;

impl Fixture {
    pub fn rebuild(&self) {
        let inner_guard = self.inner.lock();
        let cache_guard = self.cache.lock();
        drop(cache_guard);
        drop(inner_guard);
    }
}
