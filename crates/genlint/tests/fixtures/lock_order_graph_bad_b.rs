//! The other half: `write_back` acquires `pool`, and `grow` nests
//! pool -> state in the declared order. Combined with the sibling
//! file's state -> pool edge, the acquisition graph has a cycle.

impl FixturePager {
    pub fn write_back(&self, d: &[u8]) {
        let p = self.pool.lock();
        p.push(d);
    }

    pub fn grow(&self) {
        let p = self.pool.lock();
        let s = self.state.lock();
        grow_into(p, s);
    }
}
