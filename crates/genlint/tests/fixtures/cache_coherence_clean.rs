//! Clean R3 counterpart: every public mutator bumps first.

pub struct FixtureStore {
    rows: Vec<u64>,
    mutations: u64,
}

impl FixtureStore {
    fn bump_mutations(&mut self) {
        self.mutations += 1;
    }

    pub fn insert(&mut self, row: u64) {
        self.bump_mutations();
        self.rows.push(row);
    }

    /// Exempt by configuration: durability-only, no logical mutation.
    pub fn checkpoint(&mut self) {}
}
