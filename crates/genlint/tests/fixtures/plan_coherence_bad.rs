//! plan-coherence violations, checked as crates/operators/src/fixture_exec.rs:
//! a listed entry point that bypasses the planner, an undeclared pub fn
//! matching a declared entry-point prefix, and a listed entry point that
//! no longer exists (`gone_entry` in the fixture config).

/// Listed entry point, but the body never touches the planner seam — the
/// naive fold runs and nothing notices.
pub fn compose_path_idx(store: &Store, path: &[u32]) -> Result<Index, Error> {
    fold_chain_naive(store, path)
}

/// New pub fn matching the declared `compose_path_idx` prefix without
/// being listed: an undeclared execution entry point.
pub fn compose_path_idx_streaming(store: &Store, path: &[u32]) -> Result<Index, Error> {
    fold_chain_naive(store, path)
}

fn fold_chain_naive(store: &Store, path: &[u32]) -> Result<Index, Error> {
    let mut acc = store.map(path[0], path[1])?;
    for w in path[1..].windows(2) {
        acc = acc.join(&store.map(w[0], w[1])?);
    }
    Ok(acc)
}
