//! Seeded socket-discipline violations: a raw buffered reader loop over
//! a service socket, outside the declared ConnGuard seam. When checked
//! at the wrapper path instead, the missing `ConnGuard` definition
//! demonstrates the rotted-config finding.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;

pub fn serve_raw(stream: TcpStream) {
    // no deadline, no size cap: one slow client pins this worker forever
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let _ = line;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_reads_are_fine_in_tests() {
        // test code may drive sockets directly
        let _ = |s: TcpStream| BufReader::new(s).lines().count();
    }
}
