//! plan-coherence clean counterpart: every declared entry point exists
//! and routes through the planner seam; private helpers and unrelated
//! pub fns are free to do anything.

/// Listed entry point routing through the planner seam.
pub fn compose_path_idx(store: &Store, path: &[u32]) -> Result<Index, Error> {
    plan_chain(store, path, None)
}

/// The second listed entry point (the fixture config names it too).
pub fn gone_entry(store: &Store, path: &[u32]) -> Result<Index, Error> {
    plan_chain(store, path, Some(0.5))
}

/// A pub fn outside the declared prefix is not an entry point.
pub fn stats_of(store: &Store) -> usize {
    store.len()
}

/// A private helper matching the prefix is not an entry point either.
fn compose_path_idx_step(acc: Index, step: Index) -> Index {
    acc.join(&step)
}
