//! Half of a cross-file deadlock: `flush` holds `state` across a call
//! into `write_back` (defined in the sibling fixture file), which
//! acquires `pool`. Each file is locally consistent — only the
//! whole-program graph sees state -> pool against the declared
//! pool-before-state order.

impl FixturePager {
    pub fn flush(&self) {
        let g = self.state.lock();
        self.write_back(&g.dirty);
    }
}
