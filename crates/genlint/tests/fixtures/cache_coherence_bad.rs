//! Seeded R3 violation: a public mutator that forgets the bump, so the
//! versioned mapping cache would serve stale data after it runs.
//! Scanned as `crates/gam/src/fixture_store.rs` with a mutator set
//! declaring `FixtureStore` / `bump_mutations` / exempt `checkpoint`.

pub struct FixtureStore {
    rows: Vec<u64>,
    mutations: u64,
}

impl FixtureStore {
    fn bump_mutations(&mut self) {
        self.mutations += 1;
    }

    pub fn insert(&mut self, row: u64) {
        self.rows.push(row);
    }

    /// Exempt by configuration: durability-only, no logical mutation.
    pub fn checkpoint(&mut self) {}
}
