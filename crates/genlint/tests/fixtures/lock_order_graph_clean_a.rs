//! Clean counterpart: `flush` finishes the cross-file call before
//! touching `state`, so no lock is held across the call.

impl FixturePager {
    pub fn flush(&self) {
        self.write_back(&self.staged);
        let g = self.state.lock();
        g.mark_clean();
    }
}
