//! False-positive regression corpus: every banned pattern in this file
//! appears only inside a string literal, a comment, or `#[cfg(test)]`
//! scope. Token-based rules must stay silent no matter which scoped
//! path the file is checked under.
//!
//! Doc-comment bait: call `std::fs::write(path, data)` directly, then
//! `fields[0].unwrap()` and store with `Ordering::Relaxed`; finish with
//! `let _ = f.sync_all();` and a bare `.ok();`.

/* block-comment bait:
   self.inner.lock(); self.cache.lock(); // inverted order
   BufReader::new(sock).lines()
*/

pub fn render_help() -> String {
    // string-literal bait, including raw strings and escapes
    let a = "std::fs::write(\"/tmp/x\", b\"data\").unwrap()";
    let b = r#"let _ = f.sync_all(); self.tx.send(x).ok();"#;
    let c = "version.store(1, Ordering::Relaxed)";
    let d = "panic!(\"fields[0] missing\")";
    format!("{a}\n{b}\n{c}\n{d}")
}

pub fn char_bait() -> (char, char) {
    // '"' and '[' as char literals must not unbalance the lexer
    ('"', '[')
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_scope_is_exempt() {
        // real banned patterns, but in test scope
        std::fs::write("/tmp/fixture", b"x").unwrap();
        let fields: Vec<&str> = "a b".split(' ').collect();
        assert_eq!(fields[0], "a");
        let _ = std::fs::remove_file("/tmp/fixture");
    }
}
