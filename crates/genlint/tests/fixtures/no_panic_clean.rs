//! Clean R2 counterpart: every malformed-input path returns a located
//! error instead of panicking.

pub fn parse_pair(line: &str) -> Result<(u64, u64), String> {
    let mut fields = line.split('\t');
    let a = fields.next().ok_or("missing first field")?;
    let b = fields.next().ok_or("missing second field")?;
    Ok((
        a.parse().map_err(|_| "first field is not a number")?,
        b.parse().map_err(|_| "second field is not a number")?,
    ))
}
