//! Clean counterpart: `grow` nests pool -> state in the declared order
//! and `write_back` acquires `pool` with nothing held above it.

impl FixturePager {
    pub fn write_back(&self, d: &[u8]) {
        let p = self.pool.lock();
        p.push(d);
    }

    pub fn grow(&self) {
        let p = self.pool.lock();
        let s = self.state.lock();
        grow_into(p, s);
    }
}
