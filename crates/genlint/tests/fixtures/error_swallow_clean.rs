//! Clean counterpart: errors are handled or deliberately converted with
//! the value consumed, and value-only `let _ =` stays legal.

pub struct FixtureStage {
    out: std::sync::mpsc::Sender<Vec<u8>>,
    dropped: std::sync::atomic::AtomicU64,
}

impl FixtureStage {
    pub fn push(&self, batch: Vec<u8>) {
        if self.out.send(batch).is_err() {
            // the pipeline hung up; surface it in telemetry
            self.dropped
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    pub fn try_peek(&self) -> Option<u64> {
        // `.ok()` whose value is consumed converts, not discards
        self.probe().ok()
    }

    fn probe(&self) -> Result<u64, String> {
        Ok(0)
    }

    pub fn release(guard: std::sync::MutexGuard<'_, u64>) {
        // `let _ =` on a plain value (no call, no Result in flight)
        let _ = guard;
    }
}
