//! Clean R1 counterpart: the same staging write routed through the
//! `Vfs` trait object, so crash sweeps can fault-inject every byte.

use relstore::vfs::Vfs;

pub fn write_staging(vfs: &dyn Vfs, dir: &std::path::Path, batch: &str) -> Result<(), String> {
    vfs.create_dir_all(dir).map_err(|e| e.to_string())?;
    let mut file = vfs.create(&dir.join("batch.eav")).map_err(|e| e.to_string())?;
    file.write_all(batch.as_bytes()).map_err(|e| e.to_string())?;
    file.sync().map_err(|e| e.to_string())?;
    vfs.sync_dir(dir).map_err(|e| e.to_string())
}
