//! Seeded R1 violation: staging writes go straight to `std::fs`,
//! escaping the crash-sweep fault-injection layer. Scanned as
//! `crates/import/src/staging.rs`.

pub fn write_staging(dir: &std::path::Path, batch: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("batch.eav"), batch)?;
    Ok(())
}
