//! Seeded error-swallow violations on the durable path: a `let _ =`
//! discard of a fallible call and a bare `.ok();` statement.

pub struct FixtureStage {
    out: std::sync::mpsc::Sender<Vec<u8>>,
}

impl FixtureStage {
    pub fn push(&self, batch: Vec<u8>) {
        // BAD: a send failure (closed pipeline) vanishes silently
        let _ = self.out.send(batch);
    }

    pub fn push_dressed_up(&self, batch: Vec<u8>) {
        // BAD: same discard wearing `.ok()`
        self.out.send(batch).ok();
    }
}
