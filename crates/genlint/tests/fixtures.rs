//! Fixture corpus: each rule is demonstrated against one file with a
//! seeded violation and one clean counterpart, parsed exactly as the
//! scan driver would parse them. The fixtures live under
//! `tests/fixtures/` (which the workspace walker skips — they *contain*
//! violations) and are checked here under synthetic workspace-relative
//! paths so path-scoped rules fire.

use genlint::config::{self, Config};
use genlint::rules::Finding;
use genlint::source::SourceFile;
use std::path::Path;

/// The rule-scope configuration the fixtures are written against — fed
/// through the real `genlint.toml` parser so the corpus also exercises
/// config loading.
fn fixture_config() -> Config {
    config::parse(
        r#"
[no-panic]
crates = ["gam", "import"]
index_idents = ["fields"]

[lock-discipline]
locks = ["inner", "cache"]
order = ["inner", "cache"]
guard_free_calls = ["run_query"]

[[lock-discipline.read-entries]]
file = "crates/genmapper/src/fixture.rs"
methods = ["query"]

[wal-bracket]
sync_exempt = ["flush"]

[[cache-coherence.mutators]]
file = "crates/gam/src/fixture_store.rs"
impl = "FixtureStore"
bump = "bump_mutations"
exempt = ["checkpoint"]

[plan-coherence]
seam_calls = ["plan_chain", "ViewContext"]

[[plan-coherence.entry-points]]
file = "crates/operators/src/fixture_exec.rs"
prefixes = ["compose_path_idx"]
functions = ["compose_path_idx", "gone_entry"]

[socket-discipline]
scope = "crates/serve/src"
wrapper = "crates/serve/src/fixture_conn.rs"
wrapper_type = "ConnGuard"
banned = ["BufReader", "lines"]

[atomics-discipline]
crates = ["relstore", "import"]

[[atomics-discipline.relaxed-ok]]
file = "crates/relstore/src/fixture_atomics.rs"
idents = ["hits"]
reason = "telemetry counter, read only by a stats endpoint"

[error-swallow]
crates = ["relstore", "import"]
"#,
    )
    .expect("fixture config parses")
}

/// Load a fixture by file name and check it as if it lived at
/// `rel_path` in the workspace.
fn check(name: &str, rel_path: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
    let file = SourceFile::parse(rel_path, &raw);
    genlint::check_file(&file, &fixture_config())
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn vfs_bypass_fixture() {
    let bad = check("vfs_bypass_bad.rs", "crates/import/src/staging.rs");
    assert_eq!(rules_of(&bad), ["vfs-bypass", "vfs-bypass"], "{bad:?}");
    let clean = check("vfs_bypass_clean.rs", "crates/import/src/staging.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn no_panic_fixture() {
    let bad = check("no_panic_bad.rs", "crates/gam/src/fixture.rs");
    assert_eq!(
        rules_of(&bad),
        ["no-panic", "no-panic", "no-panic", "no-panic"],
        "fields[0], unwrap, fields[1], expect: {bad:?}"
    );
    let clean = check("no_panic_clean.rs", "crates/gam/src/fixture.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn cache_coherence_fixture() {
    let bad = check("cache_coherence_bad.rs", "crates/gam/src/fixture_store.rs");
    assert_eq!(rules_of(&bad), ["cache-coherence"], "{bad:?}");
    assert!(bad[0].message.contains("insert"), "{bad:?}");
    let clean = check("cache_coherence_clean.rs", "crates/gam/src/fixture_store.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn lock_discipline_fixture() {
    let bad = check("lock_discipline_bad.rs", "crates/genmapper/src/fixture.rs");
    assert_eq!(
        rules_of(&bad),
        ["lock-discipline", "lock-discipline", "lock-discipline"],
        "{bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.message.contains("&mut self")),
        "read-entry regression: {bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.message.contains("guard-free")),
        "guard-free violation: {bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.message.contains("declared order")),
        "order violation: {bad:?}"
    );
    let clean = check("lock_discipline_clean.rs", "crates/genmapper/src/fixture.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn wal_bracket_fixture() {
    let bad = check("wal_bracket_bad.rs", "crates/import/src/fixture.rs");
    assert_eq!(rules_of(&bad), ["wal-bracket"], "{bad:?}");
    assert!(bad[0].message.contains("skip end_group_commit"), "{bad:?}");
    let clean = check("wal_bracket_clean.rs", "crates/import/src/fixture.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn plan_coherence_fixture() {
    let bad = check("plan_coherence_bad.rs", "crates/operators/src/fixture_exec.rs");
    assert_eq!(
        rules_of(&bad),
        ["plan-coherence", "plan-coherence", "plan-coherence"],
        "{bad:?}"
    );
    assert!(
        bad.iter()
            .any(|f| f.message.contains("never touches the planner seam")),
        "bypass violation: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|f| f.message.contains("`gone_entry`") && f.message.contains("out of date")),
        "rotted config: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|f| f.message.contains("compose_path_idx_streaming")
                && f.message.contains("not listed")),
        "undeclared entry point: {bad:?}"
    );
    let clean = check("plan_coherence_clean.rs", "crates/operators/src/fixture_exec.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn socket_discipline_fixture() {
    // in scope: the use, the construction, and the .lines() loop each flag
    let bad = check("socket_discipline_bad.rs", "crates/serve/src/fixture_server.rs");
    assert_eq!(
        rules_of(&bad),
        ["socket-discipline", "socket-discipline", "socket-discipline"],
        "{bad:?}"
    );
    assert!(bad.iter().all(|f| f.message.contains("ConnGuard")), "{bad:?}");
    // at the wrapper path the same file shows the config has rotted:
    // nothing in it defines the declared seam type
    let rotted = check("socket_discipline_bad.rs", "crates/serve/src/fixture_conn.rs");
    assert_eq!(rules_of(&rotted), ["socket-discipline"], "{rotted:?}");
    assert!(rotted[0].message.contains("out of date"), "{rotted:?}");

    let clean = check("socket_discipline_clean.rs", "crates/serve/src/fixture_server.rs");
    assert!(clean.is_empty(), "{clean:?}");
    let wrapper = check("socket_discipline_clean.rs", "crates/serve/src/fixture_conn.rs");
    assert!(wrapper.is_empty(), "{wrapper:?}");
}

#[test]
fn atomics_discipline_fixture() {
    let bad = check("atomics_discipline_bad.rs", "crates/relstore/src/fixture_atomics.rs");
    assert_eq!(rules_of(&bad), ["atomics-discipline"], "{bad:?}");
    assert!(bad[0].message.contains("`version`"), "{bad:?}");
    let clean = check(
        "atomics_discipline_clean.rs",
        "crates/relstore/src/fixture_atomics.rs",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn error_swallow_fixture() {
    let bad = check("error_swallow_bad.rs", "crates/import/src/fixture_stage.rs");
    assert_eq!(rules_of(&bad), ["error-swallow", "error-swallow"], "{bad:?}");
    assert!(bad[0].message.contains("let _ ="), "{bad:?}");
    assert!(bad[1].message.contains(".ok()"), "{bad:?}");
    let clean = check("error_swallow_clean.rs", "crates/import/src/fixture_stage.rs");
    assert!(clean.is_empty(), "{clean:?}");
}

/// Cross-file deadlock detection: each fixture file is locally clean
/// (the per-file lock rule sees nothing), but the whole-program graph
/// finds the inverted pool/state acquisition and the resulting cycle.
#[test]
fn lock_order_graph_fixture() {
    let cfg = config::parse(
        "[lock-discipline]\nlocks = [\"pool\", \"state\"]\norder = [\"pool\", \"state\"]\n",
    )
    .expect("graph fixture config parses");
    let load = |names: [&str; 2]| -> Vec<SourceFile> {
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let path = Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("tests/fixtures")
                    .join(name);
                let raw = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
                SourceFile::parse(&format!("crates/relstore/src/fixture_graph_{i}.rs"), &raw)
            })
            .collect()
    };
    let files = load(["lock_order_graph_bad_a.rs", "lock_order_graph_bad_b.rs"]);
    // per-file view: each file on its own is clean
    for f in &files {
        let per_file = genlint::check_file(f, &cfg);
        assert!(per_file.is_empty(), "{}: {per_file:?}", f.rel_path);
    }
    let bad = genlint::graph::check_workspace(&files, &cfg);
    assert!(
        bad.iter()
            .any(|f| f.rule == "lock-order-graph" && f.message.contains("inverted")),
        "cross-file inversion: {bad:?}"
    );
    assert!(
        bad.iter()
            .any(|f| f.rule == "lock-order-graph" && f.message.contains("cycle pool -> state -> pool")),
        "acquisition cycle: {bad:?}"
    );

    let files = load(["lock_order_graph_clean_a.rs", "lock_order_graph_clean_b.rs"]);
    let clean = genlint::graph::check_workspace(&files, &cfg);
    assert!(clean.is_empty(), "{clean:?}");
}

/// S1 regression corpus: banned patterns that live only inside string
/// literals, comments, and `#[cfg(test)]` scope must not fire under any
/// scoped path.
#[test]
fn masked_patterns_do_not_fire() {
    for rel in [
        "crates/gam/src/fixture_masked.rs",      // no-panic scope
        "crates/import/src/fixture_masked.rs",   // vfs/wal/error-swallow scope
        "crates/relstore/src/fixture_masked.rs", // atomics scope
        "crates/serve/src/fixture_masked.rs",    // socket scope
    ] {
        let findings = check("masking_fp_clean.rs", rel);
        assert!(findings.is_empty(), "{rel}: {findings:?}");
    }
}

/// The workspace itself must scan clean against the shipped
/// `genlint.toml` — the same invocation `scripts/tier1.sh` gates on.
#[test]
fn workspace_self_scan_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let toml = std::fs::read_to_string(root.join("genlint.toml")).expect("genlint.toml");
    let cfg = config::parse(&toml).expect("shipped config parses");
    assert!(
        cfg.allow.len() <= 5,
        "the justified baseline must stay small, got {} entries",
        cfg.allow.len()
    );
    let result = genlint::scan(&root, &cfg).expect("scan");
    assert!(
        result.findings.is_empty(),
        "workspace violates its own invariants:\n{}",
        genlint::report::human(&result)
    );
}
