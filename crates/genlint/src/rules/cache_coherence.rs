//! R3 `cache-coherence`: every public mutator bumps the mutation counter.
//!
//! The versioned `Arc<MappingIndex>` cache (PRs 1–2) is only correct
//! because every mutating entry point advances a version the cache keys
//! on. That convention is declared in `genlint.toml` as *mutator sets*:
//! for a given file and `impl` block, every `pub fn` taking `&mut self`
//! must call the declared bump function, or be listed (with a comment in
//! the config explaining why) in `exempt`. The rule is fail-closed: a
//! newly added mutator that forgets the bump is a lint error, and an
//! exempt entry that no longer matches any function is also an error so
//! the config cannot rot.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

pub struct CacheCoherence;

impl Rule for CacheCoherence {
    fn name(&self) -> &'static str {
        "cache-coherence"
    }

    fn description(&self) -> &'static str {
        "every pub &mut self entry point of a declared mutator set must bump the mutation counter"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        for set in cfg.mutators.iter().filter(|m| m.file == file.rel_path) {
            let mut bump_defined = false;
            let mut seen: Vec<&str> = Vec::new();
            for f in &file.functions {
                if f.impl_type.as_deref() != Some(set.type_name.as_str()) {
                    continue;
                }
                if f.name == set.bump {
                    bump_defined = true;
                }
                if !f.is_pub || file.is_test(f.off) {
                    continue;
                }
                if !file.fn_takes_mut_self(f.off) {
                    continue;
                }
                seen.push(&f.name);
                if set.exempt.iter().any(|e| e == &f.name) {
                    continue;
                }
                let Some((body_start, body_end)) = f.body else {
                    continue;
                };
                if !calls(file, body_start, body_end, &set.bump) {
                    out.push(Finding::at(
                        self.name(),
                        file,
                        f.off,
                        format!(
                            "pub fn {}(&mut self, ..) on {} does not call {}(); the versioned \
                             mapping cache would serve stale data after this mutation \
                             (bump, or exempt it with a justification in genlint.toml)",
                            f.name, set.type_name, set.bump
                        ),
                    ));
                }
            }
            if !bump_defined {
                out.push(Finding::whole_file(
                    self.name(),
                    file,
                    format!(
                        "mutator set for {} declares bump fn {}() but the file defines no such \
                         method — genlint.toml is out of date",
                        set.type_name, set.bump
                    ),
                ));
            }
            for e in &set.exempt {
                if !seen.iter().any(|s| s == e) {
                    out.push(Finding::whole_file(
                        self.name(),
                        file,
                        format!(
                            "exempt entry `{e}` matches no pub &mut self fn on {} — remove it \
                             from genlint.toml",
                            set.type_name
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether `name(` is called anywhere in the byte range.
fn calls(file: &SourceFile, start: usize, end: usize, name: &str) -> bool {
    let (lo, hi) = file.tokens_in(start, end);
    (lo..hi).any(|i| {
        file.tokens[i].text == name
            && file.tokens[i].is_ident
            && file.tokens.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MutatorSet;

    fn cfg(exempt: &[&str]) -> Config {
        Config {
            mutators: vec![MutatorSet {
                file: "crates/gam/src/store.rs".into(),
                type_name: "GamStore".into(),
                bump: "bump_mutations".into(),
                exempt: exempt.iter().map(|s| s.to_string()).collect(),
            }],
            ..Config::default()
        }
    }

    fn findings(src: &str, exempt: &[&str]) -> Vec<Finding> {
        let file = SourceFile::parse("crates/gam/src/store.rs", src);
        let mut out = Vec::new();
        CacheCoherence.check(&file, &cfg(exempt), &mut out);
        out
    }

    const GOOD: &str = "impl GamStore {\n\
        fn bump_mutations(&mut self) { self.mutations += 1; }\n\
        pub fn create(&mut self, n: &str) { self.bump_mutations(); }\n\
        pub fn read_only(&self) -> u32 { 1 }\n\
        pub fn checkpoint(&mut self) { self.db.checkpoint(); }\n\
    }\n";

    #[test]
    fn clean_when_mutators_bump_or_are_exempt() {
        assert!(findings(GOOD, &["checkpoint"]).is_empty());
    }

    #[test]
    fn flags_mutator_without_bump() {
        let out = findings(GOOD, &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("checkpoint"));
    }

    #[test]
    fn flags_missing_bump_fn_and_stale_exempt() {
        let src = "impl GamStore { pub fn create(&mut self) { } }";
        let out = findings(src, &["gone"]);
        assert_eq!(out.len(), 3, "missing bump call, missing bump fn, stale exempt: {out:?}");
    }

    #[test]
    fn ignores_other_impls_and_private_fns() {
        let src = "impl GamStore { fn bump_mutations(&mut self) {} fn internal(&mut self) {} }\n\
                   impl Other { pub fn mutate(&mut self) {} }";
        assert!(findings(src, &[]).is_empty());
    }
}
