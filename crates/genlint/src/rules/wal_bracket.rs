//! R5 `wal-bracket`: group-commit windows close on every path, and
//! relstore write paths sync before returning.
//!
//! `begin_group_commit()` flips the store into deferred-sync mode; if an
//! early return (`?` or `return`) escapes the window before
//! `end_group_commit()`, every later commit silently runs without
//! durability. The safe shape — used by `Importer::import` — calls the
//! fallible body, captures its `Result`, ends the window, and only then
//! propagates errors. The rule enforces that shape syntactically: inside
//! a function that calls `begin_group_commit(`, no `?` or `return` may
//! appear between the first `begin` and the last `end`, and the `end`
//! must exist at all.
//!
//! Second check, relstore-only: a non-test function under
//! `crates/relstore/src` that calls `.write_all(` must also call
//! `.sync(` (or be listed in `[wal-bracket] sync_exempt` with a reason —
//! e.g. `flush`, whose sync is deferred to the commit path by design).
//! The vfs shim itself is excluded: its `write_all` *is* the primitive.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

const VFS_SHIM: &str = "crates/relstore/src/vfs.rs";

pub struct WalBracket;

impl Rule for WalBracket {
    fn name(&self) -> &'static str {
        "wal-bracket"
    }

    fn description(&self) -> &'static str {
        "begin/end_group_commit pair with no early exit between; relstore writes sync"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if file.is_test_file() {
            return;
        }
        for f in &file.functions {
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            if file.is_test(f.off) {
                continue;
            }
            // the definitions of the bracket itself are not call sites
            if f.name != "begin_group_commit" && f.name != "end_group_commit" {
                self.check_bracket(file, f.name.as_str(), body_start, body_end, out);
            }
            if file.rel_path.starts_with("crates/relstore/src/") && file.rel_path != VFS_SHIM {
                self.check_sync(file, cfg, f.name.as_str(), body_start, body_end, out);
            }
        }
    }
}

impl WalBracket {
    fn check_bracket(
        &self,
        file: &SourceFile,
        fn_name: &str,
        body_start: usize,
        body_end: usize,
        out: &mut Vec<Finding>,
    ) {
        let (lo, hi) = file.tokens_in(body_start, body_end);
        let first_begin = (lo..hi).find(|&i| {
            file.tokens[i].text == "begin_group_commit"
                && file.tokens.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
        });
        let Some(begin) = first_begin else {
            return;
        };
        let last_end = (lo..hi).rev().find(|&i| {
            file.tokens[i].text == "end_group_commit"
                && file.tokens.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
        });
        let Some(end) = last_end else {
            out.push(Finding::at(
                self.name(),
                file,
                file.tokens[begin].off,
                format!(
                    "fn {fn_name} calls begin_group_commit() but never end_group_commit(); \
                     the store is left in deferred-sync mode and later commits are not durable"
                ),
            ));
            return;
        };
        for i in begin + 2..end {
            let t = &file.tokens[i];
            if t.text == "?" || (t.is_ident && t.text == "return") {
                out.push(Finding::at(
                    self.name(),
                    file,
                    t.off,
                    format!(
                        "`{}` inside the group-commit window of fn {fn_name} can skip \
                         end_group_commit(); capture the Result, close the window, then \
                         propagate (see Importer::import)",
                        t.text
                    ),
                ));
            }
        }
    }

    fn check_sync(
        &self,
        file: &SourceFile,
        cfg: &Config,
        fn_name: &str,
        body_start: usize,
        body_end: usize,
        out: &mut Vec<Finding>,
    ) {
        if cfg.sync_exempt.iter().any(|e| e == fn_name) {
            return;
        }
        let (lo, hi) = file.tokens_in(body_start, body_end);
        let method_call = |name: &str| {
            (lo..hi).any(|i| {
                file.tokens[i].text == "."
                    && file.tokens.get(i + 1).map(|t| t.text == name).unwrap_or(false)
                    && file.tokens.get(i + 2).map(|t| t.text == "(").unwrap_or(false)
            })
        };
        if method_call("write_all") && !method_call("sync") && !method_call("sync_dir") {
            let off = (lo..hi)
                .find(|&i| {
                    file.tokens[i].text == "write_all"
                        && file.tokens.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
                })
                .map(|i| file.tokens[i].off)
                .unwrap_or(body_start);
            out.push(Finding::at(
                self.name(),
                file,
                off,
                format!(
                    "fn {fn_name} writes without syncing; a power cut here loses the data the \
                     caller believes is durable (sync, or add to [wal-bracket] sync_exempt with \
                     a reason)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str, sync_exempt: &[&str]) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        let cfg = Config {
            sync_exempt: sync_exempt.iter().map(|s| s.to_string()).collect(),
            ..Config::default()
        };
        let mut out = Vec::new();
        WalBracket.check(&file, &cfg, &mut out);
        out
    }

    const SAFE: &str = "fn import(&mut self) -> R<()> {\n\
        self.store.begin_group_commit();\n\
        let body = self.import_body();\n\
        let synced = self.store.end_group_commit();\n\
        body?;\n\
        synced?;\n\
        Ok(())\n\
    }\n";

    #[test]
    fn deferred_propagation_shape_is_clean() {
        assert!(findings("crates/import/src/importer.rs", SAFE, &[]).is_empty());
    }

    #[test]
    fn flags_question_mark_inside_window() {
        let src = "fn import(&mut self) -> R<()> {\n\
            self.store.begin_group_commit();\n\
            self.import_body()?;\n\
            self.store.end_group_commit()?;\n\
            Ok(())\n\
        }\n";
        let out = findings("crates/import/src/importer.rs", src, &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("skip end_group_commit"));
    }

    #[test]
    fn flags_begin_without_end() {
        let src = "fn oops(&mut self) { self.store.begin_group_commit(); self.work(); }";
        let out = findings("crates/import/src/importer.rs", src, &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("never end_group_commit"));
    }

    #[test]
    fn relstore_write_without_sync_flagged_unless_exempt() {
        let src = "fn reset(&mut self) -> R<()> { let f = self.vfs.create(p); \
                   f.write_all(b); f.sync(); Ok(()) }\n\
                   fn flush(&mut self) -> R<()> { self.file.write_all(buf); Ok(()) }\n";
        let out = findings("crates/relstore/src/wal.rs", src, &[]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("flush writes without syncing"));
        assert!(findings("crates/relstore/src/wal.rs", src, &["flush"]).is_empty());
        // outside relstore, and in the shim, write_all is not checked
        assert!(findings("crates/import/src/x.rs", "fn f() { w.write_all(b); }", &[]).is_empty());
        assert!(findings(
            "crates/relstore/src/vfs.rs",
            "fn write_all(&mut self) { self.0.write_all(b); }",
            &[]
        )
        .is_empty());
    }

    #[test]
    fn bracket_definitions_are_not_call_sites() {
        let src = "pub fn begin_group_commit(&mut self) { self.deferred = true; }\n\
                   pub fn end_group_commit(&mut self) -> R<()> { self.deferred = false; self.sync() }\n";
        assert!(findings("crates/gam/src/store.rs", src, &[]).is_empty());
    }
}
