//! R4 `lock-discipline`: nested lock acquisitions follow one declared
//! order, and no guard is held across a scoped-thread spawn.
//!
//! The parallel join paths (PRs 1–3) mix `parking_lot` and `std::sync`
//! primitives; a deadlock needs only two functions that nest the same two
//! locks in opposite orders, or one guard held while `scope.spawn`
//! fans out workers that want it. Locks are *declared* in `genlint.toml`
//! (`[lock-discipline] locks`, matched by receiver name) together with a
//! single global acquisition order; the rule flags, within one function:
//!
//! * nested acquisition of two declared locks that contradicts the order
//!   (or involves a lock missing from the order list — fail closed),
//! * nested re-acquisition of the same lock (self-deadlock with
//!   `std::sync` primitives, double-lock panic with `parking_lot`),
//! * a `let`-bound guard of a declared lock still live at a `spawn(`
//!   call (release it, or `drop(guard)` first).
//!
//! The MVCC snapshot layer (PR 7) adds two *snapshot coherence* checks,
//! both configured in the same `[lock-discipline]` section:
//!
//! * `guard_free_calls` names functions (the shared query executor, the
//!   service request handler) that must never run with a declared-lock
//!   guard live — readers answer from a cloned `Arc<Snapshot>`, so a
//!   guard spanning them would serialize readers behind the writer,
//! * `[[lock-discipline.read-entries]]` declares per-file method lists
//!   that are read-path entry points and must take `&self`; a method
//!   that regresses to `&mut self` (or disappears while still listed)
//!   is an error.
//!
//! Acquisitions are `name.lock()` / `name.read()` / `name.write()` with
//! empty argument lists, so `io::Write::write(buf)` and friends never
//! match. Guard lifetime is approximated by lexical scope: a `let`-bound
//! guard lives to the end of its enclosing block or an explicit
//! `drop(name)`, a temporary to the end of its statement.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

pub struct LockDiscipline;

/// One declared-lock acquisition, with its guard's lexical extent.
/// Shared with [`crate::graph`], which builds per-function summaries on
/// the same extraction so the per-file and whole-program views cannot
/// disagree about what counts as an acquisition.
pub(crate) struct Acquisition {
    /// Token index of the receiver identifier.
    pub(crate) tok: usize,
    /// Lock name (receiver's last path segment).
    pub(crate) name: String,
    /// Token index one past the end of the guard's lifetime.
    pub(crate) extent_end: usize,
    /// Binding name when `let`-bound.
    pub(crate) binding: Option<String>,
}

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn description(&self) -> &'static str {
        "nested declared locks follow the configured order; no guard held across spawn()"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if file.is_test_file() {
            return;
        }
        check_read_entries(self.name(), file, cfg, out);
        if cfg.lock_names.is_empty() {
            return;
        }
        for f in &file.functions {
            let Some((body_start, body_end)) = f.body else {
                continue;
            };
            if file.is_test(f.off) {
                continue;
            }
            let (lo, hi) = file.tokens_in(body_start, body_end);
            let depths = token_depths(file, lo, hi);
            let acquisitions = find_acquisitions(file, cfg, lo, hi, &depths);
            for (ai, a) in acquisitions.iter().enumerate() {
                // guard held across a spawn
                if a.binding.is_some() {
                    for i in a.tok + 1..a.extent_end {
                        if file.tokens[i].text == "spawn"
                            && file.tokens[i].is_ident
                            && file.tokens.get(i + 1).map(|t| t.text == "(").unwrap_or(false)
                        {
                            out.push(Finding::at(
                                self.name(),
                                file,
                                file.tokens[i].off,
                                format!(
                                    "guard of lock `{}` (bound in fn {}) is still live at this \
                                     spawn(); workers contending for it deadlock — drop the \
                                     guard before fanning out",
                                    a.name, f.name
                                ),
                            ));
                            break;
                        }
                    }
                }
                // guard held across a declared guard-free call
                for i in a.tok + 1..a.extent_end {
                    let t = &file.tokens[i];
                    if t.is_ident
                        && cfg.guard_free_calls.iter().any(|n| n == &t.text)
                        && file.tokens.get(i + 1).map(|x| x.text == "(").unwrap_or(false)
                    {
                        out.push(Finding::at(
                            self.name(),
                            file,
                            t.off,
                            format!(
                                "guard of lock `{}` is still live at this call to {}() in \
                                 fn {}; snapshot read paths run guard-free — clone the \
                                 published Arc and drop the guard first",
                                a.name, t.text, f.name
                            ),
                        ));
                        break;
                    }
                }
                // nested acquisitions
                for b in &acquisitions[ai + 1..] {
                    if b.tok >= a.extent_end {
                        break;
                    }
                    if b.name == a.name {
                        out.push(Finding::at(
                            self.name(),
                            file,
                            file.tokens[b.tok].off,
                            format!(
                                "lock `{}` re-acquired in fn {} while its own guard is live \
                                 (self-deadlock / double-lock panic)",
                                a.name, f.name
                            ),
                        ));
                        continue;
                    }
                    let pos_a = cfg.lock_order.iter().position(|n| n == &a.name);
                    let pos_b = cfg.lock_order.iter().position(|n| n == &b.name);
                    match (pos_a, pos_b) {
                        (Some(pa), Some(pb)) if pb > pa => {}
                        (Some(_), Some(_)) => out.push(Finding::at(
                            self.name(),
                            file,
                            file.tokens[b.tok].off,
                            format!(
                                "lock `{}` acquired while holding `{}` in fn {}, against the \
                                 declared order in genlint.toml [lock-discipline]",
                                b.name, a.name, f.name
                            ),
                        )),
                        _ => out.push(Finding::at(
                            self.name(),
                            file,
                            file.tokens[b.tok].off,
                            format!(
                                "nested locks `{}` then `{}` in fn {} but at least one is \
                                 missing from the declared order — add both to \
                                 [lock-discipline] order",
                                a.name, b.name, f.name
                            ),
                        )),
                    }
                }
            }
        }
    }
}

/// Enforce declared read-path entry sets: every listed method in the
/// file must exist and take `&self`. Fail closed both ways — a listed
/// method that regressed to `&mut self` breaks the MVCC read path, and
/// a listed method that no longer exists means the config rotted.
fn check_read_entries(
    rule: &'static str,
    file: &SourceFile,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    for set in cfg.read_entries.iter().filter(|s| s.file == file.rel_path) {
        for method in &set.methods {
            let mut found = false;
            for f in file.functions.iter().filter(|f| &f.name == method) {
                if file.is_test(f.off) {
                    continue;
                }
                found = true;
                if file.fn_takes_mut_self(f.off) {
                    out.push(Finding::at(
                        rule,
                        file,
                        f.off,
                        format!(
                            "read-path entry point {method}() takes &mut self; snapshot \
                             readers must share it with &self (declared in genlint.toml \
                             [[lock-discipline.read-entries]])"
                        ),
                    ));
                }
            }
            if !found {
                out.push(Finding::whole_file(
                    rule,
                    file,
                    format!(
                        "read-entry `{method}` matches no fn in this file — genlint.toml \
                         [[lock-discipline.read-entries]] is out of date"
                    ),
                ));
            }
        }
    }
}

/// Brace depth of each token in `[lo, hi)`, relative to the body.
pub(crate) fn token_depths(file: &SourceFile, lo: usize, hi: usize) -> Vec<i32> {
    let mut depths = Vec::with_capacity(hi - lo);
    let mut d = 0i32;
    for i in lo..hi {
        match file.tokens[i].text.as_str() {
            "{" => {
                depths.push(d);
                d += 1;
            }
            "}" => {
                d -= 1;
                depths.push(d);
            }
            _ => depths.push(d),
        }
    }
    depths
}

/// Declared-lock acquisitions in `[lo, hi)`, in token order.
pub(crate) fn find_acquisitions(
    file: &SourceFile,
    cfg: &Config,
    lo: usize,
    hi: usize,
    depths: &[i32],
) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in lo..hi {
        let t = &file.tokens[i];
        if !t.is_ident || !cfg.lock_names.iter().any(|n| n == &t.text) {
            continue;
        }
        // name . lock|read|write ( )
        if i + 4 >= hi
            || file.tokens[i + 1].text != "."
            || file.tokens[i + 3].text != "("
            || file.tokens[i + 4].text != ")"
        {
            continue;
        }
        let method = file.tokens[i + 2].text.as_str();
        if !matches!(method, "lock" | "read" | "write") {
            continue;
        }
        let binding = find_let_binding(file, lo, i);
        let depth = depths[i - lo];
        let extent_end = if binding.is_some() {
            // end of the enclosing block, or an explicit drop(binding)
            let mut end = hi;
            for j in i + 1..hi {
                if file.tokens[j].text == "}" && depths[j - lo] < depth {
                    end = j;
                    break;
                }
            }
            if let Some(name) = &binding {
                for j in i + 1..end {
                    if file.tokens[j].text == "drop"
                        && file.tokens[j].is_ident
                        && file.seq_matches(j + 1, &["(", name, ")"])
                    {
                        end = j;
                        break;
                    }
                }
            }
            end
        } else {
            // temporary guard: dies at the end of its statement
            (i + 1..hi)
                .find(|&j| file.tokens[j].text == ";" && depths[j - lo] <= depth)
                .unwrap_or(hi)
        };
        out.push(Acquisition {
            tok: i,
            name: t.text.clone(),
            extent_end,
            binding,
        });
    }
    out
}

/// Binding name if the statement containing token `i` starts with `let`.
fn find_let_binding(file: &SourceFile, lo: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > lo {
        j -= 1;
        match file.tokens[j].text.as_str() {
            ";" | "{" | "}" => return None,
            "let" => {
                let mut k = j + 1;
                if file.tokens.get(k).map(|t| t.text == "mut").unwrap_or(false) {
                    k += 1;
                }
                return file.tokens.get(k).map(|t| t.text.clone());
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            lock_names: vec!["cache".into(), "state".into(), "table".into()],
            lock_order: vec!["state".into(), "cache".into(), "table".into()],
            guard_free_calls: vec!["run_query".into(), "handle_request".into()],
            ..Config::default()
        }
    }

    fn findings(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/x/src/a.rs", src);
        let mut out = Vec::new();
        LockDiscipline.check(&file, &cfg(), &mut out);
        out
    }

    #[test]
    fn clean_on_ordered_nesting_and_scoped_release() {
        // declared order state -> cache
        assert!(findings(
            "fn f() { let a = self.state.lock(); let b = self.cache.write(); use_both(a, b); }"
        )
        .is_empty());
        // read released in an inner block before the write (the
        // ln_factorial pattern)
        assert!(findings(
            "fn f() { { let r = table.read(); if ok(r) { return; } } let w = table.write(); }"
        )
        .is_empty());
    }

    #[test]
    fn flags_order_violation_and_same_lock_reentry() {
        let out = findings(
            "fn f() { let a = self.cache.write(); let b = self.state.lock(); go(a, b); }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("against the declared order"));
        let out = findings("fn f() { let a = table.read(); let b = table.write(); go(a, b); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("re-acquired"));
    }

    #[test]
    fn flags_guard_held_across_spawn_unless_dropped() {
        let src = "fn f() { let g = self.state.lock(); scope.spawn(move || work()); }";
        let out = findings(src);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("spawn"));
        let src = "fn f() { let g = self.state.lock(); drop(g); scope.spawn(move || work()); }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn io_write_calls_and_undeclared_receivers_do_not_match() {
        assert!(findings("fn f() { file.write(buf); stdin.lock(); }").is_empty());
        // temporary guards die at their statement
        assert!(findings("fn f() { self.cache.read().len(); self.cache.write().clear(); }")
            .is_empty());
    }

    #[test]
    fn flags_guard_live_at_guard_free_call() {
        let out = findings(
            "fn f() { let g = self.cache.read(); let v = run_query(g, spec); v }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("run_query"));
        assert!(out[0].message.contains("guard-free"));
        // released before the call: clean
        assert!(findings(
            "fn f() { let s = { self.cache.read().clone() }; run_query(s, spec) }"
        )
        .is_empty());
        // a temporary guard in an earlier statement is dead at the call
        assert!(findings(
            "fn f() { self.cache.write().clear(); handle_request(shared, line); }"
        )
        .is_empty());
    }

    #[test]
    fn read_entries_must_take_shared_self() {
        use crate::config::ReadEntrySet;
        let cfg2 = Config {
            read_entries: vec![ReadEntrySet {
                file: "crates/x/src/a.rs".into(),
                methods: vec!["query".into(), "find_path".into(), "gone".into()],
            }],
            ..Config::default()
        };
        let src = "impl S {\n\
                   pub fn query(&self) {}\n\
                   pub fn find_path(&mut self) {}\n\
                   }\n";
        let file = SourceFile::parse("crates/x/src/a.rs", src);
        let mut out = Vec::new();
        LockDiscipline.check(&file, &cfg2, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|f| f.message.contains("find_path()")
            && f.message.contains("&mut self")));
        assert!(out
            .iter()
            .any(|f| f.message.contains("`gone`") && f.message.contains("out of date")));
        // the same config against a different file is silent
        let other = SourceFile::parse("crates/x/src/b.rs", src);
        let mut out = Vec::new();
        LockDiscipline.check(&other, &cfg2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn undeclared_order_fails_closed() {
        let cfg2 = Config {
            lock_names: vec!["cache".into(), "state".into()],
            lock_order: vec![],
            ..Config::default()
        };
        let file = SourceFile::parse(
            "crates/x/src/a.rs",
            "fn f() { let a = self.state.lock(); let b = self.cache.write(); go(a, b); }",
        );
        let mut out = Vec::new();
        LockDiscipline.check(&file, &cfg2, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("missing from the declared order"));
    }
}
