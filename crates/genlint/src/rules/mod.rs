//! The rule registry.
//!
//! Each rule is a pure function over one prepared [`SourceFile`] plus the
//! [`Config`]; rules never do I/O. A rule reports [`Finding`]s with the
//! workspace-relative path, a 1-based line:col, and a message that says
//! what invariant broke and how to restore it. Baseline filtering happens
//! in the driver ([`crate::run`]), not here — rules always report the
//! truth. The cross-file `lock-order-graph` pass lives in
//! [`crate::graph`] because it needs every file's summary at once; it
//! still reports through the same [`Finding`] type.

pub mod atomics_discipline;
pub mod cache_coherence;
pub mod error_swallow;
pub mod lock_discipline;
pub mod no_panic;
pub mod plan_coherence;
pub mod socket_discipline;
pub mod vfs_bypass;
pub mod wal_bracket;

use crate::config::Config;
use crate::source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`vfs-bypass`, `no-panic`, ...).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column; 0 when the finding has no precise position
    /// (whole-file config-rot findings, stale baseline entries).
    pub col: usize,
    pub message: String,
}

impl Finding {
    /// A finding anchored at byte offset `off` of `file`.
    pub fn at(rule: &'static str, file: &SourceFile, off: usize, message: String) -> Finding {
        Finding {
            rule,
            path: file.rel_path.clone(),
            line: file.line_of(off),
            col: file.col_of(off),
            message,
        }
    }

    /// A finding about the file as a whole (config rot, missing seams).
    pub fn whole_file(rule: &'static str, file: &SourceFile, message: String) -> Finding {
        Finding {
            rule,
            path: file.rel_path.clone(),
            line: 1,
            col: 0,
            message,
        }
    }
}

/// A workspace invariant check.
pub trait Rule {
    /// Stable rule identifier used in reports and `[[allow]]` entries.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and reports.
    fn description(&self) -> &'static str;
    /// Check one file, appending findings.
    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>);
}

/// All per-file rules, in report order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(vfs_bypass::VfsBypass),
        Box::new(no_panic::NoPanic),
        Box::new(cache_coherence::CacheCoherence),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(wal_bracket::WalBracket),
        Box::new(plan_coherence::PlanCoherence),
        Box::new(socket_discipline::SocketDiscipline),
        Box::new(atomics_discipline::AtomicsDiscipline),
        Box::new(error_swallow::ErrorSwallow),
    ]
}

/// Name and description of the cross-file pass (reported alongside the
/// per-file rules but driven from [`crate::graph`]).
pub const LOCK_ORDER_GRAPH: (&str, &str) = (
    "lock-order-graph",
    "whole-program lock acquisition graph stays acyclic and follows the declared order",
);

/// Rule names in report order (per-file rules plus the graph pass).
pub fn rule_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = registry().iter().map(|r| r.name()).collect();
    names.push(LOCK_ORDER_GRAPH.0);
    names
}
