//! The rule registry.
//!
//! Each rule is a pure function over one prepared [`SourceFile`] plus the
//! [`Config`]; rules never do I/O. A rule reports [`Finding`]s with the
//! workspace-relative path, a 1-based line, and a message that says what
//! invariant broke and how to restore it. Baseline filtering happens in
//! the driver ([`crate::run`]), not here — rules always report the truth.

pub mod cache_coherence;
pub mod lock_discipline;
pub mod no_panic;
pub mod plan_coherence;
pub mod socket_discipline;
pub mod vfs_bypass;
pub mod wal_bracket;

use crate::config::Config;
use crate::source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`vfs-bypass`, `no-panic`, ...).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

/// A workspace invariant check.
pub trait Rule {
    /// Stable rule identifier used in reports and `[[allow]]` entries.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and reports.
    fn description(&self) -> &'static str;
    /// Check one file, appending findings.
    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>);
}

/// All rules, in report order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(vfs_bypass::VfsBypass),
        Box::new(no_panic::NoPanic),
        Box::new(cache_coherence::CacheCoherence),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(wal_bracket::WalBracket),
        Box::new(plan_coherence::PlanCoherence),
        Box::new(socket_discipline::SocketDiscipline),
    ]
}

/// Rule names in registry order (for reports and the harness).
pub fn rule_names() -> Vec<&'static str> {
    registry().iter().map(|r| r.name()).collect()
}
