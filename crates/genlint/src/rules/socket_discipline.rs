//! R7 `socket-discipline`: service sockets must flow through the
//! `ConnGuard` seam.
//!
//! The hardening PR routes every accepted connection through one wrapper
//! (`crates/serve/src/conn.rs::ConnGuard`) that sets deadlines, enables
//! `TCP_NODELAY`, and caps request-line length. A raw `BufReader` /
//! `.lines()` loop added anywhere else in the service crate reopens the
//! slow-loris and unbounded-allocation holes the wrapper closed — the
//! deadline sweep in `tests/chaos.rs` would claim coverage while that
//! code path silently escapes it. The rule bans the configured reader
//! identifiers in non-test code under the service scope, except inside
//! the declared wrapper file itself; and it fails closed in the other
//! direction: if the wrapper file no longer defines the declared type,
//! the config has rotted and is reported instead of silently matching
//! nothing.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

pub struct SocketDiscipline;

impl Rule for SocketDiscipline {
    fn name(&self) -> &'static str {
        "socket-discipline"
    }

    fn description(&self) -> &'static str {
        "service sockets must go through the ConnGuard deadline/size-cap seam, \
         not raw buffered readers"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if cfg.socket_scope.is_empty() {
            return; // rule not configured for this workspace
        }
        if file.rel_path == cfg.socket_wrapper {
            // the wrapper is the one place raw reads are the point, but
            // it must still define the declared seam type
            let defines = file
                .tokens
                .iter()
                .any(|t| t.is_ident && t.text == cfg.socket_wrapper_type);
            if !defines {
                out.push(Finding::whole_file(
                    self.name(),
                    file,
                    format!(
                        "declared socket wrapper `{}` no longer defines `{}`; \
                         the [socket-discipline] config is out of date",
                        cfg.socket_wrapper, cfg.socket_wrapper_type
                    ),
                ));
            }
            return;
        }
        if file.is_test_file() || !file.rel_path.starts_with(&cfg.socket_scope) {
            return;
        }
        let mut lines_seen = Vec::new();
        for t in &file.tokens {
            if !t.is_ident || file.is_test(t.off) {
                continue;
            }
            if !cfg.socket_banned.contains(&t.text) {
                continue;
            }
            let line = file.line_of(t.off);
            if lines_seen.contains(&line) {
                continue;
            }
            lines_seen.push(line);
            out.push(Finding::at(
                self.name(),
                file,
                t.off,
                format!(
                    "`{}` reads a service socket outside the `{}` seam; route the \
                     connection through {} so deadlines and size caps apply",
                    t.text, cfg.socket_wrapper_type, cfg.socket_wrapper
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn cfg() -> Config {
        Config {
            socket_scope: "crates/serve/src".to_owned(),
            socket_wrapper: "crates/serve/src/conn.rs".to_owned(),
            socket_wrapper_type: "ConnGuard".to_owned(),
            socket_banned: vec!["BufReader".to_owned(), "lines".to_owned()],
            ..Config::default()
        }
    }

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        SocketDiscipline.check(&file, &cfg(), &mut out);
        out
    }

    #[test]
    fn flags_raw_reader_in_scope() {
        let out = findings(
            "crates/serve/src/server.rs",
            "fn f(s: TcpStream) { for l in BufReader::new(s).lines() {} }",
        );
        assert_eq!(out.len(), 1, "one finding per line: {out:?}");
        assert!(out[0].message.contains("ConnGuard"), "{out:?}");
    }

    #[test]
    fn wrapper_file_tests_and_out_of_scope_files_pass() {
        let raw = "fn f(s: TcpStream) { let r = BufReader::new(s); }";
        // the wrapper itself may use raw readers (it defines the seam)
        assert!(findings(
            "crates/serve/src/conn.rs",
            "pub struct ConnGuard { s: TcpStream }\nfn g(s: TcpStream) { BufReader::new(s); }",
        )
        .is_empty());
        assert!(findings("crates/genmapper/src/cli.rs", raw).is_empty(), "out of scope");
        assert!(findings("crates/serve/tests/e2e.rs", raw).is_empty(), "test file");
        assert!(findings(
            "crates/serve/src/server.rs",
            "#[cfg(test)]\nmod tests { fn f(s: TcpStream) { BufReader::new(s); } }",
        )
        .is_empty());
        // masked strings cannot fake a banned token
        assert!(findings("crates/serve/src/server.rs", "fn f() { log(\"BufReader\"); }").is_empty());
    }

    #[test]
    fn rotted_wrapper_config_is_reported() {
        let out = findings("crates/serve/src/conn.rs", "pub struct Renamed;");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("out of date"), "{out:?}");
    }

    #[test]
    fn unconfigured_rule_is_silent() {
        let file = SourceFile::parse(
            "crates/serve/src/server.rs",
            "fn f(s: TcpStream) { BufReader::new(s).lines(); }",
        );
        let mut out = Vec::new();
        SocketDiscipline.check(&file, &Config::default(), &mut out);
        assert!(out.is_empty());
    }
}
