//! R8 `atomics-discipline`: `Ordering::Relaxed` is reserved for
//! telemetry, never coherence.
//!
//! The concurrent layers (PRs 7–9) make real decisions on atomics: the
//! admission CAS in `try_admit_write`, publish/version stamps, stop
//! flags. Those must use `SeqCst`/`Acquire`/`Release` — a `Relaxed` load
//! feeding a coherence decision can observe arbitrarily stale state and
//! no test will catch it deterministically. Plain counters (cache
//! hit/miss telemetry, the work-stealing cursor) are legitimately
//! `Relaxed`, so the rule is allowlist-shaped: within the configured
//! crates, every non-test `Relaxed` must be covered by a
//! `[[atomics-discipline.relaxed-ok]]` entry naming the file and the
//! atomic's identifier, with a written reason. Entries that cover no
//! remaining `Relaxed` site are reported as stale so the allowlist can
//! only shrink.
//!
//! One shape is exempt without an entry: a `Relaxed` *failure* ordering
//! in a compare-exchange whose success ordering is stronger
//! (`compare_exchange(a, b, SeqCst, Relaxed)`) — the failure load
//! publishes nothing, and this is the idiomatic pairing.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

const STRONG_ORDERINGS: [&str; 4] = ["SeqCst", "Acquire", "Release", "AcqRel"];

pub struct AtomicsDiscipline;

/// Crate name of a `crates/<name>/...` path, if any.
fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path.strip_prefix("crates/")?.split('/').next()
}

impl Rule for AtomicsDiscipline {
    fn name(&self) -> &'static str {
        "atomics-discipline"
    }

    fn description(&self) -> &'static str {
        "Ordering::Relaxed only on allowlisted telemetry atomics, never coherence decisions"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        let Some(krate) = crate_of(&file.rel_path) else {
            return;
        };
        if !cfg.atomics_crates.iter().any(|c| c == krate) {
            return;
        }
        // which allowlist idents for this file actually covered a site
        let entries: Vec<usize> = cfg
            .relaxed_ok
            .iter()
            .enumerate()
            .filter(|(_, r)| r.file == file.rel_path)
            .map(|(i, _)| i)
            .collect();
        let mut covered: Vec<(usize, &str)> = Vec::new(); // (entry idx, ident)
        if !file.is_test_file() {
            for i in 0..file.tokens.len() {
                let t = &file.tokens[i];
                if !(t.is_ident && t.text == "Relaxed") || file.is_test(t.off) {
                    continue;
                }
                if is_cas_failure_ordering(file, i) {
                    continue;
                }
                let recv = receiver_of(file, i);
                let allowed = entries.iter().copied().find(|&e| {
                    recv.as_deref()
                        .map(|r| cfg.relaxed_ok[e].idents.iter().any(|id| id == r))
                        .unwrap_or(false)
                });
                if let Some(e) = allowed {
                    let r = recv.as_deref().unwrap_or("");
                    if let Some(id) = cfg.relaxed_ok[e].idents.iter().find(|id| *id == r) {
                        covered.push((e, id.as_str()));
                    }
                    continue;
                }
                let what = recv
                    .as_deref()
                    .map(|r| format!("atomic `{r}`"))
                    .unwrap_or_else(|| "this atomic".to_owned());
                out.push(Finding::at(
                    self.name(),
                    file,
                    t.off,
                    format!(
                        "Ordering::Relaxed on {what}: a relaxed access can feed a coherence \
                         decision with stale state — use SeqCst/Acquire/Release, or add the \
                         ident to [[atomics-discipline.relaxed-ok]] with a reason if it is \
                         pure telemetry"
                    ),
                ));
            }
        }
        // stale allowlist idents: declared but covering no Relaxed site
        for &e in &entries {
            for id in &cfg.relaxed_ok[e].idents {
                if !covered.iter().any(|&(ce, cid)| ce == e && cid == id.as_str()) {
                    out.push(Finding::whole_file(
                        self.name(),
                        file,
                        format!(
                            "[[atomics-discipline.relaxed-ok]] ident `{id}` covers no \
                             Relaxed site in this file — the site was fixed or renamed; \
                             remove the ident from genlint.toml"
                        ),
                    ));
                }
            }
        }
    }
}

/// Identifier the `Relaxed` at token `i` belongs to: walk out of the
/// enclosing argument list and take the receiver of the method call
/// (`self.hits.fetch_add(1, Ordering::Relaxed)` -> `hits`; a free
/// `load(&FLAG, Relaxed)` has none).
fn receiver_of(file: &SourceFile, i: usize) -> Option<String> {
    // find the `(` opening the argument list containing token i
    let mut depth = 0i32;
    let mut j = i;
    let open = loop {
        if j == 0 {
            return None;
        }
        j -= 1;
        match file.tokens[j].text.as_str() {
            ")" => depth += 1,
            "(" if depth == 0 => break j,
            "(" => depth -= 1,
            ";" | "{" | "}" if depth == 0 => return None,
            _ => {}
        }
    };
    // `recv . method (` — the ident two before the method name
    if open >= 3
        && file.tokens[open - 1].is_ident
        && file.tokens[open - 2].text == "."
        && file.tokens[open - 3].is_ident
        && !file.tokens[open - 3].is_int_literal()
    {
        return Some(file.tokens[open - 3].text.clone());
    }
    None
}

/// Whether the `Relaxed` at token `i` is a compare-exchange failure
/// ordering: a stronger Ordering appears earlier in the same argument
/// list.
fn is_cas_failure_ordering(file: &SourceFile, i: usize) -> bool {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &file.tokens[j];
        match t.text.as_str() {
            ")" => depth += 1,
            "(" if depth == 0 => return false,
            "(" => depth -= 1,
            ";" | "{" | "}" if depth == 0 => return false,
            _ if depth == 0 && t.is_ident && STRONG_ORDERINGS.contains(&t.text.as_str()) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelaxedOk;

    fn cfg(ok: Vec<RelaxedOk>) -> Config {
        Config {
            atomics_crates: vec!["relstore".into()],
            relaxed_ok: ok,
            ..Config::default()
        }
    }

    fn findings(src: &str, ok: Vec<RelaxedOk>) -> Vec<Finding> {
        let file = SourceFile::parse("crates/relstore/src/pager.rs", src);
        let mut out = Vec::new();
        AtomicsDiscipline.check(&file, &cfg(ok), &mut out);
        out
    }

    fn ok_entry(idents: &[&str]) -> RelaxedOk {
        RelaxedOk {
            file: "crates/relstore/src/pager.rs".into(),
            idents: idents.iter().map(|s| s.to_string()).collect(),
            reason: "telemetry".into(),
        }
    }

    #[test]
    fn flags_unlisted_relaxed() {
        let out = findings(
            "fn f(&self) { self.version.store(v, Ordering::Relaxed); }",
            vec![],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`version`"));
    }

    #[test]
    fn allowlisted_counter_is_clean_and_tracked() {
        let src = "fn f(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }";
        assert!(findings(src, vec![ok_entry(&["hits"])]).is_empty());
    }

    #[test]
    fn stale_allowlist_ident_is_reported() {
        let out = findings("fn f(&self) { work(); }", vec![ok_entry(&["hits"])]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("covers no"));
    }

    #[test]
    fn cas_failure_ordering_is_exempt() {
        let src = "fn f(&self) { self.gate.compare_exchange(a, b, Ordering::SeqCst, \
                   Ordering::Relaxed); }";
        assert!(findings(src, vec![]).is_empty());
        // but a fully relaxed CAS is flagged
        let src = "fn f(&self) { self.gate.compare_exchange(a, b, Ordering::Relaxed, \
                   Ordering::Relaxed); }";
        assert_eq!(findings(src, vec![]).len(), 2);
    }

    #[test]
    fn test_scope_strings_and_other_crates_are_silent() {
        let src = "#[cfg(test)]\nmod tests { fn f(a: &A) { a.x.store(1, Ordering::Relaxed); } }";
        assert!(findings(src, vec![]).is_empty());
        assert!(findings("fn f() { log(\"Ordering::Relaxed\"); }", vec![]).is_empty());
        let file = SourceFile::parse(
            "crates/profiling/src/stats.rs",
            "fn f(&self) { self.n.store(1, Ordering::Relaxed); }",
        );
        let mut out = Vec::new();
        AtomicsDiscipline.check(&file, &cfg(vec![]), &mut out);
        assert!(out.is_empty(), "unscoped crate");
    }
}
