//! R9 `error-swallow`: durable-path crates must not discard `Result`s.
//!
//! PR 4's `stats() unwrap_or(0)` bug is the template: a fallible call
//! whose error is silently defaulted away turns an I/O failure into
//! wrong-but-plausible data. In the configured crates (the durable path:
//! relstore, import), non-test code may not:
//!
//! * bind a call's result to `_` (`let _ = f.sync_all();`) — the one
//!   shape that compiles away a `#[must_use]` `Result` without a trace,
//! * discard via a bare `.ok();` statement — same effect, dressed up.
//!
//! The third shape — `unwrap_or`-style defaulting on a call into a
//! workspace function that returns a `Result` — needs the cross-file
//! function table and is checked by the [`crate::graph`] pass under the
//! same rule name, so one `[[allow]]` entry covers a file for all three
//! shapes.
//!
//! Deliberate discards stay possible: match on the `Result`, log the
//! error, or add a justified `[[allow]]` entry (the baseline mechanism
//! already forces a written reason).

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

pub struct ErrorSwallow;

/// Crate name of a `crates/<name>/...` path, if any.
fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path.strip_prefix("crates/")?.split('/').next()
}

/// Whether `file` is scoped for the error-swallow rule.
pub(crate) fn in_scope(file: &SourceFile, cfg: &Config) -> bool {
    crate_of(&file.rel_path)
        .map(|k| cfg.error_swallow_crates.iter().any(|c| c == k))
        .unwrap_or(false)
        && !file.is_test_file()
}

impl Rule for ErrorSwallow {
    fn name(&self) -> &'static str {
        "error-swallow"
    }

    fn description(&self) -> &'static str {
        "durable-path crates must not discard Results via `let _ =`, bare `.ok()`, or defaulting"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if !in_scope(file, cfg) {
            return;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if file.is_test(toks[i].off) {
                continue;
            }
            // `let _ = <expr containing a call> ;`
            if toks[i].text == "let" && toks[i].is_ident && file.seq_matches(i + 1, &["_", "="]) {
                // statement extends to the `;` at the same paren/brace depth
                let mut depth = 0i32;
                let mut j = i + 3;
                let mut end = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "{" | "[" => depth += 1,
                        ")" | "}" | "]" => depth -= 1,
                        ";" if depth == 0 => {
                            end = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let Some(end) = end else { continue };
                let stmt_has_call = file
                    .calls
                    .iter()
                    .any(|c| c.tok > i + 2 && c.tok < end);
                if stmt_has_call {
                    out.push(Finding::at(
                        self.name(),
                        file,
                        toks[i].off,
                        "`let _ =` discards this call's Result on the durable path; a failed \
                         sync/write vanishes without a trace — handle the error, log it, or \
                         add a justified [[allow]] entry"
                            .to_owned(),
                    ));
                }
                continue;
            }
            // bare `.ok();` discard (statement position: followed by `;`)
            if toks[i].text == "."
                && file.seq_matches(i + 1, &["ok", "(", ")", ";"])
            {
                out.push(Finding::at(
                    self.name(),
                    file,
                    toks[i].off,
                    "bare `.ok();` swallows this Result on the durable path; the error is \
                     dropped on the floor — handle it or add a justified [[allow]] entry"
                        .to_owned(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            error_swallow_crates: vec!["relstore".into(), "import".into()],
            ..Config::default()
        }
    }

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        ErrorSwallow.check(&file, &cfg(), &mut out);
        out
    }

    #[test]
    fn flags_let_underscore_on_a_call() {
        let out = findings(
            "crates/relstore/src/vfs.rs",
            "fn f(&self) { let _ = self.file.sync_all(); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("let _ ="));
    }

    #[test]
    fn flags_bare_ok_discard() {
        let out = findings(
            "crates/import/src/pipeline.rs",
            "fn f(&self) { self.tx.send(batch).ok(); }",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains(".ok()"));
    }

    #[test]
    fn value_discards_and_used_ok_are_clean() {
        // `let _ = value;` with no call: not an error-swallow (no Result
        // in flight)
        assert!(findings("crates/relstore/src/a.rs", "fn f(x: u32) { let _ = x; }").is_empty());
        // `.ok()` whose value is consumed is fine — it converts, not
        // discards
        assert!(findings(
            "crates/relstore/src/a.rs",
            "fn f(&self) -> Option<u32> { self.read_len().ok() }",
        )
        .is_empty());
        assert!(findings(
            "crates/relstore/src/a.rs",
            "fn f(&self) { if self.probe().ok().is_some() { work(); } }",
        )
        .is_empty());
    }

    #[test]
    fn tests_strings_and_unscoped_crates_are_silent() {
        assert!(findings(
            "crates/relstore/src/a.rs",
            "#[cfg(test)]\nmod tests { fn f() { let _ = remove_dir_all(p); } }",
        )
        .is_empty());
        assert!(findings(
            "crates/relstore/src/a.rs",
            "fn f() { log(\"let _ = x.ok();\"); }",
        )
        .is_empty());
        assert!(findings("crates/serve/src/a.rs", "fn f() { let _ = send(); }").is_empty());
        assert!(findings(
            "crates/relstore/tests/t.rs",
            "fn f() { let _ = remove_dir_all(p); }",
        )
        .is_empty());
    }
}
