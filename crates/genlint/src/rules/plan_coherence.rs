//! R6 `plan-coherence`: public execution entry points route through the
//! cost-based planner seam.
//!
//! The planner (PR 8) is only a perf win — and its `explain` output only
//! the truth — if every execution entry point actually consults it. The
//! failure mode this rule pins is silent divergence: someone adds a new
//! `compose_path_idx_streaming` or rewires `generate_view_idx` around
//! `crate::plan`, the old naive fold runs instead, and nothing breaks —
//! queries just quietly stop being planned (and `explain` starts lying
//! about what executes).
//!
//! Entry points are *declared* in `genlint.toml`
//! (`[[plan-coherence.entry-points]]`, per file) together with the seam
//! identifiers (`[plan-coherence] seam_calls` — e.g. `plan_chain`,
//! `resolve_path_idx`, `ViewContext`). The rule fails closed in both
//! directions:
//!
//! * a listed entry point whose body never mentions a seam identifier
//!   bypasses the planner,
//! * a listed entry point that no longer exists means the config rotted,
//! * a new `pub fn` whose name starts with a declared prefix but is not
//!   listed is an undeclared execution entry point — list it (and route
//!   it through the planner) before it ships.
//!
//! Seam presence is token-level: any identifier in the function body
//! equal to a configured seam call counts, so `plan::plan_chain(...)`,
//! a re-export, and a fully qualified path all match. That is deliberately
//! coarse — the rule pins "the planner is reachable from here", not the
//! call graph.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::{FnInfo, SourceFile};

pub struct PlanCoherence;

impl Rule for PlanCoherence {
    fn name(&self) -> &'static str {
        "plan-coherence"
    }

    fn description(&self) -> &'static str {
        "declared execution entry points route through the planner seam; new entry points must be declared"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        if file.is_test_file() {
            return;
        }
        for set in cfg.plan_entries.iter().filter(|s| s.file == file.rel_path) {
            for name in &set.functions {
                let mut found = false;
                for f in file.functions.iter().filter(|f| &f.name == name) {
                    if file.is_test(f.off) {
                        continue;
                    }
                    found = true;
                    if !body_touches_seam(file, f, &cfg.plan_seam_calls) {
                        out.push(Finding::at(
                            self.name(),
                            file,
                            f.off,
                            format!(
                                "entry point {name}() never touches the planner seam \
                                 ({}); execution must route through crate::plan so \
                                 cost-based rewrites and explain stay coherent",
                                cfg.plan_seam_calls.join(", ")
                            ),
                        ));
                    }
                }
                if !found {
                    out.push(Finding::whole_file(
                        self.name(),
                        file,
                        format!(
                            "entry point `{name}` matches no fn in this file — \
                             genlint.toml [[plan-coherence.entry-points]] is out of date"
                        ),
                    ));
                }
            }
            for f in &file.functions {
                if !f.is_pub
                    || file.is_test(f.off)
                    || set.functions.iter().any(|n| n == &f.name)
                {
                    continue;
                }
                if set.prefixes.iter().any(|p| f.name.starts_with(p.as_str())) {
                    out.push(Finding::at(
                        self.name(),
                        file,
                        f.off,
                        format!(
                            "pub fn {}() looks like a new execution entry point \
                             (matches a declared prefix) but is not listed in \
                             [[plan-coherence.entry-points]] — declare it and route \
                             it through the planner seam",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether any identifier token in the fn body equals a seam call.
fn body_touches_seam(file: &SourceFile, f: &FnInfo, seams: &[String]) -> bool {
    let Some((start, end)) = f.body else {
        return false;
    };
    let (lo, hi) = file.tokens_in(start, end);
    file.tokens[lo..hi]
        .iter()
        .any(|t| t.is_ident && seams.iter().any(|n| n == &t.text))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlanEntrySet;

    fn cfg() -> Config {
        Config {
            plan_seam_calls: vec!["plan_chain".into(), "ViewContext".into()],
            plan_entries: vec![PlanEntrySet {
                file: "crates/operators/src/a.rs".into(),
                prefixes: vec!["compose_path_idx".into()],
                functions: vec!["compose_path_idx".into()],
            }],
            ..Config::default()
        }
    }

    fn findings(src: &str) -> Vec<Finding> {
        let file = SourceFile::parse("crates/operators/src/a.rs", src);
        let mut out = Vec::new();
        PlanCoherence.check(&file, &cfg(), &mut out);
        out
    }

    #[test]
    fn clean_when_entry_routes_through_the_seam() {
        assert!(findings(
            "pub fn compose_path_idx(s: &S) -> R { plan::plan_chain(s, path, None, cfg, None) }"
        )
        .is_empty());
        // fully qualified seam paths match too
        assert!(findings(
            "pub fn compose_path_idx(s: &S) -> R { crate::plan::ViewContext::new(q); go(s) }"
        )
        .is_empty());
    }

    #[test]
    fn flags_entry_that_bypasses_the_planner() {
        let out = findings("pub fn compose_path_idx(s: &S) -> R { fold_all(s) }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("never touches the planner seam"));
    }

    #[test]
    fn flags_listed_entry_that_disappeared() {
        let out = findings("pub fn other(s: &S) -> R { plan_chain(s) }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("out of date"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn flags_undeclared_entry_matching_a_prefix() {
        let src = "pub fn compose_path_idx(s: &S) -> R { plan_chain(s) }\n\
                   pub fn compose_path_idx_streaming(s: &S) -> R { plan_chain(s) }\n";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("compose_path_idx_streaming"));
        assert!(out[0].message.contains("not listed"));
    }

    #[test]
    fn private_helpers_and_other_files_are_ignored() {
        // a private fn matching the prefix is not an entry point
        let src = "pub fn compose_path_idx(s: &S) -> R { plan_chain(s) }\n\
                   fn compose_path_idx_inner(s: &S) -> R { fold(s) }\n";
        assert!(findings(src).is_empty());
        // the same config against a different file is silent
        let file = SourceFile::parse(
            "crates/operators/src/b.rs",
            "pub fn compose_path_idx_streaming(s: &S) -> R { fold(s) }",
        );
        let mut out = Vec::new();
        PlanCoherence.check(&file, &cfg(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
