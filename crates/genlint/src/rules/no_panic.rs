//! R2 `no-panic`: core crates must not panic on malformed input.
//!
//! GenMapper ingests third-party dump files; a `panic!` reachable from a
//! parse or storage path turns one bad line into a crashed import. The
//! configured crates (`[no-panic] crates` in `genlint.toml`) must keep
//! their non-test code free of `.unwrap()` / `.expect(...)` /
//! `panic!` / `unreachable!` / `todo!` / `unimplemented!`, and of raw
//! integer-literal indexing on parser-style split buffers
//! (`fields[3]` — the classic out-of-bounds on a short line). The
//! `unwrap_or*` family is fine: it cannot panic.
//!
//! This doubles clippy's `unwrap_used`/`expect_used` gates (which the
//! crate roots also enable) so the invariant holds even where clippy is
//! not run, and extends them with the macro and indexing checks clippy
//! does not cover.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub struct NoPanic;

/// Crate name of a `crates/<name>/...` path, if any.
fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path.strip_prefix("crates/")?.split('/').next()
}

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no-panic"
    }

    fn description(&self) -> &'static str {
        "non-test code of core crates must not unwrap/expect/panic! or raw-index split fields"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
        let Some(krate) = crate_of(&file.rel_path) else {
            return;
        };
        if !cfg.no_panic_crates.iter().any(|c| c == krate) {
            return;
        }
        if file.is_test_file() {
            return;
        }
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if file.is_test(t.off) {
                continue;
            }
            // `.unwrap()` / `.expect(`
            if t.text == "."
                && i + 2 < file.tokens.len()
                && file.tokens[i + 2].text == "("
                && (file.tokens[i + 1].text == "unwrap" || file.tokens[i + 1].text == "expect")
            {
                let what = &file.tokens[i + 1].text;
                out.push(Finding::at(
                    self.name(),
                    file,
                    t.off,
                    format!(
                        ".{what}() can panic; propagate a GamError/StoreError instead \
                         (or restructure so the invariant is checked by construction)"
                    ),
                ));
                continue;
            }
            // panic-family macros
            if t.is_ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && i + 1 < file.tokens.len()
                && file.tokens[i + 1].text == "!"
            {
                out.push(Finding::at(
                    self.name(),
                    file,
                    t.off,
                    format!(
                        "{}! aborts the whole import on reachable input; return an error",
                        t.text
                    ),
                ));
                continue;
            }
            // `fields[3]`-style raw indexing on parser split buffers
            if t.is_ident
                && cfg.index_idents.iter().any(|n| n == &t.text)
                && i + 2 < file.tokens.len()
                && file.tokens[i + 1].text == "["
                && file.tokens[i + 2].is_int_literal()
            {
                out.push(Finding::at(
                    self.name(),
                    file,
                    t.off,
                    format!(
                        "raw `{}[{}]` indexing panics on short input; use .get({}) with a \
                         located parse error",
                        t.text, file.tokens[i + 2].text, file.tokens[i + 2].text
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            no_panic_crates: vec!["gam".into()],
            index_idents: vec!["fields".into()],
            ..Config::default()
        }
    }

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        NoPanic.check(&file, &cfg(), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }";
        let out = findings("crates/gam/src/a.rs", src);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn flags_raw_field_indexing() {
        let out = findings("crates/gam/src/a.rs", "fn f() { let x = fields[3]; }");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains(".get(3)"));
    }

    #[test]
    fn ignores_unwrap_or_family_tests_and_other_crates() {
        assert!(findings("crates/gam/src/a.rs", "fn f() { a.unwrap_or(0); b.unwrap_or_else(d); }")
            .is_empty());
        assert!(findings(
            "crates/gam/src/a.rs",
            "#[cfg(test)]\nmod tests { fn f() { a.unwrap(); } }"
        )
        .is_empty());
        assert!(findings("crates/profiling/src/a.rs", "fn f() { a.unwrap(); }").is_empty());
        // variable-index access is fine — only literal indexes are the
        // short-line hazard
        assert!(findings("crates/gam/src/a.rs", "fn f() { let x = fields[i]; }").is_empty());
    }
}
