//! R1 `vfs-bypass`: all durable I/O must flow through `relstore::vfs::Vfs`.
//!
//! The crash-recovery sweeps (PR 4) can only fault-inject I/O that goes
//! through the `Vfs` trait. A direct `std::fs` call in production code is
//! a hole in the power-cut model: the sweep will claim full coverage
//! while that file silently escapes torn-write and lost-dir-entry
//! simulation. The rule flags every direct `std::fs` use in non-test
//! code, outside the one file whose job is to wrap `std::fs`
//! (`crates/relstore/src/vfs.rs`) and the justified non-durable
//! allowlist in `genlint.toml`.

use super::{Finding, Rule};
use crate::config::Config;
use crate::source::SourceFile;

/// The one place direct `std::fs` is the point.
const VFS_SHIM: &str = "crates/relstore/src/vfs.rs";

pub struct VfsBypass;

impl Rule for VfsBypass {
    fn name(&self) -> &'static str {
        "vfs-bypass"
    }

    fn description(&self) -> &'static str {
        "durable I/O must go through relstore::vfs::Vfs so crash sweeps can fault-inject it"
    }

    fn check(&self, file: &SourceFile, _cfg: &Config, out: &mut Vec<Finding>) {
        if file.is_test_file() || file.rel_path == VFS_SHIM {
            return;
        }
        // does the file import std::fs (making bare `fs::` a filesystem
        // call)? Detected on tokens so masked strings can't fake it.
        let mut imports_std_fs = false;
        for i in 0..file.tokens.len() {
            if file.seq_matches(i, &["use", "std", ":", ":", "fs"]) {
                imports_std_fs = true;
                break;
            }
        }
        let mut lines_seen = Vec::new();
        for i in 0..file.tokens.len() {
            let t = &file.tokens[i];
            if !t.is_ident || file.is_test(t.off) {
                continue;
            }
            let direct = file.seq_matches(i, &["std", ":", ":", "fs", ":", ":"]);
            let bare = imports_std_fs
                && file.seq_matches(i, &["fs", ":", ":"])
                // not the `fs` inside `std::fs::...` (already reported)
                && !(i >= 3
                    && file.tokens[i - 1].text == ":"
                    && file.tokens[i - 2].text == ":"
                    && file.tokens[i - 3].text == "std");
            let import = file.seq_matches(i, &["use", "std", ":", ":", "fs"]);
            if !(direct || bare || import) {
                continue;
            }
            let line = file.line_of(t.off);
            if lines_seen.contains(&line) {
                continue;
            }
            lines_seen.push(line);
            out.push(Finding::at(
                self.name(),
                file,
                t.off,
                "direct std::fs I/O bypasses the Vfs fault-injection layer; \
                 route it through relstore::vfs::Vfs (or add a justified \
                 non-durable [[allow]] entry)"
                    .to_owned(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::source::SourceFile;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        let file = SourceFile::parse(path, src);
        let mut out = Vec::new();
        VfsBypass.check(&file, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_direct_std_fs() {
        let out = findings(
            "crates/import/src/pipeline.rs",
            "fn f() { std::fs::write(p, d); }",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "vfs-bypass");
    }

    #[test]
    fn flags_bare_fs_after_import() {
        let out = findings(
            "crates/x/src/a.rs",
            "use std::fs;\nfn f() { fs::write(p, d); }",
        );
        assert_eq!(out.len(), 2, "the use and the call");
    }

    #[test]
    fn ignores_vfs_shim_tests_and_strings() {
        assert!(findings("crates/relstore/src/vfs.rs", "fn f() { std::fs::write(p, d); }")
            .is_empty());
        assert!(findings(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nmod tests { fn f() { std::fs::write(p, d); } }",
        )
        .is_empty());
        assert!(findings("crates/x/src/a.rs", "fn f() { log(\"std::fs::write\"); }").is_empty());
        assert!(findings("crates/x/tests/t.rs", "fn f() { std::fs::write(p, d); }").is_empty());
    }
}
