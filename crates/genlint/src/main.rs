//! CLI driver for genlint.
//!
//! ```text
//! genlint [--root DIR] [--config FILE] [--format human|json|sarif]
//!         [--deny] [--jobs N] [--no-cache] [--cache FILE]
//!         [--lock-graph] [--list-rules]
//! ```
//!
//! * `--root` — workspace root to scan (default: current directory).
//! * `--config` — config path (default: `<root>/genlint.toml`; scanning
//!   without one uses built-in defaults, which declare no mutator sets or
//!   locks — fine for fixtures, wrong for CI).
//! * `--format` — `human` (default), `json`, or `sarif`; `--json` is a
//!   compatibility alias for `--format json`.
//! * `--deny` — exit 1 when any finding survives the baseline (CI mode).
//! * `--jobs N` — worker threads for the per-file phase (default: auto).
//! * `--no-cache` / `--cache FILE` — the incremental cache is on by
//!   default at `<root>/target/genlint-cache.txt` (inside a skipped
//!   directory, so it never scans itself); `--no-cache` forces a full
//!   run, `--cache` moves the file.
//! * `--lock-graph` — print the observed whole-program lock acquisition
//!   graph and exit (debugging surface for the `lock-order-graph` rule).
//! * `--list-rules` — print the rule registry and exit.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage/config/I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    deny: bool,
    jobs: usize,
    no_cache: bool,
    cache: Option<PathBuf>,
    lock_graph: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        format: Format::Human,
        deny: false,
        jobs: 0,
        no_cache: false,
        cache: None,
        lock_graph: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        return Err(format!(
                            "--format needs human|json|sarif, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--json" => args.format = Format::Json,
            "--deny" => args.deny = true,
            "--jobs" => {
                args.jobs = it
                    .next()
                    .ok_or("--jobs needs a thread count")?
                    .parse()
                    .map_err(|_| "--jobs needs a number")?;
            }
            "--no-cache" => args.no_cache = true,
            "--cache" => {
                args.cache = Some(PathBuf::from(it.next().ok_or("--cache needs a file")?));
            }
            "--lock-graph" => args.lock_graph = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: genlint [--root DIR] [--config FILE] \
                            [--format human|json|sarif] [--deny] [--jobs N] [--no-cache] \
                            [--cache FILE] [--lock-graph] [--list-rules]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in genlint::rules::registry() {
            println!("{:<18} {}", rule.name(), rule.description());
        }
        let (name, desc) = genlint::rules::LOCK_ORDER_GRAPH;
        println!("{name:<18} {desc} (whole-program pass)");
        return Ok(ExitCode::SUCCESS);
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("genlint.toml"));
    let cfg = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        genlint::config::parse(&text).map_err(|e| e.to_string())?
    } else if args.config.is_some() {
        return Err(format!("config not found: {}", config_path.display()));
    } else {
        genlint::config::Config::default()
    };
    if args.lock_graph {
        let text = genlint::lock_graph(&args.root, &cfg)
            .map_err(|e| format!("lock graph of {}: {e}", args.root.display()))?;
        print!("{text}");
        return Ok(ExitCode::SUCCESS);
    }
    let cache_path = if args.no_cache {
        None
    } else {
        Some(
            args.cache
                .clone()
                .unwrap_or_else(|| args.root.join("target/genlint-cache.txt")),
        )
    };
    let opts = genlint::ScanOptions {
        jobs: args.jobs,
        cache_path,
    };
    let result = genlint::scan_with(&args.root, &cfg, &opts)
        .map_err(|e| format!("scan of {}: {e}", args.root.display()))?;
    match args.format {
        Format::Human => print!("{}", genlint::report::human(&result)),
        Format::Json => print!("{}", genlint::report::json(&result)),
        Format::Sarif => print!("{}", genlint::report::sarif(&result)),
    }
    if args.deny && !result.findings.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("genlint: {message}");
            ExitCode::from(2)
        }
    }
}
