//! CLI driver for genlint.
//!
//! ```text
//! genlint [--root DIR] [--config FILE] [--json] [--deny] [--list-rules]
//! ```
//!
//! * `--root` — workspace root to scan (default: current directory).
//! * `--config` — config path (default: `<root>/genlint.toml`; scanning
//!   without one uses built-in defaults, which declare no mutator sets or
//!   locks — fine for fixtures, wrong for CI).
//! * `--json` — machine-readable report on stdout.
//! * `--deny` — exit 1 when any finding survives the baseline (CI mode).
//! * `--list-rules` — print the rule registry and exit.
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 findings under
//! `--deny`, 2 usage/config/I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    deny: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        deny: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--json" => args.json = true,
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: genlint [--root DIR] [--config FILE] [--json] [--deny] \
                            [--list-rules]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for rule in genlint::rules::registry() {
            println!("{:<16} {}", rule.name(), rule.description());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("genlint.toml"));
    let cfg = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("{}: {e}", config_path.display()))?;
        genlint::config::parse(&text).map_err(|e| e.to_string())?
    } else if args.config.is_some() {
        return Err(format!("config not found: {}", config_path.display()));
    } else {
        genlint::config::Config::default()
    };
    let result = genlint::scan(&args.root, &cfg)
        .map_err(|e| format!("scan of {}: {e}", args.root.display()))?;
    if args.json {
        print!("{}", genlint::report::json(&result));
    } else {
        print!("{}", genlint::report::human(&result));
    }
    if args.deny && !result.findings.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("genlint: {message}");
            ExitCode::from(2)
        }
    }
}
