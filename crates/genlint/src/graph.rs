//! The cross-file call graph: per-function lock summaries, the
//! whole-program lock acquisition graph (`lock-order-graph`), and the
//! workspace half of `error-swallow`.
//!
//! Per-file lock-discipline (R4) can only see one function at a time; a
//! deadlock needs two functions. This pass builds, over every prepared
//! file at once:
//!
//! 1. a per-function summary — which declared locks the function
//!    acquires directly (reusing R4's acquisition/extent extraction, so
//!    the per-file and whole-program views agree byte-for-byte on what
//!    counts), and which calls it makes with which locks held,
//! 2. a name-resolved call graph — types are unknown at token level, so
//!    resolution is scoped instead of bare-name: `self.m()` links within
//!    the caller's impl type, `Qual::f()` links to `Qual`'s impls, free
//!    calls link to a workspace-unique free fn, and method calls on any
//!    other receiver never link (a missed edge beats a false cycle),
//! 3. the transitive lock-acquire set of each function (fixpoint over
//!    the call graph),
//! 4. the acquisition *edge set*: lock A → lock B whenever B is acquired
//!    (directly, or transitively through a call) while A's guard is
//!    live.
//!
//! Findings, all fail-closed:
//!
//! * an edge touching a lock missing from the declared `order` —
//!   undeclared nesting is a config hole, not a pass,
//! * an edge against the declared order (inversion) — the classic
//!   cross-file deadlock half; the other half may be three PRs away,
//! * a cycle among observed edges (includes A → A through a call chain:
//!   self-deadlock),
//! * a declared lock never observed in any non-test acquisition — the
//!   config names a lock that no longer exists, so the order it declares
//!   may be fiction.
//!
//! Known limits: calls through closures and function values
//! (`with_writer(|w| ...)`) are invisible to name resolution; the lock
//! uses *inside* the closure body still attribute to the enclosing
//! function, so intra-function nesting survives, but a lock acquired by
//! the closure's *caller* around the callback is not seen as held. The
//! per-file R4 checks cover that shape where it occurs. Trait-object
//! dispatch on a field (`self.vfs.write(..)`) resolves only when the
//! method name is unique in the workspace — keeping cross-file edges
//! from graph-theoretic names like `get`/`write`/`new` is what makes
//! the zero-false-positive bar reachable.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::rules::lock_discipline::{find_acquisitions, token_depths};
use crate::rules::{error_swallow, Finding, LOCK_ORDER_GRAPH};
use crate::source::SourceFile;

const RULE: &str = LOCK_ORDER_GRAPH.0;

/// One direct lock acquisition inside a function.
struct LockSite {
    name: String,
    /// Token index of the receiver identifier.
    tok: usize,
    /// Token index one past the guard's extent.
    extent_end: usize,
    off: usize,
}

/// One call site inside a function, with the locks held across it.
struct CallRef {
    callee: String,
    /// Receiver ident for method calls (`self.vfs.write` -> `vfs`).
    recv: Option<String>,
    /// Path qualifier for `Qual::name(...)` calls.
    qual: Option<String>,
    is_method: bool,
    off: usize,
    held: Vec<String>,
}

/// Per-function summary.
struct FnSummary {
    /// Index into the `files` slice.
    file: usize,
    fn_name: String,
    /// Type name of the enclosing impl block, if any.
    impl_type: Option<String>,
    /// Whether the fn is defined inside another fn's body (a local
    /// helper) — never a cross-function resolution target.
    local: bool,
    locks: Vec<LockSite>,
    calls: Vec<CallRef>,
}

/// One observed acquisition-graph edge: `to` acquired while `from` held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// Workspace-relative path of the witness site.
    pub path: String,
    /// Byte offset of the witness site in that file.
    pub off: usize,
    pub line: usize,
    pub col: usize,
    /// Function the witness sits in.
    pub in_fn: String,
    /// Callee name when the edge crosses a call (None = direct nesting).
    pub via: Option<String>,
}

/// The analyzed workspace: summaries, resolution table, observed edges.
pub struct Analysis {
    /// Observed acquisition edges, deduped by (from, to), first witness
    /// in file order kept.
    pub edges: Vec<Edge>,
    /// Locks (declared in config) observed in at least one non-test
    /// acquisition.
    pub observed_locks: BTreeSet<String>,
    summaries: Vec<FnSummary>,
}

/// Method names that are lock acquisitions, not calls, when the receiver
/// is a declared lock and the argument list is empty.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

/// Build per-function summaries for one file. Acquisitions and calls are
/// attributed to the *innermost* enclosing function so a nested helper
/// fn does not leak its locks into its parent's summary.
fn summarize_file(file_idx: usize, file: &SourceFile, cfg: &Config, out: &mut Vec<FnSummary>) {
    if file.is_test_file() {
        return;
    }
    for (fi, f) in file.functions.iter().enumerate() {
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        if file.is_test(f.off) {
            continue;
        }
        let (lo, hi) = file.tokens_in(body_start, body_end);
        let depths = token_depths(file, lo, hi);
        let acqs = find_acquisitions(file, cfg, lo, hi, &depths);
        let locks: Vec<LockSite> = acqs
            .iter()
            .filter(|a| {
                crate::items::innermost_fn(&file.functions, file.tokens[a.tok].off) == Some(fi)
            })
            .map(|a| LockSite {
                name: a.name.clone(),
                tok: a.tok,
                extent_end: a.extent_end,
                off: file.tokens[a.tok].off,
            })
            .collect();
        let calls: Vec<CallRef> = file
            .calls
            .iter()
            .filter(|c| c.tok >= lo && c.tok < hi)
            .filter(|c| crate::items::innermost_fn(&file.functions, c.off) == Some(fi))
            .filter(|c| {
                // an acquisition is not a call
                !(c.args_empty
                    && LOCK_METHODS.contains(&c.callee.as_str())
                    && c.recv
                        .as_deref()
                        .map(|r| cfg.lock_names.iter().any(|n| n == r))
                        .unwrap_or(false))
            })
            .map(|c| CallRef {
                callee: c.callee.clone(),
                recv: c.recv.clone(),
                qual: c.qual.clone(),
                is_method: c.is_method,
                off: c.off,
                held: locks
                    .iter()
                    .filter(|l| l.tok < c.tok && c.tok < l.extent_end)
                    .map(|l| l.name.clone())
                    .collect(),
            })
            .collect();
        out.push(FnSummary {
            file: file_idx,
            fn_name: f.name.clone(),
            impl_type: f.impl_type.clone(),
            local: crate::items::innermost_fn(&file.functions, f.off).is_some(),
            locks,
            calls,
        });
    }
}

/// Analyze the workspace: build summaries, run the fixpoint, collect the
/// observed edge set.
pub fn analyze(files: &[SourceFile], cfg: &Config) -> Analysis {
    let mut summaries = Vec::new();
    for (i, f) in files.iter().enumerate() {
        summarize_file(i, f, cfg, &mut summaries);
    }
    // name -> summary indexes; local helpers (fns inside fns) are not
    // addressable from other functions, so they are never targets
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, s) in summaries.iter().enumerate() {
        if !s.local {
            by_name.entry(s.fn_name.as_str()).or_default().push(i);
        }
    }
    // Resolve a call to candidate summaries. Token-level analysis has no
    // types, so bare-name resolution would link `Arc::new(..)` to every
    // constructor in the workspace and drown the graph in false edges.
    // Instead:
    //   * `self.m(..)`        -> same impl type as the caller,
    //   * `Qual::f(..)`       -> impl blocks of `Qual` (uppercase) or
    //                            free fns (lowercase module path),
    //   * `recv.m(..)`        -> never: the receiver's type is unknown,
    //                            and even a workspace-unique name can
    //                            shadow a std method (`s.replace(..)` on
    //                            a String vs `Table::replace`),
    //   * `f(..)`             -> only if `f` names exactly one free fn.
    // Skipping ambiguity is the design: a missed edge is recoverable by
    // calling through `self` or a qualified path, a false cycle would
    // make the rule unusable.
    let resolve = |caller_impl: Option<&str>, c: &CallRef| -> Vec<usize> {
        let Some(cands) = by_name.get(c.callee.as_str()) else {
            return Vec::new();
        };
        let with_impl = |t: &str| -> Vec<usize> {
            cands
                .iter()
                .copied()
                .filter(|&i| summaries[i].impl_type.as_deref() == Some(t))
                .collect()
        };
        let unique = |pool: Vec<usize>| -> Vec<usize> {
            if pool.len() == 1 {
                pool
            } else {
                Vec::new()
            }
        };
        if let Some(q) = c.qual.as_deref() {
            if q.chars().next().map(char::is_uppercase).unwrap_or(false) {
                return with_impl(q);
            }
            // module-qualified free fn: `store::open(..)`
            return unique(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| summaries[i].impl_type.is_none())
                    .collect(),
            );
        }
        if c.recv.as_deref() == Some("self") {
            if let Some(t) = caller_impl {
                return with_impl(t);
            }
            // caller outside any impl (fixtures): fall back to uniqueness
            return unique(cands.clone());
        }
        if c.is_method {
            return Vec::new();
        }
        unique(
            cands
                .iter()
                .copied()
                .filter(|&i| summaries[i].impl_type.is_none())
                .collect(),
        )
    };
    // transitive lock-acquire sets, fixpoint
    let mut trans: Vec<BTreeSet<String>> = summaries
        .iter()
        .map(|s| s.locks.iter().map(|l| l.name.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..summaries.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in &summaries[i].calls {
                for t in resolve(summaries[i].impl_type.as_deref(), c) {
                    for l in &trans[t] {
                        if !trans[i].contains(l) {
                            add.insert(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                trans[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // observed edges: direct nesting + lock held across a call whose
    // target transitively acquires
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut push_edge =
        |edges: &mut Vec<Edge>, from: &str, to: &str, file: &SourceFile, off: usize, in_fn: &str, via: Option<&str>| {
            if seen.insert((from.to_owned(), to.to_owned())) {
                edges.push(Edge {
                    from: from.to_owned(),
                    to: to.to_owned(),
                    path: file.rel_path.clone(),
                    off,
                    line: file.line_of(off),
                    col: file.col_of(off),
                    in_fn: in_fn.to_owned(),
                    via: via.map(|v| v.to_owned()),
                });
            }
        };
    let mut observed_locks: BTreeSet<String> = BTreeSet::new();
    for s in &summaries {
        for l in &s.locks {
            observed_locks.insert(l.name.clone());
        }
    }
    for (i, s) in summaries.iter().enumerate() {
        let file = &files[s.file];
        // direct nesting inside one function
        for (ai, a) in s.locks.iter().enumerate() {
            for b in &s.locks[ai + 1..] {
                if b.tok < a.extent_end && b.name != a.name {
                    push_edge(&mut edges, &a.name, &b.name, file, b.off, &s.fn_name, None);
                }
            }
        }
        // held across a call into a transitively-acquiring function
        for c in &s.calls {
            if c.held.is_empty() {
                continue;
            }
            let mut acquired: BTreeSet<&str> = BTreeSet::new();
            for t in resolve(summaries[i].impl_type.as_deref(), c) {
                for l in &trans[t] {
                    acquired.insert(l.as_str());
                }
            }
            for h in &c.held {
                for l in &acquired {
                    push_edge(&mut edges, h, l, file, c.off, &s.fn_name, Some(&c.callee));
                }
            }
        }
    }
    Analysis {
        edges,
        observed_locks,
        summaries,
    }
}

/// Lock-order-graph findings over an analysis.
pub fn lock_order_findings(a: &Analysis, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.lock_names.is_empty() {
        return out;
    }
    let pos = |n: &str| cfg.lock_order.iter().position(|o| o == n);
    for e in &a.edges {
        let mk = |message: String| Finding {
            rule: RULE,
            path: e.path.clone(),
            line: e.line,
            col: e.col,
            message,
        };
        let via = e
            .via
            .as_deref()
            .map(|v| format!(" through the call to {v}()"))
            .unwrap_or_default();
        if e.from == e.to {
            out.push(mk(format!(
                "lock `{}` re-acquired{via} while its own guard is live in fn {} \
                 (self-deadlock across the call graph)",
                e.from, e.in_fn
            )));
            continue;
        }
        match (pos(&e.from), pos(&e.to)) {
            (Some(pf), Some(pt)) if pt > pf => {}
            (Some(_), Some(_)) => out.push(mk(format!(
                "whole-program acquisition order inverted: lock `{}` taken{via} while \
                 `{}` is held in fn {}, against the declared [lock-discipline] order",
                e.to, e.from, e.in_fn
            ))),
            _ => out.push(mk(format!(
                "acquisition edge `{}` -> `{}`{via} in fn {} involves a lock missing \
                 from the declared [lock-discipline] order — declare it (fail closed)",
                e.from, e.to, e.in_fn
            ))),
        }
    }
    // cycles among observed edges (beyond the self-edges reported above)
    for cycle in find_cycles(&a.edges) {
        let witness = a
            .edges
            .iter()
            .find(|e| e.from == cycle[0] && e.to == cycle[1])
            .expect("cycle edges come from the edge set");
        out.push(Finding {
            rule: RULE,
            path: witness.path.clone(),
            line: witness.line,
            col: witness.col,
            message: format!(
                "acquisition cycle {} — two code paths nest these locks in opposite \
                 orders; whichever runs second deadlocks",
                cycle.join(" -> "),
            ),
        });
    }
    // fail closed: a declared lock that is never observed means the
    // config (and therefore the declared order) has rotted
    for name in &cfg.lock_names {
        if !a.observed_locks.contains(name) {
            out.push(Finding {
                rule: RULE,
                path: "genlint.toml".to_owned(),
                line: 1,
                col: 0,
                message: format!(
                    "declared lock `{name}` is never acquired in non-test code — the \
                     [lock-discipline] config is out of date; remove it or fix the name"
                ),
            });
        }
    }
    out
}

/// All distinct cycles in the edge set (self-edges excluded; those are
/// reported separately). Each cycle is returned as `[a, b, ..., a]`,
/// starting from its lexicographically smallest node so duplicates
/// rotate onto each other.
fn find_cycles(edges: &[Edge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        if e.from != e.to {
            adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
        }
    }
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // DFS from each node, recording paths that return to the start
        let mut stack: Vec<(Vec<&str>, &str)> = vec![(vec![start], start)];
        while let Some((path, node)) = stack.pop() {
            let Some(nexts) = adj.get(node) else { continue };
            for &n in nexts {
                if n == start {
                    // canonicalize: rotate so the smallest node leads
                    let min = path.iter().min().expect("non-empty");
                    if *min == start {
                        let mut c: Vec<String> =
                            path.iter().map(|s| (*s).to_owned()).collect();
                        c.push(start.to_owned());
                        cycles.insert(c);
                    }
                } else if !path.contains(&n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push((p, n));
                }
            }
        }
    }
    cycles.into_iter().collect()
}

/// The workspace half of `error-swallow`: `unwrap_or`-family defaulting
/// on a call into a workspace function that returns a `Result`. Needs
/// the cross-file function table, so it lives here rather than in the
/// per-file rule.
pub fn error_swallow_findings(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.error_swallow_crates.is_empty() {
        return out;
    }
    // Workspace function table with the same scoped resolution as the
    // lock graph: `opt.map(..)` must not resolve to a workspace `fn map`
    // just because the name matches — the receiver's type is unknown.
    // A call is "fallible" when it resolves to at least one candidate
    // and every candidate returns a `Result` (a name mixing Result and
    // Option returns stays silent rather than guessing).
    struct FnEntry<'a> {
        impl_type: Option<&'a str>,
        returns_result: bool,
    }
    let mut table: Vec<FnEntry> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for f in files {
        if f.is_test_file() {
            continue;
        }
        for fi in &f.functions {
            if f.is_test(fi.off) || crate::items::innermost_fn(&f.functions, fi.off).is_some() {
                continue;
            }
            by_name.entry(fi.name.as_str()).or_default().push(table.len());
            table.push(FnEntry {
                impl_type: fi.impl_type.as_deref(),
                returns_result: fi.returns_result,
            });
        }
    }
    let resolve = |caller_impl: Option<&str>, c: &crate::items::CallSite| -> Vec<usize> {
        let Some(cands) = by_name.get(c.callee.as_str()) else {
            return Vec::new();
        };
        let with_impl = |t: &str| -> Vec<usize> {
            cands
                .iter()
                .copied()
                .filter(|&i| table[i].impl_type == Some(t))
                .collect()
        };
        let unique = |pool: Vec<usize>| -> Vec<usize> {
            if pool.len() == 1 {
                pool
            } else {
                Vec::new()
            }
        };
        if let Some(q) = c.qual.as_deref() {
            if q.chars().next().map(char::is_uppercase).unwrap_or(false) {
                return with_impl(q);
            }
            return unique(
                cands
                    .iter()
                    .copied()
                    .filter(|&i| table[i].impl_type.is_none())
                    .collect(),
            );
        }
        if c.recv.as_deref() == Some("self") {
            if let Some(t) = caller_impl {
                return with_impl(t);
            }
            return unique(cands.clone());
        }
        if c.is_method {
            return Vec::new();
        }
        unique(
            cands
                .iter()
                .copied()
                .filter(|&i| table[i].impl_type.is_none())
                .collect(),
        )
    };
    const DEFAULTERS: [&str; 3] = ["unwrap_or", "unwrap_or_default", "unwrap_or_else"];
    for file in files {
        if !error_swallow::in_scope(file, cfg) {
            continue;
        }
        for c in &file.calls {
            if file.is_test(c.off) {
                continue;
            }
            let caller_impl = crate::items::innermost_fn(&file.functions, c.off)
                .and_then(|i| file.functions[i].impl_type.as_deref());
            let targets = resolve(caller_impl, c);
            let fallible = !targets.is_empty() && targets.iter().all(|&t| table[t].returns_result);
            if !fallible {
                continue;
            }
            // find the call's closing paren, then look for `.unwrap_or*(`
            let mut depth = 0i32;
            let mut j = c.tok + 1;
            let close = loop {
                if j >= file.tokens.len() {
                    break None;
                }
                match file.tokens[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break Some(j);
                        }
                    }
                    _ => {}
                }
                j += 1;
            };
            let Some(close) = close else { continue };
            // `?` between the call and the defaulting method means the
            // error already propagated; the default applies to something
            // else (an Option layer) — not a swallow
            let mut k = close + 1;
            if file.tokens.get(k).map(|t| t.text == "?").unwrap_or(false) {
                continue;
            }
            if file.tokens.get(k).map(|t| t.text != ".").unwrap_or(true) {
                continue;
            }
            k += 1;
            let Some(m) = file.tokens.get(k) else { continue };
            if !DEFAULTERS.contains(&m.text.as_str()) {
                continue;
            }
            if file.tokens.get(k + 1).map(|t| t.text != "(").unwrap_or(true) {
                continue;
            }
            out.push(Finding::at(
                "error-swallow",
                file,
                m.off,
                format!(
                    ".{}() defaults away the Result of {}(), which is fallible everywhere \
                     in this workspace; an I/O error becomes plausible-but-wrong data \
                     (the PR 4 stats bug) — propagate with `?` or handle the error",
                    m.text, c.callee
                ),
            ));
        }
    }
    out
}

/// Run the full workspace pass: lock-order-graph plus the cross-file
/// half of error-swallow.
pub fn check_workspace(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let a = analyze(files, cfg);
    let mut out = lock_order_findings(&a, cfg);
    out.extend(error_swallow_findings(files, cfg));
    out
}

/// Human-readable dump of the observed acquisition graph (the
/// `--lock-graph` CLI surface).
pub fn render_graph(a: &Analysis) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "observed locks: {}\n",
        a.observed_locks
            .iter()
            .map(|l| l.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!(
        "functions summarized: {}\n",
        a.summaries.len()
    ));
    if a.edges.is_empty() {
        s.push_str("no acquisition edges observed\n");
    }
    for e in &a.edges {
        let via = e
            .via
            .as_deref()
            .map(|v| format!(" via {v}()"))
            .unwrap_or_default();
        s.push_str(&format!(
            "{} -> {}  [{}:{}:{} in fn {}{}]\n",
            e.from, e.to, e.path, e.line, e.col, e.in_fn, via
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config {
            lock_names: vec!["pool".into(), "state".into()],
            lock_order: vec!["pool".into(), "state".into()],
            ..Config::default()
        }
    }

    fn parse_all(files: &[(&str, &str)]) -> Vec<SourceFile> {
        files
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s))
            .collect()
    }

    const CALLEE_TAKES_STATE: &str =
        "impl Pager { pub fn write_page(&self, d: &[u8]) { let s = self.state.lock(); s.push(d); } }";

    #[test]
    fn cross_file_edge_in_declared_order_is_clean() {
        // caller holds pool, callee takes state: pool -> state, declared
        let files = parse_all(&[
            (
                "crates/a/src/caller.rs",
                "impl Pager { pub fn flush(&self) { let g = self.pool.lock(); \
                 self.write_page(g.buf); } }",
            ),
            ("crates/b/src/callee.rs", CALLEE_TAKES_STATE),
        ]);
        let a = analyze(&files, &cfg());
        assert_eq!(a.edges.len(), 1, "{:?}", a.edges);
        assert_eq!((a.edges[0].from.as_str(), a.edges[0].to.as_str()), ("pool", "state"));
        assert_eq!(a.edges[0].via.as_deref(), Some("write_page"));
        assert!(lock_order_findings(&a, &cfg()).is_empty());
    }

    #[test]
    fn inverted_cross_file_edge_is_reported() {
        // caller holds state, callee takes pool: state -> pool, inverted
        let files = parse_all(&[
            (
                "crates/a/src/caller.rs",
                "pub fn flush(&self) { let g = self.state.lock(); self.relabel(g.buf); }",
            ),
            (
                "crates/b/src/callee.rs",
                "pub fn relabel(&self, d: &[u8]) { let p = self.pool.lock(); p.push(d); }",
            ),
        ]);
        let a = analyze(&files, &cfg());
        let findings = lock_order_findings(&a, &cfg());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("inverted"), "{findings:?}");
        assert_eq!(findings[0].path, "crates/a/src/caller.rs");
    }

    #[test]
    fn opposite_nesting_in_two_functions_is_a_cycle() {
        let files = parse_all(&[
            (
                "crates/a/src/one.rs",
                "pub fn ab(&self) { let a = self.pool.lock(); let b = self.state.lock(); go(a, b); }",
            ),
            (
                "crates/b/src/two.rs",
                "pub fn ba(&self) { let b = self.state.lock(); let a = self.pool.lock(); go(a, b); }",
            ),
        ]);
        let a = analyze(&files, &cfg());
        let findings = lock_order_findings(&a, &cfg());
        // the ba() nesting is an inversion AND the pair forms a cycle
        assert!(
            findings.iter().any(|f| f.message.contains("cycle")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.message.contains("inverted")),
            "{findings:?}"
        );
    }

    #[test]
    fn transitive_self_reacquire_is_reported() {
        let files = parse_all(&[(
            "crates/a/src/x.rs",
            "pub fn outer(&self) { let g = self.pool.lock(); self.inner_step(); }\n\
             pub fn inner_step(&self) { let g = self.pool.lock(); g.bump(); }",
        )]);
        let a = analyze(&files, &cfg());
        let findings = lock_order_findings(&a, &cfg());
        assert!(
            findings.iter().any(|f| f.message.contains("re-acquired")),
            "{findings:?}"
        );
    }

    #[test]
    fn undeclared_lock_and_unobserved_lock_fail_closed() {
        let cfg2 = Config {
            lock_names: vec!["pool".into(), "state".into(), "ghost".into()],
            lock_order: vec!["pool".into()],
            ..Config::default()
        };
        let files = parse_all(&[(
            "crates/a/src/x.rs",
            "pub fn f(&self) { let g = self.pool.lock(); let s = self.state.lock(); go(g, s); }",
        )]);
        let a = analyze(&files, &cfg2);
        let findings = lock_order_findings(&a, &cfg2);
        assert!(
            findings.iter().any(|f| f.message.contains("missing")),
            "undeclared-order edge: {findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("`ghost`") && f.message.contains("never acquired")),
            "unobserved declared lock: {findings:?}"
        );
    }

    #[test]
    fn held_lock_released_before_call_makes_no_edge() {
        let files = parse_all(&[
            (
                "crates/a/src/caller.rs",
                "impl Pager { pub fn flush(&self) { { let g = self.pool.lock(); g.seal(); } \
                 self.write_page(b); } }",
            ),
            ("crates/b/src/callee.rs", CALLEE_TAKES_STATE),
        ]);
        let a = analyze(&files, &cfg());
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn nested_fn_locks_do_not_leak_into_parent_summary() {
        let files = parse_all(&[(
            "crates/a/src/x.rs",
            "pub fn outer(&self) { fn helper(s: &S) { let g = s.state.lock(); g.push(1); } \
             let p = self.pool.lock(); p.bump(); }",
        )]);
        let a = analyze(&files, &cfg());
        // pool is held only after helper's body; no pool -> state edge
        assert!(a.edges.is_empty(), "{:?}", a.edges);
    }

    #[test]
    fn workspace_unwrap_or_on_fallible_fn_is_reported() {
        let files = parse_all(&[
            (
                "crates/relstore/src/stats.rs",
                "pub fn row_count(&self) -> StoreResult<u64> { self.read_meta() }",
            ),
            (
                "crates/relstore/src/report.rs",
                "pub fn summary(&self) -> u64 { self.row_count().unwrap_or(0) }",
            ),
        ]);
        let cfg2 = Config {
            error_swallow_crates: vec!["relstore".into()],
            ..Config::default()
        };
        let out = error_swallow_findings(&files, &cfg2);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("row_count"), "{out:?}");
    }

    #[test]
    fn option_returns_question_marks_and_mixed_names_stay_silent() {
        let files = parse_all(&[
            (
                "crates/relstore/src/a.rs",
                "pub fn rows(&self) -> Option<u64> { self.cached }",
            ),
            (
                "crates/relstore/src/b.rs",
                // Option-returning callee: defaulting is fine
                "pub fn n(&self) -> u64 { self.rows().unwrap_or(0) }\n\
                 // `?` before the default: error already propagated
                 pub fn m(&self) -> StoreResult<u64> { Ok(self.fetch()?.unwrap_or(0)) }\n\
                 pub fn fetch(&self) -> StoreResult<Option<u64>> { Ok(None) }",
            ),
        ]);
        let cfg2 = Config {
            error_swallow_crates: vec!["relstore".into()],
            ..Config::default()
        };
        let out = error_swallow_findings(&files, &cfg2);
        assert!(out.is_empty(), "{out:?}");
    }
}
