//! The item parser: functions, impl blocks, `use` imports, and call
//! sites, extracted from the significant-token stream.
//!
//! This is deliberately not an AST — each extraction is a bracketed scan
//! over the classified token stream from [`crate::lexer`], which is
//! exactly the precision the rules and the cross-file call graph need:
//! function extents for scoping, receivers and callee names for lock
//! and error propagation, imports for module-alias reasoning.

use crate::source::Token;

/// An `impl` block found in a file.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Last path segment of the implemented type (`GamStore` for
    /// `impl GamStore` and for `impl Trait for GamStore`).
    pub type_name: String,
    /// Byte range of the block body (inside the braces).
    pub body: (usize, usize),
}

/// A `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Whether the item carries a `pub` (or `pub(...)`) visibility.
    pub is_pub: bool,
    /// Signature text between `fn` and the body brace.
    pub sig: String,
    /// Byte range of the body (inside the braces). `None` for bodyless
    /// declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Type name of the innermost enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// Byte offset of the `fn` keyword.
    pub off: usize,
    /// Whether the declared return type mentions a `Result` (including
    /// `*Result` aliases like `StoreResult`); used by the error-swallow
    /// rule to know which workspace calls are fallible.
    pub returns_result: bool,
}

/// One `use` import leaf (`use std::fs;` yields `["std", "fs"]`;
/// grouped trees are flattened into one leaf per branch).
#[derive(Debug, Clone)]
pub struct UseImport {
    pub path: Vec<String>,
    /// Byte offset of the `use` keyword.
    pub off: usize,
}

/// One call site: `callee(...)` or `recv.callee(...)`.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    /// Last identifier before the `.` for method calls (`self.vfs.write`
    /// records `vfs`); `None` for free calls and chained receivers.
    pub recv: Option<String>,
    /// Last path segment before `::` for path calls (`Arc::new` records
    /// `Arc`, `store::open` records `store`); `None` otherwise. The
    /// cross-file graph uses it to resolve `Type::method` calls to the
    /// matching impl block instead of every same-named function.
    pub qual: Option<String>,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// Byte offset of the callee identifier.
    pub off: usize,
    pub is_method: bool,
    /// Whether the argument list is empty (`recv.read()` — the shape
    /// lock acquisitions take; such sites are not treated as calls by
    /// the graph when the receiver is a declared lock).
    pub args_empty: bool,
}

/// Keywords that precede `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "fn", "use", "let", "in", "move", "ref",
    "mut", "else",
];

/// Index of the matching `}` for the `{` at token index `open`.
pub fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Type name of an impl header starting at token `i` (`impl`). Returns
/// `(type_name, body_open_index)` when the header ends in a block.
fn impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut name: Option<String> = None;
    let mut angle = 0i32;
    let mut k = i + 1;
    while k < tokens.len() {
        let t = &tokens[k];
        match t.text.as_str() {
            "{" if angle <= 0 => {
                return name.map(|n| (n, k));
            }
            ";" => return None,
            "<" => angle += 1,
            ">" if k > 0 && tokens[k - 1].text != "-" => angle -= 1,
            ">" => {}
            "for" => {
                // the implemented type wins over the trait
                name = None;
            }
            _ if t.is_ident && angle <= 0 => {
                name = Some(t.text.clone());
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Whether the tokens preceding `fn` at index `i` include a `pub`
/// visibility (allowing `pub(crate)` / `pub(in path)` and the
/// `const`/`unsafe`/`async`/`extern` qualifiers in between).
fn is_pub_fn(tokens: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        match tokens[k].text.as_str() {
            "const" | "unsafe" | "async" | "extern" => continue,
            ")" => {
                // skip a parenthesized visibility argument
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match tokens[k].text.as_str() {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Whether the signature's return type mentions a Result (token after
/// `->` chains: any ident equal to or ending with `Result`).
fn sig_returns_result(tokens: &[Token], sig_start: usize, sig_end_tok: usize) -> bool {
    let mut seen_arrow = false;
    let mut k = sig_start;
    while k < sig_end_tok {
        let t = &tokens[k];
        if t.text == "-" && tokens.get(k + 1).map(|n| n.text == ">").unwrap_or(false) {
            seen_arrow = true;
            k += 2;
            continue;
        }
        if seen_arrow && t.is_ident && t.text.ends_with("Result") {
            return true;
        }
        k += 1;
    }
    false
}

/// Find `impl` blocks and `fn` items over the significant tokens.
pub fn find_items(clean: &str, tokens: &[Token]) -> (Vec<ImplInfo>, Vec<FnInfo>) {
    let mut impls = Vec::new();
    let mut functions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.text == "impl" && t.is_ident {
            if let Some((type_name, open)) = impl_header(tokens, i) {
                if let Some(close) = matching_brace(tokens, open) {
                    impls.push(ImplInfo {
                        type_name,
                        body: (tokens[open].off + 1, tokens[close].off),
                    });
                }
            }
            i += 1;
            continue;
        }
        if t.text == "fn" && t.is_ident {
            let name = match tokens.get(i + 1) {
                Some(n) if n.is_ident => n.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // find the body `{` (or `;` for bodyless declarations) at
            // paren/bracket depth 0
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut k = i + 2;
            let mut body = None;
            let mut sig_end = clean.len();
            let mut sig_end_tok = tokens.len();
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => {
                        sig_end = tokens[k].off;
                        sig_end_tok = k;
                        if let Some(close) = matching_brace(tokens, k) {
                            body = Some((tokens[k].off + 1, tokens[close].off));
                        }
                        break;
                    }
                    ";" if paren == 0 && bracket == 0 => {
                        sig_end = tokens[k].off;
                        sig_end_tok = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let sig = clean[t.off..sig_end.max(t.off)].to_owned();
            let impl_type = impls
                .iter()
                .rev()
                .find(|im| t.off >= im.body.0 && t.off < im.body.1)
                .map(|im| im.type_name.clone());
            functions.push(FnInfo {
                name,
                is_pub: is_pub_fn(tokens, i),
                sig,
                body,
                impl_type,
                off: t.off,
                returns_result: sig_returns_result(tokens, i, sig_end_tok),
            });
        }
        i += 1;
    }
    (impls, functions)
}

/// Extract `use` import leaves. Grouped trees (`use a::{b, c::d};`)
/// flatten into one leaf per branch; `as` renames keep the alias as the
/// final segment.
pub fn find_uses(tokens: &[Token]) -> Vec<UseImport> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].text == "use" && tokens[i].is_ident) {
            i += 1;
            continue;
        }
        let off = tokens[i].off;
        // parse the tree up to `;`
        let mut prefix: Vec<String> = Vec::new();
        let mut stack: Vec<Vec<String>> = Vec::new();
        // after `}` the restored prefix was already flattened into its
        // leaves — a following `,`/`}`/`;` must not emit it as a bare
        // import (`use a::{b, c}` is not also `use a`)
        let mut consumed = false;
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            match t.text.as_str() {
                ";" => break,
                "{" => {
                    stack.push(prefix.clone());
                }
                "}" => {
                    if !consumed
                        && !prefix.is_empty()
                        && prefix.len() > stack.last().map(|s| s.len()).unwrap_or(0)
                    {
                        out.push(UseImport {
                            path: prefix.clone(),
                            off,
                        });
                    }
                    prefix = stack.pop().unwrap_or_default();
                    consumed = true;
                }
                "," => {
                    if !consumed
                        && !prefix.is_empty()
                        && prefix.len() > stack.last().map(|s| s.len()).unwrap_or(0)
                    {
                        out.push(UseImport {
                            path: prefix.clone(),
                            off,
                        });
                    }
                    prefix = stack.last().cloned().unwrap_or_default();
                    consumed = false;
                }
                "as" => {
                    // the alias identifier replaces the final segment
                    if let Some(alias) = tokens.get(j + 1) {
                        if alias.is_ident {
                            prefix.pop();
                            prefix.push(alias.text.clone());
                            j += 1;
                        }
                    }
                }
                "*" => {
                    prefix.push("*".to_owned());
                    consumed = false;
                }
                _ if t.is_ident => {
                    prefix.push(t.text.clone());
                    consumed = false;
                }
                _ => {}
            }
            j += 1;
        }
        if !consumed && !prefix.is_empty() && prefix.len() > stack.last().map(|s| s.len()).unwrap_or(0)
        {
            out.push(UseImport { path: prefix, off });
        }
        i = j + 1;
    }
    out
}

/// Extract call sites: `callee(...)` and `recv.callee(...)`. Macro
/// invocations (`name!(...)`), definitions (`fn name(`), and
/// control-flow keywords are excluded.
pub fn find_calls(tokens: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !t.is_ident || t.is_int_literal() {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if tokens.get(i + 1).map(|n| n.text != "(").unwrap_or(true) {
            continue;
        }
        if i > 0 && tokens[i - 1].text == "fn" {
            continue;
        }
        let is_method = i > 0 && tokens[i - 1].text == ".";
        let recv = if is_method && i >= 2 {
            let r = &tokens[i - 2];
            if r.is_ident && !r.is_int_literal() {
                Some(r.text.clone())
            } else {
                None
            }
        } else {
            None
        };
        // `Qual::name(` — `::` lexes as two `:` puncts
        let qual = if !is_method
            && i >= 3
            && tokens[i - 1].text == ":"
            && tokens[i - 2].text == ":"
            && tokens[i - 3].is_ident
            && !tokens[i - 3].is_int_literal()
        {
            Some(tokens[i - 3].text.clone())
        } else {
            None
        };
        let args_empty = tokens.get(i + 2).map(|n| n.text == ")").unwrap_or(false);
        out.push(CallSite {
            callee: t.text.clone(),
            recv,
            qual,
            tok: i,
            off: t.off,
            is_method,
            args_empty,
        });
    }
    out
}

/// Index into `functions` of the innermost function whose body contains
/// byte offset `off`, if any.
pub fn innermost_fn(functions: &[FnInfo], off: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (span, idx)
    for (i, f) in functions.iter().enumerate() {
        if let Some((s, e)) = f.body {
            if off >= s && off < e {
                let span = e - s;
                if best.map(|(bs, _)| span < bs).unwrap_or(true) {
                    best = Some((span, i));
                }
            }
        }
    }
    best.map(|(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs", src)
    }

    #[test]
    fn uses_flatten_groups_and_aliases() {
        let f = parse("use std::fs;\nuse a::{b, c::d};\nuse x::y as z;\n");
        let paths: Vec<String> = f.uses.iter().map(|u| u.path.join("::")).collect();
        assert_eq!(paths, ["std::fs", "a::b", "a::c::d", "x::z"]);
    }

    #[test]
    fn calls_record_receiver_and_shape() {
        let f = parse("fn f() { go(1); self.vfs.write(p, d); x.read(); name!(arg); }");
        let calls: Vec<(String, Option<String>, bool)> = f
            .calls
            .iter()
            .map(|c| (c.callee.clone(), c.recv.clone(), c.args_empty))
            .collect();
        // `f` definition and `name!` macro are not calls
        assert_eq!(
            calls,
            [
                ("go".to_owned(), None, false),
                ("write".to_owned(), Some("vfs".to_owned()), false),
                ("read".to_owned(), Some("x".to_owned()), true),
            ]
        );
    }

    #[test]
    fn returns_result_detects_aliases() {
        let f = parse(
            "fn a() -> StoreResult<()> { x() }\n\
             fn b() -> Option<u32> { None }\n\
             fn c() -> std::io::Result<()> { y() }\n\
             fn d(r: Result<u8, E>) {}\n",
        );
        let by_name = |n: &str| f.functions.iter().find(|fi| fi.name == n).expect("fn");
        assert!(by_name("a").returns_result);
        assert!(!by_name("b").returns_result);
        assert!(by_name("c").returns_result);
        assert!(!by_name("d").returns_result, "param Result is not a return");
    }

    #[test]
    fn innermost_fn_prefers_the_nested_body() {
        let f = parse("fn outer() { fn inner() { leaf(); } other(); }");
        let leaf = f.calls.iter().find(|c| c.callee == "leaf").expect("leaf");
        let idx = innermost_fn(&f.functions, leaf.off).expect("in a fn");
        assert_eq!(f.functions[idx].name, "inner");
        let other = f.calls.iter().find(|c| c.callee == "other").expect("other");
        let idx = innermost_fn(&f.functions, other.off).expect("in a fn");
        assert_eq!(f.functions[idx].name, "outer");
    }
}
