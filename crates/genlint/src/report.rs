//! Human, JSON, and SARIF reporters over a [`ScanResult`].
//!
//! JSON and SARIF are emitted by a hand-rolled escaper (genlint is
//! std-only by design — see DESIGN.md §11); the JSON schema is stable so
//! CI and the benchmark harness can parse it:
//!
//! ```json
//! {
//!   "files_scanned": 63,
//!   "suppressed": 2,
//!   "cache_hits": 0,
//!   "rules": {"vfs-bypass": 0, ...},
//!   "findings": [{"rule": "...", "path": "...", "line": 7, "col": 13,
//!                 "message": "..."}]
//! }
//! ```
//!
//! SARIF output is the minimal valid subset of SARIF 2.1.0 — one run,
//! one driver, a rule table, and one result per finding with a physical
//! location — enough for GitHub code scanning and SARIF viewers to
//! render findings inline. `col == 0` means "whole file" (config-rot
//! findings); those are emitted without a region.

use crate::rules::{rule_names, Finding};
use crate::ScanResult;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-rule finding counts, in registry order (rules with zero findings
/// included, so reports always show the full surface).
pub fn per_rule_counts(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    rule_names()
        .into_iter()
        .map(|name| (name, findings.iter().filter(|f| f.rule == name).count()))
        .collect()
}

/// Render the human report. Locations are `path:line:col:`; col 0
/// (whole-file findings) renders as `path:line:`.
pub fn human(result: &ScanResult) -> String {
    let mut out = String::new();
    for f in &result.findings {
        if f.col > 0 {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.path, f.line, f.col, f.rule, f.message
            );
        } else {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
    }
    if !result.findings.is_empty() {
        out.push('\n');
    }
    let counts = per_rule_counts(&result.findings);
    let summary = counts
        .iter()
        .map(|(name, n)| format!("{name}: {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "genlint: {} finding(s) in {} file(s) ({summary}); {} baselined, {} cached",
        result.findings.len(),
        result.files_scanned,
        result.suppressed,
        result.cache_hits
    );
    out
}

/// Render the JSON report.
pub fn json(result: &ScanResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", result.files_scanned);
    let _ = writeln!(out, "  \"suppressed\": {},", result.suppressed);
    let _ = writeln!(out, "  \"cache_hits\": {},", result.cache_hits);
    let rules = per_rule_counts(&result.findings)
        .iter()
        .map(|(name, n)| format!("\"{}\": {n}", json_escape(name)))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "  \"rules\": {{{rules}}},");
    out.push_str("  \"findings\": [");
    for (i, f) in result.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \
             \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        );
    }
    if !result.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render the SARIF 2.1.0 report.
pub fn sarif(result: &ScanResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \
         \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\"name\": \"genlint\", \"rules\": [");
    let names = rule_names();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"id\": \"{}\"}}", json_escape(name));
    }
    out.push_str("]}},\n");
    out.push_str("    \"results\": [");
    for (i, f) in result.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.message),
            json_escape(&f.path),
        );
        if f.col > 0 {
            let _ = write!(
                out,
                ", \"region\": {{\"startLine\": {}, \"startColumn\": {}}}",
                f.line, f.col
            );
        }
        out.push_str("}}]}");
    }
    if !result.findings.is_empty() {
        out.push_str("\n    ");
    }
    out.push_str("]\n  }]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScanResult {
        ScanResult {
            findings: vec![
                Finding {
                    rule: "vfs-bypass",
                    path: "crates/import/src/pipeline.rs".into(),
                    line: 73,
                    col: 13,
                    message: "direct \"std::fs\" call\nsecond line".into(),
                },
                Finding {
                    rule: "cache-coherence",
                    path: "crates/genmapper/src/model.rs".into(),
                    line: 1,
                    col: 0,
                    message: "whole-file finding".into(),
                },
            ],
            suppressed: 2,
            files_scanned: 10,
            cache_hits: 4,
        }
    }

    #[test]
    fn escapes_json_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn human_report_has_location_and_summary() {
        let text = human(&sample());
        assert!(text.contains("crates/import/src/pipeline.rs:73:13: [vfs-bypass]"));
        // col 0 drops the column segment
        assert!(text.contains("crates/genmapper/src/model.rs:1: [cache-coherence]"));
        assert!(text.contains("2 finding(s) in 10 file(s)"));
        assert!(text.contains("2 baselined, 4 cached"));
    }

    #[test]
    fn json_report_is_escaped_and_lists_all_rules() {
        let text = json(&sample());
        assert!(text.contains("\\\"std::fs\\\""));
        assert!(text.contains("\\nsecond line"));
        assert!(text.contains("\"vfs-bypass\": 1"));
        assert!(text.contains("\"wal-bracket\": 0"));
        assert!(text.contains("\"lock-order-graph\": 0"));
        assert!(text.contains("\"files_scanned\": 10"));
        assert!(text.contains("\"cache_hits\": 4"));
        assert!(text.contains("\"col\": 13"));
    }

    #[test]
    fn sarif_report_has_schema_rules_and_regions() {
        let text = sarif(&sample());
        assert!(text.contains("\"version\": \"2.1.0\""));
        assert!(text.contains("\"name\": \"genlint\""));
        assert!(text.contains("{\"id\": \"lock-order-graph\"}"));
        assert!(text.contains("\"startLine\": 73"));
        assert!(text.contains("\"startColumn\": 13"));
        // whole-file finding (col 0) carries no region
        let whole = text
            .split("genmapper/src/model.rs")
            .nth(1)
            .expect("second finding present");
        assert!(!whole[..whole.find('}').expect("object end")].contains("region"));
    }

    #[test]
    fn empty_result_is_valid() {
        let text = json(&ScanResult {
            findings: vec![],
            suppressed: 0,
            files_scanned: 0,
            cache_hits: 0,
        });
        assert!(text.contains("\"findings\": []"));
        let text = sarif(&ScanResult {
            findings: vec![],
            suppressed: 0,
            files_scanned: 0,
            cache_hits: 0,
        });
        assert!(text.contains("\"results\": []"));
    }
}
