//! Human and JSON reporters over a [`ScanResult`].
//!
//! JSON is emitted by a hand-rolled escaper (genlint is std-only by
//! design — see DESIGN.md §11); the schema is stable so CI and the
//! benchmark harness can parse it:
//!
//! ```json
//! {
//!   "files_scanned": 63,
//!   "suppressed": 2,
//!   "rules": {"vfs-bypass": 0, ...},
//!   "findings": [{"rule": "...", "path": "...", "line": 7, "message": "..."}]
//! }
//! ```

use crate::rules::{rule_names, Finding};
use crate::ScanResult;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Per-rule finding counts, in registry order (rules with zero findings
/// included, so reports always show the full surface).
pub fn per_rule_counts(findings: &[Finding]) -> Vec<(&'static str, usize)> {
    rule_names()
        .into_iter()
        .map(|name| (name, findings.iter().filter(|f| f.rule == name).count()))
        .collect()
}

/// Render the human report.
pub fn human(result: &ScanResult) -> String {
    let mut out = String::new();
    for f in &result.findings {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    if !result.findings.is_empty() {
        out.push('\n');
    }
    let counts = per_rule_counts(&result.findings);
    let summary = counts
        .iter()
        .map(|(name, n)| format!("{name}: {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "genlint: {} finding(s) in {} file(s) ({summary}); {} baselined",
        result.findings.len(),
        result.files_scanned,
        result.suppressed
    );
    out
}

/// Render the JSON report.
pub fn json(result: &ScanResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", result.files_scanned);
    let _ = writeln!(out, "  \"suppressed\": {},", result.suppressed);
    let rules = per_rule_counts(&result.findings)
        .iter()
        .map(|(name, n)| format!("\"{}\": {n}", json_escape(name)))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "  \"rules\": {{{rules}}},");
    out.push_str("  \"findings\": [");
    for (i, f) in result.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        );
    }
    if !result.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScanResult {
        ScanResult {
            findings: vec![Finding {
                rule: "vfs-bypass",
                path: "crates/import/src/pipeline.rs".into(),
                line: 73,
                message: "direct \"std::fs\" call\nsecond line".into(),
            }],
            suppressed: 2,
            files_scanned: 10,
        }
    }

    #[test]
    fn escapes_json_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn human_report_has_location_and_summary() {
        let text = human(&sample());
        assert!(text.contains("crates/import/src/pipeline.rs:73: [vfs-bypass]"));
        assert!(text.contains("1 finding(s) in 10 file(s)"));
        assert!(text.contains("2 baselined"));
    }

    #[test]
    fn json_report_is_escaped_and_lists_all_rules() {
        let text = json(&sample());
        assert!(text.contains("\\\"std::fs\\\""));
        assert!(text.contains("\\nsecond line"));
        assert!(text.contains("\"vfs-bypass\": 1"));
        assert!(text.contains("\"wal-bracket\": 0"));
        assert!(text.contains("\"files_scanned\": 10"));
    }

    #[test]
    fn empty_result_is_valid() {
        let text = json(&ScanResult {
            findings: vec![],
            suppressed: 0,
            files_scanned: 0,
        });
        assert!(text.contains("\"findings\": []"));
    }
}
