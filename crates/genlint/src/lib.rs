//! genlint — a dependency-free architectural invariant checker for the
//! GenMapper workspace.
//!
//! Clippy and rustc enforce language-level rules; genlint enforces the
//! *workspace conventions* this codebase's correctness arguments lean on
//! (see DESIGN.md §11):
//!
//! * `vfs-bypass` — durable I/O goes through `relstore::vfs::Vfs` so the
//!   crash-recovery sweeps can fault-inject it,
//! * `no-panic` — core crates stay panic-free on malformed input,
//! * `cache-coherence` — every public mutator bumps the mutation counter
//!   the versioned mapping cache keys on,
//! * `lock-discipline` — nested locks follow one declared order and no
//!   guard is held across a scoped-thread spawn,
//! * `wal-bracket` — group-commit windows close on every path and
//!   relstore write paths sync before returning.
//!
//! genlint is std-only on purpose: it runs in the tier-1 gate of an
//! offline container, so it may not cost a single crates.io dependency.
//! Rules work on a masked token stream (comments and string contents
//! blanked), not an AST — each one is a statement about which tokens
//! appear in which scopes, which is exactly what a lexer-level scan can
//! answer reliably.
//!
//! Known findings live in `genlint.toml` as `[[allow]]` entries, each
//! with a mandatory human-written reason. Stale entries (matching
//! nothing) are themselves errors, so the baseline can only shrink.

pub mod config;
pub mod report;
pub mod rules;
pub mod source;

use config::Config;
use rules::Finding;
use source::SourceFile;
use std::path::{Path, PathBuf};

/// Outcome of scanning a workspace.
#[derive(Debug)]
pub struct ScanResult {
    /// Findings that survived baseline filtering, ordered by path/line.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `[[allow]]` entries.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Directories the walker never descends into: build output, VCS
/// metadata, dev scripts (not product code — nothing durable), and
/// fixture corpora (seeded violations genlint's own tests load
/// explicitly).
const SKIP_DIRS: [&str; 4] = ["target", ".git", "scripts", "fixtures"];

/// Collect all `.rs` files under `root`, sorted for deterministic output.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Check one already-loaded file against every rule. Used by the scan
/// driver and directly by fixture tests.
pub fn check_file(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in rules::registry() {
        rule.check(file, cfg, &mut out);
    }
    out
}

/// Scan the workspace under `root` with `cfg`, applying the baseline.
pub fn scan(root: &Path, cfg: &Config) -> std::io::Result<ScanResult> {
    let files = collect_rs_files(root)?;
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let raw = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let file = SourceFile::parse(&rel, &raw);
        files_scanned += 1;
        findings.extend(check_file(&file, cfg));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    // baseline filtering: an [[allow]] entry suppresses findings of its
    // rule under its path prefix; entries that match nothing are errors
    // so the baseline can only shrink.
    let mut suppressed = 0usize;
    let mut used = vec![false; cfg.allow.len()];
    let mut kept = Vec::new();
    for f in findings {
        let hit = cfg.allow.iter().position(|a| {
            a.rule == f.rule
                && (f.path == a.path
                    || f.path
                        .strip_prefix(&a.path)
                        .map(|rest| rest.starts_with('/'))
                        .unwrap_or(false))
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    for (i, a) in cfg.allow.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                rule: "stale-allow",
                path: a.path.clone(),
                line: 0,
                message: format!(
                    "[[allow]] entry (rule `{}`) suppresses nothing — the violation was fixed; \
                     remove the entry from genlint.toml",
                    a.rule
                ),
            });
        }
    }
    Ok(ScanResult {
        findings: kept,
        suppressed,
        files_scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::AllowEntry;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            message: "m".into(),
        }
    }

    fn filter(findings: Vec<Finding>, allow: Vec<AllowEntry>) -> (Vec<Finding>, usize) {
        // run the baseline logic via a temp-dir-free path: inline copy of
        // the filtering loop is not exposed, so exercise it through scan()
        // on a scratch directory.
        let dir = std::env::temp_dir().join(format!("genlint-filter-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // materialize one file per finding that triggers vfs-bypass
        for f in &findings {
            let p = dir.join(&f.path);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(&p, "fn f() { std::fs::write(p, d); }\n").expect("write");
        }
        let cfg = Config {
            allow,
            ..Config::default()
        };
        let result = scan(&dir, &cfg).expect("scan");
        let _ = std::fs::remove_dir_all(&dir);
        (result.findings, result.suppressed)
    }

    #[test]
    fn allow_entries_suppress_by_prefix_and_stale_entries_err() {
        let (kept, suppressed) = filter(
            vec![finding("vfs-bypass", "crates/a/src/x.rs")],
            vec![AllowEntry {
                rule: "vfs-bypass".into(),
                path: "crates/a".into(),
                reason: "r".into(),
            }],
        );
        assert_eq!(suppressed, 1);
        assert!(kept.is_empty(), "{kept:?}");

        let (kept, suppressed) = filter(
            vec![finding("vfs-bypass", "crates/a/src/x.rs")],
            vec![AllowEntry {
                rule: "vfs-bypass".into(),
                path: "crates/b".into(),
                reason: "r".into(),
            }],
        );
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 2, "original finding plus stale-allow: {kept:?}");
        assert!(kept.iter().any(|f| f.rule == "stale-allow"));
    }

    #[test]
    fn prefix_match_requires_component_boundary() {
        // "crates/a" must not cover "crates/ab/..."
        let (kept, suppressed) = filter(
            vec![finding("vfs-bypass", "crates/ab/src/x.rs")],
            vec![AllowEntry {
                rule: "vfs-bypass".into(),
                path: "crates/a".into(),
                reason: "r".into(),
            }],
        );
        assert_eq!(suppressed, 0);
        assert!(kept.iter().any(|f| f.path == "crates/ab/src/x.rs"));
    }

    #[test]
    fn walker_skips_target_git_and_hidden() {
        let dir = std::env::temp_dir().join(format!("genlint-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for sub in ["src", "target/debug", ".git", "scripts", "tests/fixtures"] {
            std::fs::create_dir_all(dir.join(sub)).expect("mkdir");
        }
        for f in [
            "src/a.rs",
            "target/debug/b.rs",
            ".git/c.rs",
            "scripts/d.rs",
            "tests/fixtures/e.rs",
            "src/nope.txt",
        ] {
            std::fs::write(dir.join(f), "fn f() {}\n").expect("write");
        }
        let files = collect_rs_files(&dir).expect("walk");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(files.len(), 1, "{files:?}");
        assert!(files[0].ends_with("src/a.rs"));
    }
}
