//! genlint — a dependency-free architectural invariant checker for the
//! GenMapper workspace.
//!
//! Clippy and rustc enforce language-level rules; genlint enforces the
//! *workspace conventions* this codebase's correctness arguments lean on
//! (see DESIGN.md §11 and §16):
//!
//! * `vfs-bypass` — durable I/O goes through `relstore::vfs::Vfs` so the
//!   crash-recovery sweeps can fault-inject it,
//! * `no-panic` — core crates stay panic-free on malformed input,
//! * `cache-coherence` — every public mutator bumps the mutation counter
//!   the versioned mapping cache keys on,
//! * `lock-discipline` — nested locks follow one declared order and no
//!   guard is held across a scoped-thread spawn,
//! * `wal-bracket` — group-commit windows close on every path and
//!   relstore write paths sync before returning,
//! * `atomics-discipline` — `Ordering::Relaxed` only on allowlisted
//!   telemetry atomics, never coherence decisions,
//! * `error-swallow` — durable-path crates do not silently discard
//!   `Result`s,
//! * `lock-order-graph` — the *whole-program* lock acquisition graph
//!   (propagated through the cross-file call graph) stays acyclic and
//!   follows the declared order.
//!
//! genlint is std-only on purpose: it runs in the tier-1 gate of an
//! offline container, so it may not cost a single crates.io dependency.
//! Since v2 the rules work on a real token stream ([`lexer`]): every
//! byte of a source file lands in exactly one spanned token classified
//! as code, comment, or literal, which kills the strings-and-comments
//! false-positive class and gives findings precise line:col spans. A
//! lightweight item parser ([`items`]) extracts functions, impl blocks,
//! imports, and call sites per file; the [`graph`] pass links them into
//! a workspace call graph for the cross-file rules.
//!
//! Known findings live in `genlint.toml` as `[[allow]]` entries, each
//! with a mandatory human-written reason. Stale entries (matching
//! nothing) are themselves errors, so the baseline can only shrink.

pub mod config;
pub mod engine;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use engine::{
    check_file, collect_rs_files, fnv1a, lock_graph, scan, scan_with, ScanOptions, ScanResult,
};
