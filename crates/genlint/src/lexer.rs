//! The token-level lexer: a byte-exact partition of Rust source into
//! classified, spanned tokens.
//!
//! This replaces the regex-era "mask comments and strings with spaces"
//! preprocessing (PR 5) with a real lexer. Every byte of the input
//! belongs to exactly one token — the concatenation of token spans
//! reproduces the file byte-for-byte, with no gaps and no overlap (the
//! partition invariant; pinned by `tests/lexer_prop.rs` against both
//! arbitrary inputs and every `.rs` file in the workspace). Comments and
//! string/char literals are *classified*, not blanked, which kills the
//! whole false-positive class where a banned pattern inside a doc
//! comment or a log message could fool a line-regex: rules only ever see
//! [`TokKind::is_code`] tokens.
//!
//! The lexer is total: any byte sequence lexes (unterminated literals
//! and comments extend to end of input), so malformed fixtures and
//! non-Rust text degrade gracefully instead of panicking.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// `// ...` to end of line (newline not included).
    LineComment,
    /// `/* ... */`, nesting; unterminated extends to end of input.
    BlockComment,
    /// `"..."`, `b"..."`, `r"..."`, `r#"..."#`, `br#"..."#` — the whole
    /// literal including delimiters and prefix.
    Str,
    /// `'x'`, `'\n'`, `b'x'` — the whole literal.
    Char,
    /// `'ident` lifetime (tick included).
    Lifetime,
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including `0x...`, `_` separators, suffixes).
    Int,
    /// Float literal (`1.5`, `1e9`, `2.5e-3`).
    Float,
    /// One punctuation byte (`::` is two `:` tokens).
    Punct,
}

impl TokKind {
    /// Whether rules should see this token: code tokens only — comments,
    /// strings, chars, and whitespace are classified out of the stream.
    pub fn is_code(self) -> bool {
        matches!(
            self,
            TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Punct | TokKind::Lifetime
        )
    }
}

/// One lexed token: a classified byte span of the raw source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// Lex `src` into a byte-exact partition.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must make progress");
            out.push(Tok {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance past one UTF-8 character (or one byte on invalid UTF-8).
    fn bump_char(&mut self) {
        let b = self.src[self.pos];
        let width = match b {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            0xf0..=0xf7 => 4,
            _ => 1,
        };
        self.pos = (self.pos + width).min(self.src.len());
    }

    fn next_kind(&mut self) -> TokKind {
        let b = self.src[self.pos];
        if b.is_ascii_whitespace() {
            while self
                .peek(0)
                .map(|c| c.is_ascii_whitespace())
                .unwrap_or(false)
            {
                self.pos += 1;
            }
            return TokKind::Whitespace;
        }
        if b == b'/' && self.peek(1) == Some(b'/') {
            while self.peek(0).map(|c| c != b'\n').unwrap_or(false) {
                self.bump_char();
            }
            return TokKind::LineComment;
        }
        if b == b'/' && self.peek(1) == Some(b'*') {
            self.pos += 2;
            let mut depth = 1usize;
            while depth > 0 && self.pos < self.src.len() {
                if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                    depth += 1;
                    self.pos += 2;
                } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                    depth -= 1;
                    self.pos += 2;
                } else {
                    self.bump_char();
                }
            }
            return TokKind::BlockComment;
        }
        // raw / byte string prefixes: r" r#" br" br#" b" — only at token
        // start, so identifiers containing r/b can't false-trigger.
        if b == b'r' || b == b'b' {
            let mut j = self.pos;
            if self.src[j] == b'b' && self.src.get(j + 1) == Some(&b'r') {
                j += 1;
            }
            if self.src[j] == b'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while self.src.get(k) == Some(&b'#') {
                    hashes += 1;
                    k += 1;
                }
                if self.src.get(k) == Some(&b'"') {
                    self.pos = k + 1;
                    self.consume_raw_tail(hashes);
                    return TokKind::Str;
                }
            }
            if b == b'b' {
                match self.peek(1) {
                    Some(b'"') => {
                        self.pos += 2;
                        self.consume_str_tail(b'"');
                        return TokKind::Str;
                    }
                    Some(b'\'') => {
                        self.pos += 2;
                        self.consume_str_tail(b'\'');
                        return TokKind::Char;
                    }
                    _ => {}
                }
            }
        }
        if b == b'"' {
            self.pos += 1;
            self.consume_str_tail(b'"');
            return TokKind::Str;
        }
        if b == b'\'' {
            // char literal vs lifetime: an escape or a close quote two
            // chars on means a char; otherwise `'ident` is a lifetime.
            let is_char = match self.peek(1) {
                Some(b'\\') => true,
                Some(_) => {
                    // `'x'` (ascii) or `'λ'` (the close quote lands after
                    // the char's UTF-8 width)
                    let w = match self.peek(1) {
                        Some(c @ 0xc0..=0xdf) => {
                            let _ = c;
                            2
                        }
                        Some(0xe0..=0xef) => 3,
                        Some(0xf0..=0xf7) => 4,
                        _ => 1,
                    };
                    self.peek(1 + w) == Some(b'\'')
                }
                None => false,
            };
            if is_char {
                self.pos += 1;
                self.consume_str_tail(b'\'');
                return TokKind::Char;
            }
            self.pos += 1;
            while self
                .peek(0)
                .map(|c| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80)
                .unwrap_or(false)
            {
                self.bump_char();
            }
            return TokKind::Lifetime;
        }
        if b.is_ascii_digit() {
            return self.consume_number();
        }
        if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 {
            while self
                .peek(0)
                .map(|c| c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80)
                .unwrap_or(false)
            {
                self.bump_char();
            }
            return TokKind::Ident;
        }
        // single punctuation byte
        self.pos += 1;
        TokKind::Punct
    }

    /// Consume a quoted tail up to an unescaped `close` (or end of input).
    fn consume_str_tail(&mut self, close: u8) {
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos = (self.pos + 2).min(self.src.len());
                }
                c if c == close => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump_char(),
            }
        }
    }

    /// Consume a raw-string tail up to `"` followed by `hashes` hashes.
    fn consume_raw_tail(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut h = 0usize;
                while h < hashes && self.src.get(self.pos + 1 + h) == Some(&b'#') {
                    h += 1;
                }
                if h == hashes {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump_char();
        }
    }

    fn consume_number(&mut self) -> TokKind {
        // digits, hex/oct/bin bodies, `_` separators, and type suffixes
        // all fall in the alnum/underscore run
        while self
            .peek(0)
            .map(|c| c.is_ascii_alphanumeric() || c == b'_')
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let mut kind = TokKind::Int;
        // fractional part: `.` followed by a digit (`1..2` stays Int)
        if self.peek(0) == Some(b'.')
            && self
                .peek(1)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false)
        {
            self.pos += 1;
            while self
                .peek(0)
                .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                .unwrap_or(false)
            {
                self.pos += 1;
            }
            kind = TokKind::Float;
        }
        // signed exponent (`1e5` is already consumed by the alnum run;
        // only `1e+5` / `2.5E-3` need the explicit sign step)
        if self.src[self.pos - 1].eq_ignore_ascii_case(&b'e')
            && matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && self
                .peek(1)
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false)
        {
            self.pos += 1;
            while self
                .peek(0)
                .map(|c| c.is_ascii_alphanumeric() || c == b'_')
                .unwrap_or(false)
            {
                self.pos += 1;
            }
            kind = TokKind::Float;
        }
        kind
    }
}

/// Rebuild the masked text (comment and literal contents blanked,
/// newlines and byte offsets preserved) from a lexed partition. Kept for
/// compatibility with the pre-lexer `mask()` surface; unlike the old
/// char-based masker this is byte-preserving, so offsets into the masked
/// text equal offsets into the raw source even with multi-byte chars.
pub fn masked(src: &str, toks: &[Tok]) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    for t in toks {
        if t.kind.is_code() || t.kind == TokKind::Whitespace {
            out.extend_from_slice(&bytes[t.start..t.end]);
        } else {
            for &b in &bytes[t.start..t.end] {
                out.push(if b == b'\n' { b'\n' } else { b' ' });
            }
        }
    }
    // blanking multi-byte chars to single spaces keeps the length equal
    // because we blank per *byte*; the result is pure ASCII + newlines
    String::from_utf8(out).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn partition_ok(src: &str) {
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "gap/overlap at {pos} in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tail not covered in {src:?}");
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src)
            .iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn partitions_basic_source() {
        for src in [
            "",
            "fn main() {}\n",
            "let s = \"std::fs\"; // std::fs\n/* .unwrap() */ let c = 'p';",
            "let r = r#\"panic!(\"x\")\"#; let lt: &'static str = q;",
            "let b = b\"fs\"; let bc = b'x'; let e = '\\'';",
            "let f = 1.5e-3; let i = 0xff_u32; let r = 1..2;",
            "let u = \"λλ\"; // λ comment\nlet v = 'λ';",
            "/* unterminated",
            "\"unterminated",
            "r#\"unterminated",
        ] {
            partition_ok(src);
        }
    }

    #[test]
    fn classifies_comments_and_strings() {
        assert_eq!(
            kinds("a \"s\" // c"),
            [TokKind::Ident, TokKind::Str, TokKind::LineComment]
        );
        assert_eq!(
            kinds("/* x /* y */ z */ b"),
            [TokKind::BlockComment, TokKind::Ident]
        );
        assert_eq!(kinds("r#\"x\"# 'c' 'life"), [
            TokKind::Str,
            TokKind::Char,
            TokKind::Lifetime
        ]);
        assert_eq!(kinds("b\"x\" b'y' br#\"z\"#"), [
            TokKind::Str,
            TokKind::Char,
            TokKind::Str
        ]);
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(kinds("1.5"), [TokKind::Float]);
        assert_eq!(kinds("2.5e-3"), [TokKind::Float]);
        assert_eq!(kinds("1e9"), [TokKind::Int]); // alnum run; fine either way
        assert_eq!(
            kinds("1..2"),
            [TokKind::Int, TokKind::Punct, TokKind::Punct, TokKind::Int]
        );
        assert_eq!(kinds("0xff_u64"), [TokKind::Int]);
        // method call on an int stays int + punct + ident
        assert_eq!(
            kinds("1.max(2)")[..2],
            [TokKind::Int, TokKind::Punct]
        );
    }

    #[test]
    fn idents_with_string_prefix_letters_do_not_eat_strings() {
        // `abr` is an ident, the string is separate
        let k = kinds("abr\"x\"");
        assert_eq!(k, [TokKind::Ident, TokKind::Str]);
        // but a lone r/b before a quote is a raw/byte string
        assert_eq!(kinds("r\"x\""), [TokKind::Str]);
    }

    #[test]
    fn masked_is_byte_preserving() {
        let src = "let a = \"λλ std::fs\"; // λ .unwrap()\nlet b = 1;";
        let toks = lex(src);
        let m = masked(src, &toks);
        assert_eq!(m.len(), src.len());
        assert!(!m.contains("std::fs"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let b = 1;"));
        assert_eq!(
            m.matches('\n').count(),
            src.matches('\n').count()
        );
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        partition_ok(r#"let s = "a\"b"; x()"#);
        let k = kinds(r#""a\"b" x"#);
        assert_eq!(k, [TokKind::Str, TokKind::Ident]);
    }
}
