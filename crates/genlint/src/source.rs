//! Source preparation: a comment/string-masking lexer, `#[cfg(test)]`
//! scope tracking, and a light function/impl extractor.
//!
//! genlint never needs a real Rust parser: every rule it enforces is a
//! statement about which *tokens* appear in which *scopes*. The pipeline
//! here turns a `.rs` file into exactly that shape:
//!
//! 1. [`mask`] replaces comment and string/char-literal *contents* with
//!    spaces (newlines preserved), so token scans cannot be fooled by
//!    `// don't .unwrap() here` or `"std::fs"` inside a message.
//! 2. The masked text is tokenized into identifiers (numbers included)
//!    and single punctuation characters, each with a byte offset.
//! 3. A brace-depth pass marks test scope: `#[cfg(test)]` / `#[test]`
//!    attributed items, `mod tests { ... }` blocks, and whole files under
//!    `tests/`, `benches/`, or `examples/` directories.
//! 4. A second pass records `impl` blocks and `fn` items (name,
//!    visibility, signature, body extent) for the rules that reason about
//!    functions rather than raw tokens.

/// One lexed token of the masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte offset into the masked text (newline-aligned with the raw
    /// source, so offsets map to line numbers).
    pub off: usize,
    /// Identifier, keyword, or numeric literal text; single-char string
    /// for punctuation.
    pub text: String,
    /// True for identifier-like tokens (including numbers), false for
    /// punctuation.
    pub is_ident: bool,
}

impl Token {
    /// Whether this token is an integer literal (starts with a digit).
    pub fn is_int_literal(&self) -> bool {
        self.is_ident && self.text.starts_with(|c: char| c.is_ascii_digit())
    }
}

/// An `impl` block found in a file.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Last path segment of the implemented type (`GamStore` for
    /// `impl GamStore` and for `impl Trait for GamStore`).
    pub type_name: String,
    /// Byte range of the block body (inside the braces).
    pub body: (usize, usize),
}

/// A `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// Whether the item carries a `pub` (or `pub(...)`) visibility.
    pub is_pub: bool,
    /// Signature text between `fn` and the body brace.
    pub sig: String,
    /// Byte range of the body (inside the braces). `None` for bodyless
    /// declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Type name of the innermost enclosing `impl` block, if any.
    pub impl_type: Option<String>,
    /// Byte offset of the `fn` keyword.
    pub off: usize,
}

/// A fully prepared source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Masked text (comments and literal contents replaced by spaces).
    pub clean: String,
    pub tokens: Vec<Token>,
    pub impls: Vec<ImplInfo>,
    pub functions: Vec<FnInfo>,
    /// Sorted, disjoint byte ranges of test-only code.
    test_ranges: Vec<(usize, usize)>,
    /// Whole file is test scope (integration tests, benches, examples).
    whole_file_test: bool,
    /// Byte offsets of line starts, for offset -> line mapping.
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Prepare a file from its raw text.
    pub fn parse(rel_path: &str, raw: &str) -> SourceFile {
        let clean = mask(raw);
        let tokens = tokenize(&clean);
        let whole_file_test = path_is_test(rel_path);
        let test_ranges = find_test_ranges(&tokens, clean.len());
        let (impls, functions) = find_items(&clean, &tokens);
        let mut line_starts = vec![0usize];
        for (i, b) in clean.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel_path: rel_path.to_owned(),
            clean,
            tokens,
            impls,
            functions,
            test_ranges,
            whole_file_test,
            line_starts,
        }
    }

    /// Whether the byte offset lies in test-only code.
    pub fn is_test(&self, off: usize) -> bool {
        if self.whole_file_test {
            return true;
        }
        self.test_ranges
            .iter()
            .any(|&(s, e)| off >= s && off < e)
    }

    /// Whether the entire file is test scope.
    pub fn is_test_file(&self) -> bool {
        self.whole_file_test
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, off: usize) -> usize {
        match self.line_starts.binary_search(&off) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Index of the first token at or after byte offset `off`.
    pub fn token_at(&self, off: usize) -> usize {
        self.tokens.partition_point(|t| t.off < off)
    }

    /// Token indexes covering the byte range `[start, end)`.
    pub fn tokens_in(&self, start: usize, end: usize) -> (usize, usize) {
        (self.token_at(start), self.token_at(end))
    }

    /// Whether the fn whose `fn` keyword sits at byte offset `off` takes
    /// `&mut self` (or `mut self`) as its receiver.
    pub fn fn_takes_mut_self(&self, off: usize) -> bool {
        let start = self.token_at(off);
        // scan the signature tokens up to the parameter list's closing paren
        let mut depth = 0i32;
        let mut i = start;
        while i < self.tokens.len() {
            match self.tokens[i].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                "self" if depth == 1 => {
                    return i >= 1 && self.tokens[i - 1].text == "mut";
                }
                "{" | ";" if depth == 0 => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    /// Whether the token sequence starting at index `i` matches `pat`
    /// texts exactly.
    pub fn seq_matches(&self, i: usize, pat: &[&str]) -> bool {
        if i + pat.len() > self.tokens.len() {
            return false;
        }
        pat.iter()
            .enumerate()
            .all(|(k, p)| self.tokens[i + k].text == *p)
    }
}

/// Whether a path is test-only by location.
fn path_is_test(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

// ---------------------------------------------------------------------------
// Masking lexer
// ---------------------------------------------------------------------------

/// Replace comment and string/char-literal contents with spaces,
/// preserving newlines (and therefore line numbers). Handles line and
/// (nesting) block comments, plain/byte/raw strings, char and byte-char
/// literals, and distinguishes lifetimes from char literals.
pub fn mask(raw: &str) -> String {
    let b: Vec<char> = raw.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(raw.len());
    let push_masked = |out: &mut String, c: char| {
        out.push(if c == '\n' { '\n' } else { ' ' });
    };
    let mut i = 0usize;
    let mut prev_ident = false; // previous emitted char was ident-like
    while i < n {
        let c = b[i];
        // line comment
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        // block comment (Rust block comments nest)
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            out.push(' ');
            out.push(' ');
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    push_masked(&mut out, b[i]);
                    i += 1;
                }
            }
            prev_ident = false;
            continue;
        }
        // raw (and raw byte) strings: r"..", r#".."#, br#".."#
        if (c == 'r' || c == 'b') && !prev_ident {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && b[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    // mask the whole literal including delimiters
                    for &ch in &b[i..=k] {
                        push_masked(&mut out, ch);
                    }
                    i = k + 1;
                    'raw: while i < n {
                        if b[i] == '"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < n && b[i + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                for &ch in &b[i..=i + hashes] {
                                    push_masked(&mut out, ch);
                                }
                                i += hashes + 1;
                                break 'raw;
                            }
                        }
                        push_masked(&mut out, b[i]);
                        i += 1;
                    }
                    prev_ident = false;
                    continue;
                }
            }
        }
        // byte string b"..", byte char b'.'
        if c == 'b' && !prev_ident && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '\'') {
            out.push(' ');
            i += 1;
            // fall through to the string/char branches below on the quote
            prev_ident = false;
            continue;
        }
        // string literal
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    push_masked(&mut out, b[i]);
                    push_masked(&mut out, b[i + 1]);
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                push_masked(&mut out, b[i]);
                i += 1;
            }
            prev_ident = false;
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && b[i + 2] == '\''
            };
            if is_char {
                out.push(' ');
                i += 1;
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        push_masked(&mut out, b[i]);
                        push_masked(&mut out, b[i + 1]);
                        i += 2;
                        continue;
                    }
                    if b[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    push_masked(&mut out, b[i]);
                    i += 1;
                }
                prev_ident = false;
                continue;
            }
            // lifetime: keep the tick, the following ident is harmless
            out.push('\'');
            i += 1;
            prev_ident = false;
            continue;
        }
        out.push(c);
        prev_ident = c.is_alphanumeric() || c == '_';
        i += 1;
    }
    out
}

/// Tokenize masked text into identifiers/numbers and punctuation.
pub fn tokenize(clean: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes: Vec<(usize, char)> = clean.char_indices().collect();
    let n = bytes.len();
    let mut i = 0usize;
    while i < n {
        let (off, c) = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < n && (bytes[i].1.is_alphanumeric() || bytes[i].1 == '_') {
                i += 1;
            }
            let text: String = bytes[start..i].iter().map(|&(_, ch)| ch).collect();
            tokens.push(Token {
                off,
                text,
                is_ident: true,
            });
            continue;
        }
        tokens.push(Token {
            off,
            text: c.to_string(),
            is_ident: false,
        });
        i += 1;
    }
    tokens
}

// ---------------------------------------------------------------------------
// Test-scope tracking
// ---------------------------------------------------------------------------

/// Normalized content of an outer attribute starting at token `i`
/// (which must be `#`). Returns `(content_without_whitespace,
/// next_token_index)`, or `None` if `i` is not an outer attribute.
fn attr_content(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    if tokens.get(i)?.text != "#" {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.text == "!" {
        // inner attribute (`#![...]`): applies to the enclosing scope, not
        // the next item — never a test marker in practice; skip it.
        j += 1;
    }
    if tokens.get(j)?.text != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut content = String::new();
    let mut k = j;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((content, k + 1));
                }
            }
            t => {
                if depth >= 1 {
                    content.push_str(t);
                }
            }
        }
        k += 1;
    }
    None
}

/// Compute the sorted byte ranges of test-only code.
fn find_test_ranges(tokens: &[Token], len: usize) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    // stack of is_test flags per open brace
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_test = false;
    let mut test_start: Option<usize> = None;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.text == "#" {
            if let Some((content, next)) = attr_content(tokens, i) {
                let inner = tokens
                    .get(i + 1)
                    .map(|t| t.text == "!")
                    .unwrap_or(false);
                if !inner
                    && (content == "test"
                        || content == "cfg(test)"
                        || content.starts_with("cfg(test,"))
                {
                    pending_test = true;
                }
                i = next;
                continue;
            }
        }
        match t.text.as_str() {
            "mod" => {
                // `mod tests { .. }` without an attribute also counts
                if let Some(name) = tokens.get(i + 1) {
                    if name.text == "tests" {
                        pending_test = true;
                    }
                }
            }
            "{" => {
                let parent_test = stack.last().copied().unwrap_or(false);
                let is_test = parent_test || pending_test;
                if is_test && test_start.is_none() {
                    test_start = Some(t.off);
                }
                stack.push(is_test);
                pending_test = false;
            }
            "}" => {
                let was_test = stack.pop().unwrap_or(false);
                let now_test = stack.last().copied().unwrap_or(false);
                if was_test && !now_test {
                    if let Some(s) = test_start.take() {
                        ranges.push((s, t.off + 1));
                    }
                }
            }
            ";" => {
                // `#[cfg(test)] use foo;` — attribute consumed by a
                // bodyless item
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(s) = test_start {
        ranges.push((s, len));
    }
    ranges
}

// ---------------------------------------------------------------------------
// Item extraction
// ---------------------------------------------------------------------------

/// Index of the matching `}` for the `{` at token index `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Type name of an impl header starting at token `i` (`impl`). Returns
/// `(type_name, body_open_index)` when the header ends in a block.
fn impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut after_for = false;
    let mut name: Option<String> = None;
    let mut angle = 0i32;
    let mut k = i + 1;
    while k < tokens.len() {
        let t = &tokens[k];
        match t.text.as_str() {
            "{" if angle <= 0 => {
                return name.map(|n| (n, k));
            }
            ";" => return None,
            "<" => angle += 1,
            // ignore `->` (impl headers have none, but be safe)
            ">" if k > 0 && tokens[k - 1].text != "-" => angle -= 1,
            ">" => {}
            "for" => {
                after_for = true;
                name = None;
            }
            _ if t.is_ident && angle <= 0 => {
                // remember the last path segment seen; `for` resets it so
                // the implemented type wins over the trait
                let _ = after_for;
                name = Some(t.text.clone());
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Whether the tokens preceding `fn` at index `i` include a `pub`
/// visibility (allowing `pub(crate)` / `pub(in path)` and the
/// `const`/`unsafe`/`async`/`extern` qualifiers in between).
fn is_pub_fn(tokens: &[Token], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        k -= 1;
        match tokens[k].text.as_str() {
            "const" | "unsafe" | "async" | "extern" => continue,
            ")" => {
                // skip a parenthesized visibility argument
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match tokens[k].text.as_str() {
                        ")" => depth += 1,
                        "(" => depth -= 1,
                        _ => {}
                    }
                }
                continue;
            }
            "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Find `impl` blocks and `fn` items.
fn find_items(clean: &str, tokens: &[Token]) -> (Vec<ImplInfo>, Vec<FnInfo>) {
    let mut impls = Vec::new();
    let mut functions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.text == "impl" && t.is_ident {
            if let Some((type_name, open)) = impl_header(tokens, i) {
                if let Some(close) = matching_brace(tokens, open) {
                    impls.push(ImplInfo {
                        type_name,
                        body: (tokens[open].off + 1, tokens[close].off),
                    });
                }
            }
            i += 1;
            continue;
        }
        if t.text == "fn" && t.is_ident {
            let name = match tokens.get(i + 1) {
                Some(n) if n.is_ident => n.text.clone(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            // find the body `{` (or `;` for bodyless declarations) at
            // paren/bracket depth 0
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut k = i + 2;
            let mut body = None;
            let mut sig_end = clean.len();
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => {
                        sig_end = tokens[k].off;
                        if let Some(close) = matching_brace(tokens, k) {
                            body = Some((tokens[k].off + 1, tokens[close].off));
                        }
                        break;
                    }
                    ";" if paren == 0 && bracket == 0 => {
                        sig_end = tokens[k].off;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            let sig = clean[t.off..sig_end.max(t.off)].to_owned();
            let impl_type = impls
                .iter()
                .rev()
                .find(|im| t.off >= im.body.0 && t.off < im.body.1)
                .map(|im| im.type_name.clone());
            functions.push(FnInfo {
                name,
                is_pub: is_pub_fn(tokens, i),
                sig,
                body,
                impl_type,
                off: t.off,
            });
        }
        i += 1;
    }
    (impls, functions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_strips_comments_and_strings() {
        let src = "let a = \"std::fs\"; // std::fs here\nlet b = 1; /* .unwrap() */\n";
        let m = mask(src);
        assert!(!m.contains("std::fs"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let a ="));
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn mask_handles_raw_strings_and_chars() {
        let src = "let r = r#\"panic!(\"x\")\"#; let c = 'p'; let lt: &'static str = x;";
        let m = mask(src);
        assert!(!m.contains("panic"));
        assert!(m.contains("'static"));
        let src2 = "let e = '\\''; let q = b'x'; let bs = b\"fs::write\";";
        let m2 = mask(src2);
        assert!(!m2.contains("fs::write"));
    }

    #[test]
    fn mask_handles_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still comment */ let x = 1;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let x = 1;"));
    }

    #[test]
    fn test_scope_covers_cfg_test_mod() {
        let src = "fn prod() { body(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let unwrap_off = f.clean.find("unwrap").expect("token present");
        assert!(f.is_test(unwrap_off));
        let body_off = f.clean.find("body").expect("token present");
        assert!(!f.is_test(body_off));
        let after_off = f.clean.find("after").expect("token present");
        assert!(!f.is_test(after_off));
    }

    #[test]
    fn test_scope_covers_test_fn_attribute_only() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn prod() { y(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_test(f.clean.find("unwrap").expect("present")));
        assert!(!f.is_test(f.clean.find("y()").expect("present")));
    }

    #[test]
    fn inner_cfg_attr_is_not_test_scope() {
        let src = "#![cfg_attr(not(test), deny(clippy::unwrap_used))]\nfn prod() { a(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.is_test(f.clean.find("a()").expect("present")));
    }

    #[test]
    fn files_under_tests_dir_are_test_scope() {
        let f = SourceFile::parse("crates/x/tests/foo.rs", "fn t() { x.unwrap(); }");
        assert!(f.is_test_file());
        assert!(f.is_test(0));
    }

    #[test]
    fn functions_and_impls_are_extracted() {
        let src = "impl GamStore {\n    pub fn create_source(&mut self, n: &str) -> u32 { self.bump(); 1 }\n    fn helper(&self) {}\n}\npub fn free() {}\nimpl Vfs for FaultVfs { fn read(&self) {} }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.impls.len(), 2);
        assert_eq!(f.impls[0].type_name, "GamStore");
        assert_eq!(f.impls[1].type_name, "FaultVfs");
        let create = f
            .functions
            .iter()
            .find(|fi| fi.name == "create_source")
            .expect("found");
        assert!(create.is_pub);
        assert!(create.sig.contains("&mut self"));
        assert_eq!(create.impl_type.as_deref(), Some("GamStore"));
        let helper = f.functions.iter().find(|fi| fi.name == "helper").expect("found");
        assert!(!helper.is_pub);
        let free = f.functions.iter().find(|fi| fi.name == "free").expect("found");
        assert!(free.is_pub);
        assert!(free.impl_type.is_none());
        let read = f.functions.iter().find(|fi| fi.name == "read").expect("found");
        assert_eq!(read.impl_type.as_deref(), Some("FaultVfs"));
    }

    #[test]
    fn line_numbers_map_through_masking() {
        let src = "line1();\n// comment\nline3();\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.line_of(f.clean.find("line3").expect("present")), 3);
    }
}
