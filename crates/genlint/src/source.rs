//! Source preparation: the lexed token stream, `#[cfg(test)]` scope
//! tracking, and the extracted items.
//!
//! genlint never needs a full Rust parser: every rule it enforces is a
//! statement about which *tokens* appear in which *scopes*. The pipeline
//! here turns a `.rs` file into exactly that shape:
//!
//! 1. [`crate::lexer::lex`] partitions the raw bytes into classified
//!    spanned tokens; comments and string/char literals are classified
//!    out rather than blanked, so token scans cannot be fooled by
//!    `// don't .unwrap() here` or `"std::fs"` inside a message.
//! 2. The code tokens ([`crate::lexer::TokKind::is_code`]) become the
//!    significant-token stream rules scan, each with a byte offset that
//!    maps to a precise line:col.
//! 3. A brace-depth pass marks test scope: `#[cfg(test)]` / `#[test]`
//!    attributed items, `mod tests { ... }` blocks, and whole files under
//!    `tests/`, `benches/`, or `examples/` directories.
//! 4. [`crate::items`] extracts `impl` blocks, `fn` items, `use`
//!    imports, and call sites for the rules and the cross-file call
//!    graph.

use crate::lexer::{self, Tok, TokKind};

pub use crate::items::{CallSite, FnInfo, ImplInfo, UseImport};

/// One significant (code) token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte offset into the raw source (the lexer is byte-exact, so
    /// offsets map to line and column numbers directly).
    pub off: usize,
    /// Identifier, keyword, or numeric literal text; single-char string
    /// for punctuation.
    pub text: String,
    /// True for identifier-like tokens (including numbers), false for
    /// punctuation.
    pub is_ident: bool,
}

impl Token {
    /// Whether this token is an integer literal (starts with a digit).
    pub fn is_int_literal(&self) -> bool {
        self.is_ident && self.text.starts_with(|c: char| c.is_ascii_digit())
    }
}

/// A fully prepared source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Masked text (comment and literal contents blanked per byte), kept
    /// for the rules that slice signature text out of the source.
    pub clean: String,
    /// The full classified lex partition of the raw source.
    pub lexed: Vec<Tok>,
    /// Significant (code) tokens only — what rules scan.
    pub tokens: Vec<Token>,
    pub impls: Vec<ImplInfo>,
    pub functions: Vec<FnInfo>,
    /// Flattened `use` import leaves.
    pub uses: Vec<UseImport>,
    /// Call sites (`callee(...)`, `recv.callee(...)`) in token order.
    pub calls: Vec<CallSite>,
    /// Sorted, disjoint byte ranges of test-only code.
    test_ranges: Vec<(usize, usize)>,
    /// Whole file is test scope (integration tests, benches, examples).
    whole_file_test: bool,
    /// Byte offsets of line starts, for offset -> line:col mapping.
    line_starts: Vec<usize>,
}

impl SourceFile {
    /// Prepare a file from its raw text.
    pub fn parse(rel_path: &str, raw: &str) -> SourceFile {
        let lexed = lexer::lex(raw);
        let clean = lexer::masked(raw, &lexed);
        let tokens = significant(raw, &lexed);
        let whole_file_test = path_is_test(rel_path);
        let test_ranges = find_test_ranges(&tokens, raw.len());
        let (impls, functions) = crate::items::find_items(&clean, &tokens);
        let uses = crate::items::find_uses(&tokens);
        let calls = crate::items::find_calls(&tokens);
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            rel_path: rel_path.to_owned(),
            clean,
            lexed,
            tokens,
            impls,
            functions,
            uses,
            calls,
            test_ranges,
            whole_file_test,
            line_starts,
        }
    }

    /// Whether the byte offset lies in test-only code.
    pub fn is_test(&self, off: usize) -> bool {
        if self.whole_file_test {
            return true;
        }
        self.test_ranges
            .iter()
            .any(|&(s, e)| off >= s && off < e)
    }

    /// Whether the entire file is test scope.
    pub fn is_test_file(&self) -> bool {
        self.whole_file_test
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, off: usize) -> usize {
        match self.line_starts.binary_search(&off) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// 1-based column (in bytes) of a byte offset.
    pub fn col_of(&self, off: usize) -> usize {
        let line = self.line_of(off);
        off - self.line_starts[line - 1] + 1
    }

    /// Index of the first token at or after byte offset `off`.
    pub fn token_at(&self, off: usize) -> usize {
        self.tokens.partition_point(|t| t.off < off)
    }

    /// Token indexes covering the byte range `[start, end)`.
    pub fn tokens_in(&self, start: usize, end: usize) -> (usize, usize) {
        (self.token_at(start), self.token_at(end))
    }

    /// Whether the fn whose `fn` keyword sits at byte offset `off` takes
    /// `&mut self` (or `mut self`) as its receiver.
    pub fn fn_takes_mut_self(&self, off: usize) -> bool {
        let start = self.token_at(off);
        // scan the signature tokens up to the parameter list's closing paren
        let mut depth = 0i32;
        let mut i = start;
        while i < self.tokens.len() {
            match self.tokens[i].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                "self" if depth == 1 => {
                    return i >= 1 && self.tokens[i - 1].text == "mut";
                }
                "{" | ";" if depth == 0 => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    /// Whether the token sequence starting at index `i` matches `pat`
    /// texts exactly.
    pub fn seq_matches(&self, i: usize, pat: &[&str]) -> bool {
        if i + pat.len() > self.tokens.len() {
            return false;
        }
        pat.iter()
            .enumerate()
            .all(|(k, p)| self.tokens[i + k].text == *p)
    }
}

/// Derive the significant-token stream from a lex partition. Lifetimes
/// split into a `'` punct plus the identifier (matching the pre-lexer
/// tokenizer, which rules pattern-match against); everything non-code is
/// dropped.
fn significant(raw: &str, lexed: &[Tok]) -> Vec<Token> {
    let mut out = Vec::new();
    for t in lexed {
        match t.kind {
            TokKind::Ident | TokKind::Int | TokKind::Float => out.push(Token {
                off: t.start,
                text: raw[t.start..t.end].to_owned(),
                is_ident: true,
            }),
            TokKind::Punct => out.push(Token {
                off: t.start,
                text: raw[t.start..t.end].to_owned(),
                is_ident: false,
            }),
            TokKind::Lifetime => {
                out.push(Token {
                    off: t.start,
                    text: "'".to_owned(),
                    is_ident: false,
                });
                if t.end > t.start + 1 {
                    out.push(Token {
                        off: t.start + 1,
                        text: raw[t.start + 1..t.end].to_owned(),
                        is_ident: true,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Replace comment and string/char-literal contents with spaces,
/// preserving newlines and byte offsets. Compatibility surface over the
/// lexer for callers that want masked text without a [`SourceFile`].
pub fn mask(raw: &str) -> String {
    let toks = lexer::lex(raw);
    lexer::masked(raw, &toks)
}

/// Whether a path is test-only by location.
fn path_is_test(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

// ---------------------------------------------------------------------------
// Test-scope tracking
// ---------------------------------------------------------------------------

/// Normalized content of an outer attribute starting at token `i`
/// (which must be `#`). Returns `(content_without_whitespace,
/// next_token_index)`, or `None` if `i` is not an outer attribute.
fn attr_content(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    if tokens.get(i)?.text != "#" {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.text == "!" {
        // inner attribute (`#![...]`): applies to the enclosing scope, not
        // the next item — never a test marker in practice; skip it.
        j += 1;
    }
    if tokens.get(j)?.text != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut content = String::new();
    let mut k = j;
    while k < tokens.len() {
        match tokens[k].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((content, k + 1));
                }
            }
            t => {
                if depth >= 1 {
                    content.push_str(t);
                }
            }
        }
        k += 1;
    }
    None
}

/// Compute the sorted byte ranges of test-only code.
fn find_test_ranges(tokens: &[Token], len: usize) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    // stack of is_test flags per open brace
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_test = false;
    let mut test_start: Option<usize> = None;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.text == "#" {
            if let Some((content, next)) = attr_content(tokens, i) {
                let inner = tokens
                    .get(i + 1)
                    .map(|t| t.text == "!")
                    .unwrap_or(false);
                if !inner
                    && (content == "test"
                        || content == "cfg(test)"
                        || content.starts_with("cfg(test,"))
                {
                    pending_test = true;
                }
                i = next;
                continue;
            }
        }
        match t.text.as_str() {
            "mod" => {
                // `mod tests { .. }` without an attribute also counts
                if let Some(name) = tokens.get(i + 1) {
                    if name.text == "tests" {
                        pending_test = true;
                    }
                }
            }
            "{" => {
                let parent_test = stack.last().copied().unwrap_or(false);
                let is_test = parent_test || pending_test;
                if is_test && test_start.is_none() {
                    test_start = Some(t.off);
                }
                stack.push(is_test);
                pending_test = false;
            }
            "}" => {
                let was_test = stack.pop().unwrap_or(false);
                let now_test = stack.last().copied().unwrap_or(false);
                if was_test && !now_test {
                    if let Some(s) = test_start.take() {
                        ranges.push((s, t.off + 1));
                    }
                }
            }
            ";" => {
                // `#[cfg(test)] use foo;` — attribute consumed by a
                // bodyless item
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(s) = test_start {
        ranges.push((s, len));
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_strips_comments_and_strings() {
        let src = "let a = \"std::fs\"; // std::fs here\nlet b = 1; /* .unwrap() */\n";
        let m = mask(src);
        assert!(!m.contains("std::fs"));
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let a ="));
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn mask_handles_raw_strings_and_chars() {
        let src = "let r = r#\"panic!(\"x\")\"#; let c = 'p'; let lt: &'static str = x;";
        let m = mask(src);
        assert!(!m.contains("panic"));
        assert!(m.contains("'static"));
        let src2 = "let e = '\\''; let q = b'x'; let bs = b\"fs::write\";";
        let m2 = mask(src2);
        assert!(!m2.contains("fs::write"));
    }

    #[test]
    fn mask_handles_nested_block_comments() {
        let src = "/* outer /* inner .unwrap() */ still comment */ let x = 1;";
        let m = mask(src);
        assert!(!m.contains("unwrap"));
        assert!(m.contains("let x = 1;"));
    }

    #[test]
    fn mask_is_byte_preserving_for_multibyte_sources() {
        let src = "let a = \"λλ std::fs\"; // λλ\nfn target() {}\n";
        let m = mask(src);
        assert_eq!(m.len(), src.len());
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let t = f
            .functions
            .iter()
            .find(|fi| fi.name == "target")
            .expect("found");
        // the offset must land on the raw source's `fn`, not drift from
        // multi-byte chars earlier in the file
        assert_eq!(&src.as_bytes()[t.off..t.off + 2], b"fn");
        assert_eq!(f.line_of(t.off), 2);
        assert_eq!(f.col_of(t.off), 1);
    }

    #[test]
    fn test_scope_covers_cfg_test_mod() {
        let src = "fn prod() { body(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let unwrap_off = f.clean.find("unwrap").expect("token present");
        assert!(f.is_test(unwrap_off));
        let body_off = f.clean.find("body").expect("token present");
        assert!(!f.is_test(body_off));
        let after_off = f.clean.find("after").expect("token present");
        assert!(!f.is_test(after_off));
    }

    #[test]
    fn test_scope_covers_test_fn_attribute_only() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn prod() { y(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.is_test(f.clean.find("unwrap").expect("present")));
        assert!(!f.is_test(f.clean.find("y()").expect("present")));
    }

    #[test]
    fn inner_cfg_attr_is_not_test_scope() {
        let src = "#![cfg_attr(not(test), deny(clippy::unwrap_used))]\nfn prod() { a(); }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.is_test(f.clean.find("a()").expect("present")));
    }

    #[test]
    fn files_under_tests_dir_are_test_scope() {
        let f = SourceFile::parse("crates/x/tests/foo.rs", "fn t() { x.unwrap(); }");
        assert!(f.is_test_file());
        assert!(f.is_test(0));
    }

    #[test]
    fn functions_and_impls_are_extracted() {
        let src = "impl GamStore {\n    pub fn create_source(&mut self, n: &str) -> u32 { self.bump(); 1 }\n    fn helper(&self) {}\n}\npub fn free() {}\nimpl Vfs for FaultVfs { fn read(&self) {} }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.impls.len(), 2);
        assert_eq!(f.impls[0].type_name, "GamStore");
        assert_eq!(f.impls[1].type_name, "FaultVfs");
        let create = f
            .functions
            .iter()
            .find(|fi| fi.name == "create_source")
            .expect("found");
        assert!(create.is_pub);
        assert!(create.sig.contains("&mut self"));
        assert_eq!(create.impl_type.as_deref(), Some("GamStore"));
        let helper = f.functions.iter().find(|fi| fi.name == "helper").expect("found");
        assert!(!helper.is_pub);
        let free = f.functions.iter().find(|fi| fi.name == "free").expect("found");
        assert!(free.is_pub);
        assert!(free.impl_type.is_none());
        let read = f.functions.iter().find(|fi| fi.name == "read").expect("found");
        assert_eq!(read.impl_type.as_deref(), Some("FaultVfs"));
    }

    #[test]
    fn lifetimes_split_into_tick_and_ident() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "fn f<'a>(x: &'a str) {}");
        let i = f.tokens.iter().position(|t| t.text == "'").expect("tick");
        assert!(!f.tokens[i].is_ident);
        assert_eq!(f.tokens[i + 1].text, "a");
        assert!(f.tokens[i + 1].is_ident);
    }

    #[test]
    fn line_numbers_map_through_masking() {
        let src = "line1();\n// comment\nline3();\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.line_of(f.clean.find("line3").expect("present")), 3);
        assert_eq!(f.col_of(f.clean.find("line3").expect("present")), 1);
    }
}
