//! `genlint.toml` loading: rule scope configuration and the justified
//! baseline.
//!
//! genlint is dependency-free, so this module implements the small TOML
//! subset the config actually uses — `[section]` tables, `[[section]]`
//! arrays of tables, `key = "string"`, `key = ["a", "b"]`, comments —
//! rather than pulling in a full parser. Unknown sections and keys are
//! rejected loudly: a typo in an invariant config must not silently
//! disable the invariant.

use std::fmt;

/// One justified exemption. `path` is a workspace-relative prefix: the
/// entry covers a single file or a whole directory.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub reason: String,
}

/// One declared mutator set for the cache-coherence rule: every `pub fn`
/// taking `&mut self` in `impl <type_name>` inside `file` must call
/// `bump()` unless listed in `exempt`.
#[derive(Debug, Clone, Default)]
pub struct MutatorSet {
    pub file: String,
    pub type_name: String,
    pub bump: String,
    pub exempt: Vec<String>,
}

/// One declared read-entry set for the lock-discipline rule's snapshot
/// coherence check: the named methods in `file` are MVCC read-path entry
/// points and must take `&self`, never `&mut self` — a `&mut` read entry
/// would force readers through the writer's exclusive path.
#[derive(Debug, Clone, Default)]
pub struct ReadEntrySet {
    pub file: String,
    pub methods: Vec<String>,
}

/// One declared planner entry-point set for the plan-coherence rule: the
/// named functions in `file` are public execution entry points and must
/// route through the cost-based planner seam (call one of the configured
/// `seam_calls`). `prefixes` fails the list closed in the other
/// direction: a new `pub fn` whose name starts with a prefix but is not
/// listed means someone added an execution entry point that bypasses the
/// planner — or forgot to declare it.
#[derive(Debug, Clone, Default)]
pub struct PlanEntrySet {
    pub file: String,
    pub prefixes: Vec<String>,
    pub functions: Vec<String>,
}

/// One justified `Ordering::Relaxed` site set for the atomics-discipline
/// rule: within `file`, the named atomics (receiver or field identifiers)
/// may use `Relaxed` — telemetry counters whose values never steer a
/// coherence decision. The reason is mandatory and entries that match no
/// Relaxed site are reported as stale, so the allowlist can only shrink.
#[derive(Debug, Clone, Default)]
pub struct RelaxedOk {
    pub file: String,
    pub idents: Vec<String>,
    pub reason: String,
}

/// Parsed configuration.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Crates whose non-test code must be panic-free (R2).
    pub no_panic_crates: Vec<String>,
    /// Identifiers whose integer-literal indexing R2 flags (`fields[3]`).
    pub index_idents: Vec<String>,
    /// Receiver names (last path segment) treated as locks by R4.
    pub lock_names: Vec<String>,
    /// Declared global acquisition order for R4 (outermost first).
    pub lock_order: Vec<String>,
    /// Function names that must never be called with a declared-lock
    /// guard live (R4 snapshot coherence): handler execution and the
    /// shared query executor run against a cloned `Arc` snapshot, not
    /// under a lock.
    pub guard_free_calls: Vec<String>,
    /// Declared read-path entry sets for R4 (methods that must take
    /// `&self`).
    pub read_entries: Vec<ReadEntrySet>,
    /// Declared mutator sets for R3.
    pub mutators: Vec<MutatorSet>,
    /// Identifiers that constitute the planner seam for R6 (calling any
    /// of them counts as routing through the planner).
    pub plan_seam_calls: Vec<String>,
    /// Declared planner entry-point sets for R6.
    pub plan_entries: Vec<PlanEntrySet>,
    /// Function names in relstore exempt from R5's sync-before-return
    /// check (sync deliberately deferred to the commit path).
    pub sync_exempt: Vec<String>,
    /// Directory prefix whose non-test code must route sockets through
    /// the declared wrapper (R7). Empty = rule unconfigured.
    pub socket_scope: String,
    /// The one file allowed to touch sockets directly (it *is* the seam).
    pub socket_wrapper: String,
    /// Type the wrapper must define; its absence means the config rotted.
    pub socket_wrapper_type: String,
    /// Identifiers banned outside the wrapper (raw buffered readers).
    pub socket_banned: Vec<String>,
    /// Crates whose non-test `Ordering::Relaxed` uses the atomics rule
    /// flags (R8). Empty = rule unconfigured.
    pub atomics_crates: Vec<String>,
    /// Justified Relaxed sites for R8.
    pub relaxed_ok: Vec<RelaxedOk>,
    /// Crates whose non-test code the error-swallow rule scans (R9):
    /// the durable-path crates where a discarded `Result` means silent
    /// data loss.
    pub error_swallow_crates: Vec<String>,
    /// The justified baseline (suppressed findings).
    pub allow: Vec<AllowEntry>,
}

/// Config / parse failure with a line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "genlint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: usize, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Parse a `"quoted string"` value.
fn parse_string(line: usize, v: &str) -> Result<String, ConfigError> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_owned())
    } else {
        Err(err(line, format!("expected a quoted string, got `{v}`")))
    }
}

/// Parse a `["a", "b"]` single-line array of strings.
fn parse_string_array(line: usize, v: &str) -> Result<Vec<String>, ConfigError> {
    let v = v.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected a [\"...\"] array, got `{v}`")))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(line, part)?);
    }
    Ok(out)
}

/// Strip a trailing `# comment` that is outside any quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `genlint.toml` text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        NoPanic,
        LockDiscipline,
        WalBracket,
        PlanCoherence,
        SocketDiscipline,
        AtomicsDiscipline,
        ErrorSwallow,
        Mutator,
        ReadEntry,
        PlanEntry,
        RelaxedOk,
        Allow,
    }
    let mut cfg = Config::default();
    let mut section = Section::None;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            match header.trim() {
                "allow" => {
                    cfg.allow.push(AllowEntry::default());
                    section = Section::Allow;
                }
                "cache-coherence.mutators" => {
                    cfg.mutators.push(MutatorSet::default());
                    section = Section::Mutator;
                }
                "lock-discipline.read-entries" => {
                    cfg.read_entries.push(ReadEntrySet::default());
                    section = Section::ReadEntry;
                }
                "plan-coherence.entry-points" => {
                    cfg.plan_entries.push(PlanEntrySet::default());
                    section = Section::PlanEntry;
                }
                "atomics-discipline.relaxed-ok" => {
                    cfg.relaxed_ok.push(RelaxedOk::default());
                    section = Section::RelaxedOk;
                }
                other => return Err(err(lineno, format!("unknown array section `{other}`"))),
            }
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = match header.trim() {
                "no-panic" => Section::NoPanic,
                "lock-discipline" => Section::LockDiscipline,
                "wal-bracket" => Section::WalBracket,
                "plan-coherence" => Section::PlanCoherence,
                "socket-discipline" => Section::SocketDiscipline,
                "atomics-discipline" => Section::AtomicsDiscipline,
                "error-swallow" => Section::ErrorSwallow,
                other => return Err(err(lineno, format!("unknown section `{other}`"))),
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
        let key = key.trim();
        match section {
            Section::None => {
                return Err(err(lineno, format!("key `{key}` outside any section")))
            }
            Section::NoPanic => match key {
                "crates" => cfg.no_panic_crates = parse_string_array(lineno, value)?,
                "index_idents" => cfg.index_idents = parse_string_array(lineno, value)?,
                _ => return Err(err(lineno, format!("unknown key `{key}` in [no-panic]"))),
            },
            Section::LockDiscipline => match key {
                "locks" => cfg.lock_names = parse_string_array(lineno, value)?,
                "order" => cfg.lock_order = parse_string_array(lineno, value)?,
                "guard_free_calls" => {
                    cfg.guard_free_calls = parse_string_array(lineno, value)?
                }
                _ => {
                    return Err(err(
                        lineno,
                        format!("unknown key `{key}` in [lock-discipline]"),
                    ))
                }
            },
            Section::WalBracket => match key {
                "sync_exempt" => cfg.sync_exempt = parse_string_array(lineno, value)?,
                _ => return Err(err(lineno, format!("unknown key `{key}` in [wal-bracket]"))),
            },
            Section::PlanCoherence => match key {
                "seam_calls" => cfg.plan_seam_calls = parse_string_array(lineno, value)?,
                _ => {
                    return Err(err(
                        lineno,
                        format!("unknown key `{key}` in [plan-coherence]"),
                    ))
                }
            },
            Section::SocketDiscipline => match key {
                "scope" => cfg.socket_scope = parse_string(lineno, value)?,
                "wrapper" => cfg.socket_wrapper = parse_string(lineno, value)?,
                "wrapper_type" => cfg.socket_wrapper_type = parse_string(lineno, value)?,
                "banned" => cfg.socket_banned = parse_string_array(lineno, value)?,
                _ => {
                    return Err(err(
                        lineno,
                        format!("unknown key `{key}` in [socket-discipline]"),
                    ))
                }
            },
            Section::AtomicsDiscipline => match key {
                "crates" => cfg.atomics_crates = parse_string_array(lineno, value)?,
                _ => {
                    return Err(err(
                        lineno,
                        format!("unknown key `{key}` in [atomics-discipline]"),
                    ))
                }
            },
            Section::ErrorSwallow => match key {
                "crates" => cfg.error_swallow_crates = parse_string_array(lineno, value)?,
                _ => {
                    return Err(err(
                        lineno,
                        format!("unknown key `{key}` in [error-swallow]"),
                    ))
                }
            },
            Section::RelaxedOk => {
                let Some(r) = cfg.relaxed_ok.last_mut() else {
                    return Err(err(
                        lineno,
                        "relaxed-ok key before [[atomics-discipline.relaxed-ok]]",
                    ));
                };
                match key {
                    "file" => r.file = parse_string(lineno, value)?,
                    "idents" => r.idents = parse_string_array(lineno, value)?,
                    "reason" => r.reason = parse_string(lineno, value)?,
                    _ => {
                        return Err(err(
                            lineno,
                            format!("unknown key `{key}` in [[atomics-discipline.relaxed-ok]]"),
                        ))
                    }
                }
            }
            Section::Mutator => {
                let Some(m) = cfg.mutators.last_mut() else {
                    return Err(err(lineno, "mutator key before [[cache-coherence.mutators]]"));
                };
                match key {
                    "file" => m.file = parse_string(lineno, value)?,
                    "impl" => m.type_name = parse_string(lineno, value)?,
                    "bump" => m.bump = parse_string(lineno, value)?,
                    "exempt" => m.exempt = parse_string_array(lineno, value)?,
                    _ => {
                        return Err(err(
                            lineno,
                            format!("unknown key `{key}` in [[cache-coherence.mutators]]"),
                        ))
                    }
                }
            }
            Section::ReadEntry => {
                let Some(r) = cfg.read_entries.last_mut() else {
                    return Err(err(
                        lineno,
                        "read-entry key before [[lock-discipline.read-entries]]",
                    ));
                };
                match key {
                    "file" => r.file = parse_string(lineno, value)?,
                    "methods" => r.methods = parse_string_array(lineno, value)?,
                    _ => {
                        return Err(err(
                            lineno,
                            format!("unknown key `{key}` in [[lock-discipline.read-entries]]"),
                        ))
                    }
                }
            }
            Section::PlanEntry => {
                let Some(p) = cfg.plan_entries.last_mut() else {
                    return Err(err(
                        lineno,
                        "entry-point key before [[plan-coherence.entry-points]]",
                    ));
                };
                match key {
                    "file" => p.file = parse_string(lineno, value)?,
                    "prefixes" => p.prefixes = parse_string_array(lineno, value)?,
                    "functions" => p.functions = parse_string_array(lineno, value)?,
                    _ => {
                        return Err(err(
                            lineno,
                            format!("unknown key `{key}` in [[plan-coherence.entry-points]]"),
                        ))
                    }
                }
            }
            Section::Allow => {
                let Some(a) = cfg.allow.last_mut() else {
                    return Err(err(lineno, "allow key before [[allow]]"));
                };
                match key {
                    "rule" => a.rule = parse_string(lineno, value)?,
                    "path" => a.path = parse_string(lineno, value)?,
                    "reason" => a.reason = parse_string(lineno, value)?,
                    _ => return Err(err(lineno, format!("unknown key `{key}` in [[allow]]"))),
                }
            }
        }
    }
    // every baseline entry must be justified
    for a in &cfg.allow {
        if a.rule.is_empty() || a.path.is_empty() || a.reason.is_empty() {
            return Err(err(
                0,
                format!(
                    "[[allow]] entry for rule `{}` path `{}` must set rule, path, and a non-empty reason",
                    a.rule, a.path
                ),
            ));
        }
    }
    for m in &cfg.mutators {
        if m.file.is_empty() || m.type_name.is_empty() || m.bump.is_empty() {
            return Err(err(
                0,
                "[[cache-coherence.mutators]] entry must set file, impl, and bump".to_owned(),
            ));
        }
    }
    for r in &cfg.read_entries {
        if r.file.is_empty() || r.methods.is_empty() {
            return Err(err(
                0,
                "[[lock-discipline.read-entries]] entry must set file and methods".to_owned(),
            ));
        }
    }
    for p in &cfg.plan_entries {
        if p.file.is_empty() || p.functions.is_empty() {
            return Err(err(
                0,
                "[[plan-coherence.entry-points]] entry must set file and functions".to_owned(),
            ));
        }
    }
    // every Relaxed allowlist entry must be fully justified, and the
    // allowlist is meaningless without the rule being scoped to crates
    for r in &cfg.relaxed_ok {
        if r.file.is_empty() || r.idents.is_empty() || r.reason.is_empty() {
            return Err(err(
                0,
                "[[atomics-discipline.relaxed-ok]] entry must set file, idents, and a \
                 non-empty reason"
                    .to_owned(),
            ));
        }
    }
    if !cfg.relaxed_ok.is_empty() && cfg.atomics_crates.is_empty() {
        return Err(err(
            0,
            "[atomics-discipline] crates must be set when relaxed-ok entries are declared \
             (an unscoped rule would make every entry stale)"
                .to_owned(),
        ));
    }
    // socket discipline is all-or-nothing: a partially filled section
    // (e.g. a scope with no banned tokens) would pass vacuously
    let socket_keys = [
        !cfg.socket_scope.is_empty(),
        !cfg.socket_wrapper.is_empty(),
        !cfg.socket_wrapper_type.is_empty(),
        !cfg.socket_banned.is_empty(),
    ];
    if socket_keys.iter().any(|&set| set) && !socket_keys.iter().all(|&set| set) {
        return Err(err(
            0,
            "[socket-discipline] must set scope, wrapper, wrapper_type, and banned \
             together (a partial config would silently check nothing)"
                .to_owned(),
        ));
    }
    if !cfg.plan_entries.is_empty() && cfg.plan_seam_calls.is_empty() {
        return Err(err(
            0,
            "[plan-coherence] seam_calls must be set when entry points are declared \
             (an empty seam would pass every entry point vacuously)"
                .to_owned(),
        ));
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# comment
[no-panic]
crates = ["gam", "import"]  # trailing comment
index_idents = ["fields"]

[lock-discipline]
locks = ["cache", "state"]
order = ["state", "cache"]
guard_free_calls = ["run_query"]

[[lock-discipline.read-entries]]
file = "crates/gam/src/store.rs"
methods = ["query", "find_path"]

[wal-bracket]
sync_exempt = ["flush"]

[plan-coherence]
seam_calls = ["plan_chain", "ViewContext"]

[[plan-coherence.entry-points]]
file = "crates/operators/src/compose.rs"
prefixes = ["compose_path_idx"]
functions = ["compose_path_idx"]

[socket-discipline]
scope = "crates/serve/src"
wrapper = "crates/serve/src/conn.rs"
wrapper_type = "ConnGuard"
banned = ["BufReader", "lines"]

[[cache-coherence.mutators]]
file = "crates/gam/src/store.rs"
impl = "GamStore"
bump = "bump_mutations"
exempt = ["checkpoint"]

[[allow]]
rule = "vfs-bypass"
path = "crates/bench"
reason = "bench reports are non-durable"
"#;
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.no_panic_crates, vec!["gam", "import"]);
        assert_eq!(cfg.lock_order, vec!["state", "cache"]);
        assert_eq!(cfg.guard_free_calls, vec!["run_query"]);
        assert_eq!(cfg.read_entries.len(), 1);
        assert_eq!(cfg.read_entries[0].methods, vec!["query", "find_path"]);
        assert_eq!(cfg.mutators.len(), 1);
        assert_eq!(cfg.mutators[0].type_name, "GamStore");
        assert_eq!(cfg.plan_seam_calls, vec!["plan_chain", "ViewContext"]);
        assert_eq!(cfg.plan_entries.len(), 1);
        assert_eq!(cfg.plan_entries[0].prefixes, vec!["compose_path_idx"]);
        assert_eq!(cfg.plan_entries[0].functions, vec!["compose_path_idx"]);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].rule, "vfs-bypass");
        assert_eq!(cfg.socket_scope, "crates/serve/src");
        assert_eq!(cfg.socket_wrapper_type, "ConnGuard");
        assert_eq!(cfg.socket_banned, vec!["BufReader", "lines"]);
    }

    #[test]
    fn rejects_partial_socket_discipline() {
        // a scope with no banned tokens would check nothing, silently
        let text = "[socket-discipline]\nscope = \"crates/serve/src\"\n";
        assert!(parse(text).is_err(), "partial section must fail");
        let text = "[socket-discipline]\nscope = \"crates/serve/src\"\n\
                    wrapper = \"crates/serve/src/conn.rs\"\n\
                    wrapper_type = \"ConnGuard\"\nbanned = [\"BufReader\"]\n";
        assert!(parse(text).is_ok(), "complete section parses");
    }

    #[test]
    fn rejects_incomplete_read_entries() {
        let text = "[[lock-discipline.read-entries]]\nfile = \"x.rs\"\n";
        assert!(parse(text).is_err(), "missing methods must fail");
    }

    #[test]
    fn rejects_unknown_sections_and_keys() {
        assert!(parse("[nope]\n").is_err());
        assert!(parse("[no-panic]\nwat = \"x\"\n").is_err());
        assert!(parse("stray = \"x\"\n").is_err());
    }

    #[test]
    fn rejects_incomplete_plan_coherence() {
        // entry points with no declared seam fail closed
        let text = "[[plan-coherence.entry-points]]\n\
                    file = \"x.rs\"\nfunctions = [\"f\"]\n";
        assert!(parse(text).is_err(), "missing seam_calls must fail");
        let text = "[plan-coherence]\nseam_calls = [\"plan_chain\"]\n\
                    [[plan-coherence.entry-points]]\nfile = \"x.rs\"\n";
        assert!(parse(text).is_err(), "missing functions must fail");
    }

    #[test]
    fn parses_atomics_and_error_swallow_sections() {
        let text = "[atomics-discipline]\ncrates = [\"relstore\", \"serve\"]\n\
                    [[atomics-discipline.relaxed-ok]]\n\
                    file = \"crates/relstore/src/pager.rs\"\n\
                    idents = [\"hits\", \"misses\"]\n\
                    reason = \"telemetry counters\"\n\
                    [error-swallow]\ncrates = [\"relstore\", \"import\"]\n";
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.atomics_crates, vec!["relstore", "serve"]);
        assert_eq!(cfg.relaxed_ok.len(), 1);
        assert_eq!(cfg.relaxed_ok[0].idents, vec!["hits", "misses"]);
        assert_eq!(cfg.error_swallow_crates, vec!["relstore", "import"]);
    }

    #[test]
    fn rejects_unjustified_or_unscoped_relaxed_ok() {
        let text = "[atomics-discipline]\ncrates = [\"relstore\"]\n\
                    [[atomics-discipline.relaxed-ok]]\n\
                    file = \"crates/relstore/src/pager.rs\"\nidents = [\"hits\"]\n";
        assert!(parse(text).is_err(), "missing reason must fail");
        let text = "[[atomics-discipline.relaxed-ok]]\n\
                    file = \"x.rs\"\nidents = [\"hits\"]\nreason = \"r\"\n";
        assert!(parse(text).is_err(), "allowlist without crate scope must fail");
    }

    #[test]
    fn rejects_unjustified_allow() {
        let text = "[[allow]]\nrule = \"vfs-bypass\"\npath = \"x\"\n";
        assert!(parse(text).is_err(), "missing reason must fail");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = parse("[[allow]]\nrule = \"r\"\npath = \"a#b\"\nreason = \"c # d\"\n")
            .expect("parses");
        assert_eq!(cfg.allow[0].path, "a#b");
        assert_eq!(cfg.allow[0].reason, "c # d");
    }
}
