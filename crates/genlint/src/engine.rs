//! The scan driver: workspace walking, the parallel per-file phase,
//! the incremental cache, baseline filtering, and the cross-file graph
//! pass — everything between "a directory of .rs files" and a
//! [`ScanResult`].
//!
//! This lives in its own module (rather than `lib.rs`) so that
//! `scripts/genlint_harness.rs` can compile the *real* driver via
//! `#[path]` — the standalone harness and the library run byte-identical
//! scan logic, no hand-synced replica.

use crate::config::Config;
use crate::rules::Finding;
use crate::source::SourceFile;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of scanning a workspace.
#[derive(Debug)]
pub struct ScanResult {
    /// Findings that survived baseline filtering, ordered by path/line.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `[[allow]]` entries.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Files whose per-file rule findings came from the incremental
    /// cache (content hash unchanged since the cached run).
    pub cache_hits: usize,
}

/// Knobs for [`scan_with`]. [`scan`] uses the defaults: auto thread
/// count, no cache — deterministic and side-effect-free, which is what
/// the test suite wants. The CLI turns the cache on.
#[derive(Debug, Default, Clone)]
pub struct ScanOptions {
    /// Worker threads for the per-file phase; 0 = available parallelism.
    pub jobs: usize,
    /// Incremental cache file. `None` disables caching.
    pub cache_path: Option<PathBuf>,
}

/// Directories the walker never descends into: build output, VCS
/// metadata, dev scripts (not product code — nothing durable), and
/// fixture corpora (seeded violations genlint's own tests load
/// explicitly).
const SKIP_DIRS: [&str; 4] = ["target", ".git", "scripts", "fixtures"];

/// Collect all `.rs` files under `root`, sorted for deterministic output.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// FNV-1a over bytes — the cache key. Not cryptographic; it only has to
/// distinguish "same file as last run" from "edited", and std ships no
/// hasher with a stable, documented output we could persist.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Check one already-loaded file against every per-file rule. Used by
/// the scan driver and directly by fixture tests. The cross-file
/// `lock-order-graph` pass is separate — see [`graph::check_workspace`].
pub fn check_file(file: &SourceFile, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for rule in crate::rules::registry() {
        rule.check(file, cfg, &mut out);
    }
    out
}

// ---------------------------------------------------------------- cache

/// Persisted per-file results: content hash -> findings from the last
/// run. Line-oriented text, hand-rolled like the config parser (std-only
/// crate). The header binds the cache to a config fingerprint so editing
/// genlint.toml invalidates everything.
struct Cache {
    config_fp: u64,
    /// rel_path -> (content hash, findings)
    entries: HashMap<String, (u64, Vec<Finding>)>,
}

const CACHE_MAGIC: &str = "genlint-cache v2";

fn cache_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\t', "\\t")
}

fn cache_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c == '\\' {
            match it.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => break,
            }
        } else {
            out.push(c);
        }
    }
    out
}

impl Cache {
    fn load(path: &Path, config_fp: u64) -> Cache {
        let empty = Cache {
            config_fp,
            entries: HashMap::new(),
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return empty;
        };
        let mut lines = text.lines();
        match (lines.next(), lines.next()) {
            (Some(CACHE_MAGIC), Some(fp)) if fp.strip_prefix("config ")
                == Some(format!("{config_fp:016x}").as_str()) => {}
            _ => return empty, // wrong version or config changed: cold
        }
        let known = crate::rules::rule_names();
        let mut entries = HashMap::new();
        let mut cur: Option<(String, u64, usize)> = None;
        let mut findings: Vec<Finding> = Vec::new();
        for line in lines {
            if let Some(rest) = line.strip_prefix("file ") {
                if let Some((p, hash, _)) = cur.take() {
                    entries.insert(p, (hash, std::mem::take(&mut findings)));
                }
                // `file <hash-hex> <rel_path>`
                let mut parts = rest.splitn(2, ' ');
                let (Some(h), Some(p)) = (parts.next(), parts.next()) else {
                    return empty; // malformed: treat whole cache as cold
                };
                let Ok(hash) = u64::from_str_radix(h, 16) else {
                    return empty;
                };
                cur = Some((p.to_owned(), hash, 0));
            } else if cur.is_some() {
                // `<rule>\t<line>\t<col>\t<message>`
                let mut parts = line.splitn(4, '\t');
                let (Some(r), Some(l), Some(c), Some(m)) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    return empty;
                };
                // rule names are &'static str — resolve against the
                // registry; an unknown rule means a stale cache format
                let Some(rule) = known.iter().find(|n| **n == r) else {
                    return empty;
                };
                let (Ok(line_no), Ok(col)) = (l.parse(), c.parse()) else {
                    return empty;
                };
                findings.push(Finding {
                    rule,
                    path: cur.as_ref().expect("in file block").0.clone(),
                    line: line_no,
                    col,
                    message: cache_unescape(m),
                });
            } else {
                return empty;
            }
        }
        if let Some((p, hash, _)) = cur.take() {
            entries.insert(p, (hash, findings));
        }
        Cache { config_fp, entries }
    }

    fn save(&self, path: &Path) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{CACHE_MAGIC}");
        let _ = writeln!(out, "config {:016x}", self.config_fp);
        let mut paths: Vec<&String> = self.entries.keys().collect();
        paths.sort();
        for p in paths {
            let (hash, findings) = &self.entries[p];
            let _ = writeln!(out, "file {hash:016x} {p}");
            for f in findings {
                let _ = writeln!(
                    out,
                    "{}\t{}\t{}\t{}",
                    f.rule,
                    f.line,
                    f.col,
                    cache_escape(&f.message)
                );
            }
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, out)
    }
}

// ----------------------------------------------------------------- scan

/// One file's worth of work, done on a worker thread.
struct FileOutcome {
    idx: usize,
    file: SourceFile,
    hash: u64,
    findings: Vec<Finding>,
    cache_hit: bool,
}

/// Scan the workspace under `root` with `cfg`, applying the baseline.
/// Defaults: parallel, no cache. See [`scan_with`] for the knobs.
pub fn scan(root: &Path, cfg: &Config) -> std::io::Result<ScanResult> {
    scan_with(root, cfg, &ScanOptions::default())
}

/// Scan with explicit options.
///
/// Phase 1 (parallel): lex, parse, and run the per-file rules on every
/// `.rs` file. Workers pull file indexes off a shared atomic cursor —
/// no work-splitting heuristics, and the output order is restored by
/// index so results are deterministic regardless of thread count. When
/// a cache is configured and a file's content hash matches the cached
/// run, the cached findings are reused; the file is still parsed,
/// because phase 2 needs its item table either way (the cache trades
/// away rule evaluation, not parsing — honest but bounded).
///
/// Phase 2 (serial): the cross-file [`graph`] pass over all parsed
/// files — lock-order-graph and the workspace half of error-swallow.
/// Cross-file results are never cached: they depend on every file.
pub fn scan_with(root: &Path, cfg: &Config, opts: &ScanOptions) -> std::io::Result<ScanResult> {
    let paths = collect_rs_files(root)?;
    let mut inputs = Vec::with_capacity(paths.len());
    for path in &paths {
        let raw = std::fs::read_to_string(path)?;
        inputs.push((rel_path(root, path), raw));
    }
    let config_fp = fnv1a(format!("{cfg:?}").as_bytes());
    let cache = opts
        .cache_path
        .as_deref()
        .map(|p| Cache::load(p, config_fp));

    let jobs = if opts.jobs > 0 {
        opts.jobs
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    .min(inputs.len().max(1));

    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<FileOutcome>> = Mutex::new(Vec::with_capacity(inputs.len()));
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some((rel, raw)) = inputs.get(idx) else {
                        break;
                    };
                    let hash = fnv1a(raw.as_bytes());
                    let file = SourceFile::parse(rel, raw);
                    let cached = cache.as_ref().and_then(|c| {
                        c.entries
                            .get(rel)
                            .filter(|(h, _)| *h == hash)
                            .map(|(_, f)| f.clone())
                    });
                    let cache_hit = cached.is_some();
                    let findings = cached.unwrap_or_else(|| check_file(&file, cfg));
                    local.push(FileOutcome {
                        idx,
                        file,
                        hash,
                        findings,
                    cache_hit,
                    });
                }
                results.lock().expect("scan worker poisoned").extend(local);
            });
        }
    });
    let mut outcomes = results.into_inner().expect("scan workers done");
    outcomes.sort_by_key(|o| o.idx);

    let files_scanned = outcomes.len();
    let cache_hits = outcomes.iter().filter(|o| o.cache_hit).count();
    let mut findings: Vec<Finding> = Vec::new();
    let mut files: Vec<SourceFile> = Vec::with_capacity(outcomes.len());
    let mut cache_entries: Vec<(String, u64, Vec<Finding>)> = Vec::with_capacity(outcomes.len());
    for o in outcomes {
        findings.extend(o.findings.iter().cloned());
        cache_entries.push((o.file.rel_path.clone(), o.hash, o.findings));
        files.push(o.file);
    }
    findings.extend(crate::graph::check_workspace(&files, cfg));
    findings.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));

    // write the cache back before baseline filtering: the cache stores
    // raw per-file findings, the baseline is applied on every run
    if let Some(path) = opts.cache_path.as_deref() {
        let next = Cache {
            config_fp,
            entries: cache_entries
                .into_iter()
                .map(|(p, h, f)| (p, (h, f)))
                .collect(),
        };
        next.save(path)?;
    }

    // baseline filtering: an [[allow]] entry suppresses findings of its
    // rule under its path prefix; entries that match nothing are errors
    // so the baseline can only shrink.
    let mut suppressed = 0usize;
    let mut used = vec![false; cfg.allow.len()];
    let mut kept = Vec::new();
    for f in findings {
        let hit = cfg.allow.iter().position(|a| {
            a.rule == f.rule
                && (f.path == a.path
                    || f.path
                        .strip_prefix(&a.path)
                        .map(|rest| rest.starts_with('/'))
                        .unwrap_or(false))
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    for (i, a) in cfg.allow.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                rule: "stale-allow",
                path: a.path.clone(),
                line: 0,
                col: 0,
                message: format!(
                    "[[allow]] entry (rule `{}`) suppresses nothing — the violation was fixed; \
                     remove the entry from genlint.toml",
                    a.rule
                ),
            });
        }
    }
    Ok(ScanResult {
        findings: kept,
        suppressed,
        files_scanned,
        cache_hits,
    })
}

/// Parse the workspace and render the observed lock acquisition graph
/// (the `--lock-graph` CLI surface).
pub fn lock_graph(root: &Path, cfg: &Config) -> std::io::Result<String> {
    let paths = collect_rs_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let raw = std::fs::read_to_string(path)?;
        files.push(SourceFile::parse(&rel_path(root, path), &raw));
    }
    let analysis = crate::graph::analyze(&files, cfg);
    Ok(crate::graph::render_graph(&analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowEntry;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            col: 1,
            message: "m".into(),
        }
    }

    fn filter(findings: Vec<Finding>, allow: Vec<AllowEntry>) -> (Vec<Finding>, usize) {
        // run the baseline logic via a temp-dir-free path: inline copy of
        // the filtering loop is not exposed, so exercise it through scan()
        // on a scratch directory.
        let dir = std::env::temp_dir().join(format!("genlint-filter-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        // materialize one file per finding that triggers vfs-bypass
        for f in &findings {
            let p = dir.join(&f.path);
            std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
            std::fs::write(&p, "fn f() { std::fs::write(p, d); }\n").expect("write");
        }
        let cfg = Config {
            allow,
            ..Config::default()
        };
        let result = scan(&dir, &cfg).expect("scan");
        let _ = std::fs::remove_dir_all(&dir);
        (result.findings, result.suppressed)
    }

    #[test]
    fn allow_entries_suppress_by_prefix_and_stale_entries_err() {
        let (kept, suppressed) = filter(
            vec![finding("vfs-bypass", "crates/a/src/x.rs")],
            vec![AllowEntry {
                rule: "vfs-bypass".into(),
                path: "crates/a".into(),
                reason: "r".into(),
            }],
        );
        assert_eq!(suppressed, 1);
        assert!(kept.is_empty(), "{kept:?}");

        let (kept, suppressed) = filter(
            vec![finding("vfs-bypass", "crates/a/src/x.rs")],
            vec![AllowEntry {
                rule: "vfs-bypass".into(),
                path: "crates/b".into(),
                reason: "r".into(),
            }],
        );
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 2, "original finding plus stale-allow: {kept:?}");
        assert!(kept.iter().any(|f| f.rule == "stale-allow"));
    }

    #[test]
    fn prefix_match_requires_component_boundary() {
        // "crates/a" must not cover "crates/ab/..."
        let (kept, suppressed) = filter(
            vec![finding("vfs-bypass", "crates/ab/src/x.rs")],
            vec![AllowEntry {
                rule: "vfs-bypass".into(),
                path: "crates/a".into(),
                reason: "r".into(),
            }],
        );
        assert_eq!(suppressed, 0);
        assert!(kept.iter().any(|f| f.path == "crates/ab/src/x.rs"));
    }

    #[test]
    fn walker_skips_target_git_and_hidden() {
        let dir = std::env::temp_dir().join(format!("genlint-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for sub in ["src", "target/debug", ".git", "scripts", "tests/fixtures"] {
            std::fs::create_dir_all(dir.join(sub)).expect("mkdir");
        }
        for f in [
            "src/a.rs",
            "target/debug/b.rs",
            ".git/c.rs",
            "scripts/d.rs",
            "tests/fixtures/e.rs",
            "src/nope.txt",
        ] {
            std::fs::write(dir.join(f), "fn f() {}\n").expect("write");
        }
        let files = collect_rs_files(&dir).expect("walk");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(files.len(), 1, "{files:?}");
        assert!(files[0].ends_with("src/a.rs"));
    }

    #[test]
    fn parallel_and_serial_scans_agree() {
        let dir = std::env::temp_dir().join(format!("genlint-par-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/x/src")).expect("mkdir");
        for i in 0..8 {
            std::fs::write(
                dir.join(format!("crates/x/src/f{i}.rs")),
                "fn f() { std::fs::write(p, d); }\n",
            )
            .expect("write");
        }
        let cfg = Config::default();
        let serial = scan_with(
            &dir,
            &cfg,
            &ScanOptions {
                jobs: 1,
                cache_path: None,
            },
        )
        .expect("serial");
        let parallel = scan_with(
            &dir,
            &cfg,
            &ScanOptions {
                jobs: 4,
                cache_path: None,
            },
        )
        .expect("parallel");
        let _ = std::fs::remove_dir_all(&dir);
        let key = |r: &ScanResult| {
            r.findings
                .iter()
                .map(|f| (f.path.clone(), f.line, f.col, f.rule, f.message.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&serial), key(&parallel));
        assert_eq!(serial.files_scanned, 8);
    }

    #[test]
    fn cache_round_trips_and_invalidates_on_edit_and_config_change() {
        let dir = std::env::temp_dir().join(format!("genlint-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/x/src")).expect("mkdir");
        let f0 = dir.join("crates/x/src/a.rs");
        std::fs::write(&f0, "fn f() { std::fs::write(p, d); }\n").expect("write");
        let cache = dir.join("cache.txt");
        let opts = ScanOptions {
            jobs: 1,
            cache_path: Some(cache.clone()),
        };
        let cfg = Config::default();
        let cold = scan_with(&dir, &cfg, &opts).expect("cold");
        assert_eq!(cold.cache_hits, 0);
        let warm = scan_with(&dir, &cfg, &opts).expect("warm");
        assert_eq!(warm.cache_hits, warm.files_scanned);
        let key = |r: &ScanResult| {
            r.findings
                .iter()
                .map(|f| (f.path.clone(), f.line, f.col, f.rule, f.message.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&cold), key(&warm), "cache must not change results");
        // edit the file: its entry goes cold
        std::fs::write(&f0, "fn g() { std::fs::write(p, d); }\n").expect("rewrite");
        let edited = scan_with(&dir, &cfg, &opts).expect("edited");
        assert_eq!(edited.cache_hits, 0);
        // change the config: the whole cache goes cold
        let cfg2 = Config {
            no_panic_crates: vec!["x".into()],
            ..Config::default()
        };
        let reconf = scan_with(&dir, &cfg2, &opts).expect("reconf");
        assert_eq!(reconf.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_escape_round_trips() {
        for s in ["plain", "a\nb", "a\tb", "back\\slash", "\\n literal"] {
            assert_eq!(cache_unescape(&cache_escape(s)), s, "{s:?}");
        }
    }
}
