//! Cost-based planning for mapping-algebra pipelines (DESIGN.md §14).
//!
//! Caller-order execution treats a Compose chain or a view's per-target
//! pipelines as a fixed program. This module treats them as a *query*: every
//! [`MappingIndex`] carries [`IndexStats`] collected at build time, the
//! [`cost`] model turns those stats into cardinality estimates and a join
//! strategy per Compose, and a small set of rewrite rules reshape the chain
//! before execution:
//!
//! * **floor pushdown** — an evidence floor on the chain result is applied
//!   to every step up front when all step evidences lie in `[0, 1]`
//!   (products of such scores only shrink, so a step association below the
//!   floor can never contribute a surviving result);
//! * **fact-chain reordering** — chains of 3+ all-fact steps are joined
//!   greedily by smallest estimated intermediate cardinality (fact ∘ fact
//!   carries no float product, so association is exact);
//! * **shared prefixes** — path prefixes occurring in several of a view's
//!   targets are composed once and memoized ([`ViewContext`]).
//!
//! Everything the planner does is **bit-identical** to naive caller-order
//! execution (`ExecConfig::with_plan(false)`), pinned by
//! `tests/plan_prop.rs`: rewrites outside the gates above are not taken,
//! and every join strategy emits the same association multiset into the
//! same canonical dedup. [`ExplainNode`] surfaces the chosen plan with
//! estimated vs actual cardinalities for the CLI/serve `explain` verbs.

use crate::compose::{compose_idx, compose_idx_with_threshold, fold_chain_idx};
use crate::exec::ExecConfig;
use crate::simple::map_index;
use crate::view::{IndexResolver, ViewQuery};
use gam::{GamError, GamRead, GamResult, MappingIndex, ObjectId, RelType, SourceId};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// The cost model: the constants table and the formulas that pick a join
/// strategy per Compose from the two operands' [`IndexStats`].
pub mod cost {
    use crate::exec::ExecConfig;
    use gam::IndexStats;

    /// Key-count ratio above which the sorted merge join advances the
    /// cursor on the larger key array by exponential (galloping) search
    /// instead of stepping. One sided: each side is checked against the
    /// other independently. Formerly hardcoded in `compose.rs`.
    pub const GALLOP_RATIO: usize = 16;

    /// Probe-side size (in associations) below which a join is not worth
    /// parallelizing: thread spawn overhead dominates the join itself.
    /// Formerly hardcoded in `exec.rs`; `ExecConfig::default()` carries it
    /// as `parallel_threshold`.
    pub const PARALLEL_THRESHOLD: usize = 8_192;

    /// Per-side galloping decision for a merge join over `left_keys` vs
    /// `right_keys` distinct join keys.
    pub fn gallop_flags(left_keys: usize, right_keys: usize) -> (bool, bool) {
        (
            left_keys > right_keys.saturating_mul(GALLOP_RATIO),
            right_keys > left_keys.saturating_mul(GALLOP_RATIO),
        )
    }

    /// Estimated output cardinality of `left ∘ right`: the number of
    /// joinable mid keys times the average fanout on each side of the join
    /// — i.e. uniform-fanout independence, the classic textbook estimate.
    /// Deliberately cheap: all four inputs are O(1) reads off the stats.
    pub fn estimate_join(left: &IndexStats, right: &IndexStats) -> f64 {
        let mids = left.range_keys.min(right.domain_keys) as f64;
        mids * left.avg_inv_fanout() * right.avg_fwd_fanout()
    }

    /// Physical strategy for one Compose. All three produce the same
    /// association multiset (and therefore, through the canonical dedup,
    /// bit-identical indexes) — the choice is purely about speed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum JoinStrategy {
        /// Sorted merge over the two key arrays, stepping both cursors.
        Merge,
        /// Merge with exponential search on the flagged side(s) — wins
        /// when one key array is ≥ [`GALLOP_RATIO`]× the other.
        Gallop { left: bool, right: bool },
        /// Partitioned hash probe across `jobs` scoped threads.
        Hash { jobs: usize },
    }

    impl JoinStrategy {
        /// Short label for explain output and harness counters.
        pub fn label(&self) -> &'static str {
            match self {
                JoinStrategy::Merge => "merge",
                JoinStrategy::Gallop { .. } => "gallop",
                JoinStrategy::Hash { .. } => "hash",
            }
        }
    }

    /// Pick the strategy for `left ∘ right` from stats: hash when the
    /// probe side or the estimated output clears the parallel threshold
    /// and there are partitions to hand out; galloping merge on heavy key
    /// skew; plain merge otherwise. Replaces the fixed
    /// `effective_jobs(probe_len)` heuristic.
    pub fn choose_strategy(left: &IndexStats, right: &IndexStats, cfg: &ExecConfig) -> JoinStrategy {
        let work = (left.len as f64).max(estimate_join(left, right));
        if cfg.jobs > 1 && work >= cfg.parallel_threshold as f64 {
            let jobs = cfg.jobs.min(left.domain_keys.max(1)).min(left.len.max(1));
            if jobs > 1 {
                return JoinStrategy::Hash { jobs };
            }
        }
        let (gl, gr) = gallop_flags(left.range_keys, right.domain_keys);
        if gl || gr {
            JoinStrategy::Gallop { left: gl, right: gr }
        } else {
            JoinStrategy::Merge
        }
    }
}

/// One node of an explain tree: what ran, what the cost model predicted,
/// and what actually came out of the one-shot instrumented run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainNode {
    /// Human-readable operator label, e.g. `compose 1→5`.
    pub label: String,
    /// Join strategy chosen by the cost model, when the node is a join.
    pub strategy: Option<&'static str>,
    /// Estimated output cardinality, when the cost model produced one.
    pub estimated: Option<u64>,
    /// Actual output cardinality observed during execution.
    pub actual: Option<u64>,
    /// Input plans, in execution order.
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    fn leaf(label: String, actual: usize) -> ExplainNode {
        ExplainNode {
            label,
            strategy: None,
            estimated: None,
            actual: Some(actual as u64),
            children: Vec::new(),
        }
    }

    /// Render the tree as an indented text plan, one node per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.label);
        if let Some(s) = self.strategy {
            out.push_str(" [");
            out.push_str(s);
            out.push(']');
        }
        if let Some(e) = self.estimated {
            out.push_str(&format!(" est≈{e}"));
        }
        if let Some(a) = self.actual {
            out.push_str(&format!(" actual={a}"));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(depth + 1, out);
        }
    }
}

/// Planning context shared across one view's targets: which path prefixes
/// occur in more than one target (and are therefore worth computing once),
/// plus the memo of already-composed prefixes. Memoized entries are
/// un-floored, so the memo is only consulted for floor-free chains.
pub struct ViewContext {
    /// Prefixes (length ≥ 2 sources) appearing in ≥ 2 target paths.
    shared: BTreeSet<Vec<SourceId>>,
    memo: Mutex<HashMap<Vec<SourceId>, Arc<MappingIndex>>>,
}

impl ViewContext {
    /// Scan a view query's explicit target paths for shared prefixes.
    pub fn new(query: &ViewQuery) -> ViewContext {
        let mut counts: HashMap<Vec<SourceId>, usize> = HashMap::new();
        for spec in &query.targets {
            if let Some(p) = &spec.path {
                for k in 2..=p.len() {
                    *counts.entry(p[..k].to_vec()).or_insert(0) += 1;
                }
            }
        }
        ViewContext {
            shared: counts
                .into_iter()
                .filter(|(_, n)| *n >= 2)
                .map(|(p, _)| p)
                .collect(),
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// Whether any prefix of `path` (including the full path) is shared
    /// with another target. Shared chains stay in caller order so every
    /// target folding through the prefix sees the identical parenthesization.
    fn is_shared_chain(&self, path: &[SourceId]) -> bool {
        (2..=path.len()).any(|k| self.shared.contains(&path[..k]))
    }

    /// Longest memoized prefix of `path`, as (sources covered, index).
    fn lookup_longest(&self, path: &[SourceId]) -> Option<(usize, Arc<MappingIndex>)> {
        let memo = self.memo.lock().unwrap_or_else(|p| p.into_inner());
        (2..=path.len())
            .rev()
            .find_map(|k| memo.get(&path[..k]).map(|idx| (k, Arc::clone(idx))))
    }

    /// Memoize `idx` for `prefix` if that prefix is shared. First insert
    /// wins; all inserts for a prefix are bit-identical anyway.
    fn store(&self, prefix: &[SourceId], idx: &Arc<MappingIndex>) {
        if self.shared.contains(prefix) {
            let mut memo = self.memo.lock().unwrap_or_else(|p| p.into_inner());
            memo.entry(prefix.to_vec()).or_insert_with(|| Arc::clone(idx));
        }
    }
}

/// Plan and execute a Compose chain over `path`, with an optional evidence
/// floor. This is the planner seam: `compose_path_idx*` and
/// `generate_view_idx` route here when `cfg.plan`, and the result is
/// bit-identical to their naive caller-order folds.
pub fn plan_chain(
    store: &dyn GamRead,
    path: &[SourceId],
    floor: Option<f64>,
    cfg: &ExecConfig,
    ctx: Option<&ViewContext>,
) -> GamResult<Arc<MappingIndex>> {
    plan_chain_inner(store, path, floor, cfg, ctx, false).map(|(idx, _)| idx)
}

/// [`plan_chain`] with the explain tree of the plan it actually ran.
pub fn plan_chain_explain(
    store: &dyn GamRead,
    path: &[SourceId],
    floor: Option<f64>,
    cfg: &ExecConfig,
    ctx: Option<&ViewContext>,
) -> GamResult<(Arc<MappingIndex>, ExplainNode)> {
    let (idx, node) = plan_chain_inner(store, path, floor, cfg, ctx, true)?;
    let node = node.unwrap_or_else(|| ExplainNode::leaf("chain".into(), idx.len()));
    Ok((idx, node))
}

/// Resolve `from → to`: direct mapping when one exists, otherwise a planned
/// Compose chain over `path`. Mirrors `simple::map_or_compose_idx`'s
/// direct-map-first semantics exactly.
pub fn resolve_path_idx(
    store: &dyn GamRead,
    from: SourceId,
    to: SourceId,
    path: &[SourceId],
    cfg: &ExecConfig,
    ctx: Option<&ViewContext>,
) -> GamResult<Arc<MappingIndex>> {
    match map_index(store, from, to) {
        Ok(m) => Ok(Arc::new(m)),
        Err(GamError::NoMapping { .. }) => plan_chain(store, path, None, cfg, ctx),
        Err(e) => Err(e),
    }
}

fn empty_chain(path: &[SourceId]) -> MappingIndex {
    let last = path.last().copied().unwrap_or(path[0]);
    MappingIndex::empty(path[0], last, RelType::Composed)
}

fn compose_step(
    left: &MappingIndex,
    right: &MappingIndex,
    floor: Option<f64>,
    cfg: &ExecConfig,
) -> GamResult<MappingIndex> {
    match floor {
        Some(f) => compose_idx_with_threshold(left, right, f, cfg),
        None => compose_idx(left, right, cfg),
    }
}

fn join_node(
    left: ExplainNode,
    right: ExplainNode,
    l: &MappingIndex,
    r: &MappingIndex,
    out: &MappingIndex,
    cfg: &ExecConfig,
) -> ExplainNode {
    let est = cost::estimate_join(l.stats(), r.stats());
    ExplainNode {
        label: format!("compose S{}→S{}", l.from.raw(), r.to.raw()),
        strategy: Some(cost::choose_strategy(l.stats(), r.stats(), cfg).label()),
        estimated: Some(est.round() as u64),
        actual: Some(out.len() as u64),
        children: vec![left, right],
    }
}

fn plan_chain_inner(
    store: &dyn GamRead,
    path: &[SourceId],
    floor: Option<f64>,
    cfg: &ExecConfig,
    ctx: Option<&ViewContext>,
    traced: bool,
) -> GamResult<(Arc<MappingIndex>, Option<ExplainNode>)> {
    // Validation order matches the naive entry points: floor first
    // (compose_path_idx_with_threshold), then the length check.
    if let Some(f) = floor {
        if !(0.0..=1.0).contains(&f) || f.is_nan() {
            return Err(GamError::BadEvidence(f));
        }
    }
    if path.len() < 2 {
        return Err(GamError::Invalid(
            "compose path needs at least two sources".into(),
        ));
    }
    if path.len() == 2 {
        // Single hop: no join to plan. Identical to the naive fold's
        // degenerate case (load, optionally prefilter, no fixups needed).
        let mut acc = map_index(store, path[0], path[1])?;
        if let Some(f) = floor {
            acc = acc.filter_evidence(f);
        }
        let node = traced.then(|| {
            ExplainNode::leaf(format!("map S{}→S{}", path[0].raw(), path[1].raw()), acc.len())
        });
        return Ok((Arc::new(acc), node));
    }

    // The memo holds un-floored prefixes only; a floored chain must not
    // consume them (and in practice never has a ctx — views apply floors
    // at projection, not inside the chain).
    let memo_ctx = if floor.is_none() { ctx } else { None };
    let (mut consumed, acc): (usize, Option<Arc<MappingIndex>>) = memo_ctx
        .and_then(|c| c.lookup_longest(path))
        .map(|(k, idx)| (k, Some(idx)))
        .unwrap_or((1, None));

    // Load the remaining steps eagerly — the rewrites below need all the
    // stats up front. If any step fails to load, fall back to the naive
    // lazy fold: it reproduces the exact error-or-early-empty behaviour
    // (a chain that empties before a missing step never observes it).
    let mut steps: Vec<MappingIndex> = Vec::with_capacity(path.len() - consumed);
    for w in path[consumed - 1..].windows(2) {
        match map_index(store, w[0], w[1]) {
            Ok(m) => steps.push(m),
            Err(_) => {
                let idx = fold_chain_idx(store, path, floor, cfg)?;
                let node = traced
                    .then(|| ExplainNode::leaf("naive fold (step load failed)".into(), idx.len()));
                return Ok((Arc::new(idx), node));
            }
        }
    }

    // Rewrite: push the evidence floor beneath every Compose. Sound when
    // all step evidences lie in [0, 1]: products only shrink, so a step
    // association below the floor cannot survive in any result. Otherwise
    // keep the naive shape (prefilter the first step only).
    let mut pushed_down = false;
    if let Some(f) = floor {
        let safe = steps
            .iter()
            .all(|s| s.stats().max_effective <= 1.0 && s.stats().min_effective >= 0.0);
        if safe {
            for s in &mut steps {
                *s = s.filter_evidence(f);
            }
            pushed_down = true;
        } else {
            steps[0] = steps[0].filter_evidence(f);
        }
    }

    // An empty step empties the whole chain — exactly the naive fold's
    // early break, which also yields an empty Composed index path[0]→last.
    if acc.as_deref().is_some_and(MappingIndex::is_empty)
        || steps.iter().any(MappingIndex::is_empty)
    {
        let empty = empty_chain(path);
        let node = traced.then(|| ExplainNode::leaf("empty chain".into(), 0));
        return Ok((Arc::new(empty), node));
    }

    let step_label = |s: &MappingIndex| {
        let floor_tag = match floor {
            Some(f) if pushed_down => format!(" [floor≥{f}]"),
            _ => String::new(),
        };
        ExplainNode::leaf(format!("map S{}→S{}{}", s.from.raw(), s.to.raw(), floor_tag), s.len())
    };

    // Rewrite: greedy reordering by estimated intermediate cardinality.
    // Gated to all-fact chains (fact ∘ fact carries no float product, so
    // association order is exact) that no other target shares a prefix
    // with (shared chains must keep the caller-order parenthesization the
    // memo entries were built with).
    let reorder = acc.is_none()
        && steps.len() >= 3
        && steps.iter().all(|s| s.stats().scored == 0)
        && memo_ctx.is_none_or(|c| !c.is_shared_chain(path));

    if reorder {
        let mut nodes: Option<Vec<ExplainNode>> =
            traced.then(|| steps.iter().map(step_label).collect());
        let mut items = steps;
        while items.len() > 1 {
            let mut best = 0;
            let mut best_est = f64::INFINITY;
            for i in 0..items.len() - 1 {
                let est = cost::estimate_join(items[i].stats(), items[i + 1].stats());
                if est < best_est {
                    best_est = est;
                    best = i;
                }
            }
            let right = items.remove(best + 1);
            let joined = compose_step(&items[best], &right, floor, cfg)?;
            if let Some(ns) = &mut nodes {
                let rn = ns.remove(best + 1);
                let ln = std::mem::replace(&mut ns[best], ExplainNode::leaf(String::new(), 0));
                ns[best] = join_node(ln, rn, &items[best], &right, &joined, cfg);
            }
            items[best] = joined;
            if items[best].is_empty() {
                // Relation emptiness is order-independent: the naive fold
                // ends empty too, with the same canonical empty index.
                let node = traced.then(|| ExplainNode::leaf("empty chain".into(), 0));
                return Ok((Arc::new(empty_chain(path)), node));
            }
        }
        let mut result = items.swap_remove(0);
        result.from = path[0];
        if let Some(&last) = path.last() {
            result.to = last;
        }
        result.rel_type = RelType::Composed;
        let node = nodes.and_then(|mut ns| (!ns.is_empty()).then(|| ns.swap_remove(0)));
        return Ok((Arc::new(result), node));
    }

    // Left fold — the naive association order — with shared-prefix
    // memoization. A memo hit or miss yields bit-identical results, so the
    // Mutex's scheduling nondeterminism cannot leak into output.
    let mut steps = steps.into_iter();
    let (mut acc_arc, mut node) = match acc {
        Some(idx) => {
            let n = traced.then(|| {
                ExplainNode::leaf(
                    format!("shared prefix S{}→S{} (memo)", path[0].raw(), idx.to.raw()),
                    idx.len(),
                )
            });
            (idx, n)
        }
        None => match steps.next() {
            Some(first) => {
                // the accumulator now covers two sources; `consumed`
                // must track coverage or the memo keys shift by one hop
                consumed = 2;
                let n = traced.then(|| step_label(&first));
                let arc = Arc::new(first);
                if let Some(c) = memo_ctx {
                    c.store(&path[..2], &arc);
                }
                (arc, n)
            }
            None => {
                // Unreachable: len ≥ 3 with consumed = 1 loads ≥ 2 steps.
                return Ok((Arc::new(empty_chain(path)), None));
            }
        },
    };
    for step in steps {
        let joined = compose_step(&acc_arc, &step, floor, cfg)?;
        consumed += 1;
        if traced {
            let sn = step_label(&step);
            let ln = node.take().unwrap_or_else(|| ExplainNode::leaf(String::new(), 0));
            node = Some(join_node(ln, sn, &acc_arc, &step, &joined, cfg));
        }
        if joined.is_empty() {
            let n = traced.then(|| ExplainNode::leaf("empty chain".into(), 0));
            return Ok((Arc::new(empty_chain(path)), n));
        }
        acc_arc = Arc::new(joined);
        if let Some(c) = memo_ctx {
            c.store(&path[..consumed], &acc_arc);
        }
    }

    // Endpoint fixups, mirroring the naive fold's. In-place when the Arc
    // is unshared; a memoized full-path hit already carries them.
    let last = path.last().copied().unwrap_or(path[0]);
    if acc_arc.from != path[0] || acc_arc.to != last || acc_arc.rel_type != RelType::Composed {
        let mut owned = Arc::try_unwrap(acc_arc).unwrap_or_else(|a| (*a).clone());
        owned.from = path[0];
        owned.to = last;
        owned.rel_type = RelType::Composed;
        acc_arc = Arc::new(owned);
    }
    Ok((acc_arc, node))
}

/// Explain a whole view query: plan and execute every target's pipeline
/// (one-shot, uncached, instrumented) and fold the columns, returning the
/// plan tree with estimated vs actual cardinalities. The execution mirrors
/// `generate_view_idx` exactly — same planner, same projection, same fold.
pub fn explain_view(
    store: &dyn GamRead,
    query: &ViewQuery,
    resolver: &dyn IndexResolver,
    cfg: &ExecConfig,
) -> GamResult<ExplainNode> {
    let s: BTreeSet<ObjectId> = match &query.objects {
        Some(set) => set.clone(),
        None => store.object_ids_of(query.source)?.into_iter().collect(),
    };
    let ctx = ViewContext::new(query);
    let mut children = Vec::with_capacity(query.targets.len());
    let mut columns = Vec::with_capacity(query.targets.len());
    for spec in &query.targets {
        let (mi, chain) = match &spec.path {
            Some(path) => match map_index(store, query.source, spec.target) {
                Ok(m) => {
                    let node =
                        ExplainNode::leaf(format!("map S{}→S{}", query.source.raw(), spec.target.raw()), m.len());
                    (Arc::new(m), node)
                }
                Err(GamError::NoMapping { .. }) => {
                    let (mi, node) = plan_chain_inner(store, path, None, cfg, Some(&ctx), true)?;
                    let node = node
                        .unwrap_or_else(|| ExplainNode::leaf("chain".into(), mi.len()));
                    (mi, node)
                }
                Err(e) => return Err(e),
            },
            None => {
                let mi = resolver.resolve_index(store, query.source, spec.target)?;
                let node = ExplainNode::leaf(
                    format!("map S{}→S{} (resolver)", query.source.raw(), spec.target.raw()),
                    mi.len(),
                );
                (mi, node)
            }
        };
        // Column estimate: covered source objects × average fanout.
        let st = mi.stats();
        let est = (s.len().min(st.domain_keys) as f64 * st.avg_fwd_fanout()).round() as u64;
        let column = crate::view::project_target_column(&mi, spec, &s)?;
        let mut tags = Vec::new();
        if spec.negated {
            tags.push("NOT".to_string());
        }
        if let Some(f) = spec.min_evidence {
            tags.push(format!("floor≥{f}"));
        }
        let tag = if tags.is_empty() {
            String::new()
        } else {
            format!(" [{}]", tags.join(", "))
        };
        children.push(ExplainNode {
            label: format!("target S{}{}", spec.target.raw(), tag),
            strategy: None,
            estimated: Some(est),
            actual: Some(column.values.len() as u64),
            children: vec![chain],
        });
        columns.push(Ok(column));
    }
    let view = crate::view::fold_columns(&s, columns, query)?;
    let combine = match query.combine {
        crate::view::Combine::And => "AND",
        crate::view::Combine::Or => "OR",
    };
    Ok(ExplainNode {
        label: format!(
            "generate-view {} S{} over {} objects",
            combine,
            query.source.raw(),
            s.len()
        ),
        strategy: None,
        estimated: None,
        actual: Some(view.rows.len() as u64),
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::IndexStats;

    fn stats(len: usize, domain: usize, range: usize) -> IndexStats {
        IndexStats {
            len,
            domain_keys: domain,
            range_keys: range,
            max_fwd_fanout: if domain == 0 { 0 } else { len.div_ceil(domain) },
            max_inv_fanout: if range == 0 { 0 } else { len.div_ceil(range) },
            scored: 0,
            max_effective: 1.0,
            min_effective: 1.0,
        }
    }

    #[test]
    fn estimate_join_is_mid_keys_times_fanouts() {
        // 10 assocs over 5 range keys (inv fanout 2) ∘ 12 assocs over
        // 4 domain keys (fwd fanout 3): 4 joinable mids × 2 × 3 = 24.
        let l = stats(10, 10, 5);
        let r = stats(12, 4, 6);
        assert_eq!(cost::estimate_join(&l, &r), 24.0);
        // No joinable keys → zero estimate.
        let none = stats(0, 0, 0);
        assert_eq!(cost::estimate_join(&l, &none), 0.0);
    }

    #[test]
    fn choose_strategy_covers_all_three_arms() {
        let seq = ExecConfig::sequential();
        let par = ExecConfig {
            jobs: 4,
            parallel_threshold: 100,
            plan: true,
        };
        // Balanced small inputs merge.
        let a = stats(50, 50, 50);
        assert_eq!(cost::choose_strategy(&a, &a, &seq), cost::JoinStrategy::Merge);
        // 17× key skew gallops on the wide side.
        let wide = stats(1700, 1700, 1700);
        let narrow = stats(100, 100, 100);
        assert_eq!(
            cost::choose_strategy(&wide, &narrow, &seq),
            cost::JoinStrategy::Gallop {
                left: true,
                right: false
            }
        );
        assert_eq!(
            cost::choose_strategy(&narrow, &wide, &seq),
            cost::JoinStrategy::Gallop {
                left: false,
                right: true
            }
        );
        // Big probe side with jobs available hashes.
        let big = stats(10_000, 5_000, 5_000);
        assert_eq!(
            cost::choose_strategy(&big, &big, &par),
            cost::JoinStrategy::Hash { jobs: 4 }
        );
        // ... but never with more partitions than domain keys.
        let two_keys = stats(10_000, 2, 2);
        assert_eq!(
            cost::choose_strategy(&two_keys, &big, &par),
            cost::JoinStrategy::Hash { jobs: 2 }
        );
        // Sequential config never hashes, whatever the size.
        assert_ne!(
            cost::choose_strategy(&big, &big, &seq),
            cost::JoinStrategy::Hash { jobs: 1 }
        );
    }

    #[test]
    fn gallop_flags_trip_at_the_documented_ratio() {
        assert_eq!(cost::gallop_flags(160, 10), (false, false)); // exactly 16× — not yet
        assert_eq!(cost::gallop_flags(161, 10), (true, false));
        assert_eq!(cost::gallop_flags(10, 161), (false, true));
        assert_eq!(cost::gallop_flags(0, 0), (false, false));
    }

    #[test]
    fn explain_render_indents_children() {
        let tree = ExplainNode {
            label: "compose 1→3".into(),
            strategy: Some("merge"),
            estimated: Some(12),
            actual: Some(9),
            children: vec![
                ExplainNode::leaf("map 1→2".into(), 4),
                ExplainNode::leaf("map 2→3".into(), 6),
            ],
        };
        let text = tree.render();
        assert_eq!(
            text,
            "compose 1→3 [merge] est≈12 actual=9\n  map 1→2 actual=4\n  map 2→3 actual=6\n"
        );
    }

    #[test]
    fn view_context_finds_shared_prefixes() {
        use crate::view::{TargetSpec, ViewQuery};
        use gam::SourceId;
        let s = |n: u32| SourceId(n);
        let q = ViewQuery::new(s(1))
            .target(TargetSpec::all(s(4)).via(vec![s(1), s(2), s(3), s(4)]))
            .target(TargetSpec::all(s(5)).via(vec![s(1), s(2), s(3), s(5)]))
            .target(TargetSpec::all(s(9)).via(vec![s(1), s(8), s(9)]));
        let ctx = ViewContext::new(&q);
        assert!(ctx.shared.contains(&vec![s(1), s(2)]));
        assert!(ctx.shared.contains(&vec![s(1), s(2), s(3)]));
        assert!(!ctx.shared.contains(&vec![s(1), s(8)]));
        assert!(ctx.is_shared_chain(&[s(1), s(2), s(3), s(4)]));
        assert!(!ctx.is_shared_chain(&[s(1), s(8), s(9)]));
        // Memo: store only accepts shared prefixes; lookup returns longest.
        let idx = Arc::new(MappingIndex::empty(s(1), s(2), gam::RelType::Fact));
        ctx.store(&[s(1), s(8)], &idx);
        assert!(ctx.lookup_longest(&[s(1), s(8), s(9)]).is_none());
        ctx.store(&[s(1), s(2)], &idx);
        let (k, _) = ctx
            .lookup_longest(&[s(1), s(2), s(3), s(4)])
            .expect("shared prefix memoized");
        assert_eq!(k, 2);
    }

    /// Regression: the fold used to store the (k+1)-source composite
    /// under the k-source memo key, so a second target sharing the
    /// prefix read a chain one hop too long — its column showed objects
    /// of the *next* source on the path.
    #[test]
    fn memo_keys_track_source_coverage() {
        use crate::view::{TargetSpec, ViewQuery};
        use gam::model::{SourceContent, SourceStructure};
        use gam::GamStore;

        let mut store = GamStore::in_memory().expect("store");
        let mut ids = Vec::new();
        let mut objs = Vec::new();
        for i in 0..4 {
            let s = store
                .create_source(
                    &format!("S{i}"),
                    SourceContent::Other,
                    SourceStructure::Flat,
                    None,
                )
                .expect("source")
                .id;
            ids.push(s);
            objs.push(
                (0..3)
                    .map(|j| {
                        store
                            .create_object(s, &format!("s{i}o{j}"), None, None)
                            .expect("object")
                    })
                    .collect::<Vec<_>>(),
            );
        }
        for h in 0..3 {
            let rel = store
                .create_source_rel(ids[h], ids[h + 1], RelType::Similarity, None)
                .expect("rel");
            let diag: Vec<_> = objs[h].iter().copied().zip(objs[h + 1].iter().copied()).collect();
            for (a, b) in diag {
                store.add_association(rel, a, b, None).expect("assoc");
            }
        }

        let q = ViewQuery::new(ids[0])
            .target(TargetSpec::all(ids[3]).via(ids.clone()))
            .target(TargetSpec::all(ids[2]).via(ids[..3].to_vec()));
        let ctx = ViewContext::new(&q);
        let cfg = ExecConfig::sequential();
        // the deep chain populates the memo; the mid chain then consumes it
        let deep = plan_chain(&store, &ids, None, &cfg, Some(&ctx)).expect("deep");
        assert_eq!((deep.from, deep.to), (ids[0], ids[3]));
        let mid_memo = plan_chain(&store, &ids[..3], None, &cfg, Some(&ctx)).expect("mid");
        let mid_fresh = plan_chain(&store, &ids[..3], None, &cfg, None).expect("fresh");
        assert_eq!((mid_memo.from, mid_memo.to), (ids[0], ids[2]));
        let pairs = |m: &MappingIndex| {
            m.to_mapping()
                .pairs
                .iter()
                .map(|a| (a.from, a.to, a.evidence.map(f64::to_bits)))
                .collect::<Vec<_>>()
        };
        assert_eq!(pairs(&mid_memo), pairs(&mid_fresh));
        // the memoized column must contain S2 objects, not S3's
        assert!(mid_memo
            .to_mapping()
            .pairs
            .iter()
            .all(|a| objs[2].contains(&a.to)));
    }
}
