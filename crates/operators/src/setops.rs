//! Set operations on mappings.
//!
//! The paper's queries combine mappings with AND/OR/NOT inside
//! `GenerateView`; the same logic is useful at the mapping level when
//! curating derived mappings — e.g. intersecting a computed Similarity
//! mapping with a curated Fact mapping to keep only confirmed links, or
//! diffing two releases of the same cross-reference set.

use gam::mapping::Association;
use gam::{GamError, GamResult, Mapping, ObjectId};

fn check_compatible(a: &Mapping, b: &Mapping) -> GamResult<()> {
    if a.from != b.from || a.to != b.to {
        return Err(GamError::Invalid(format!(
            "set operation on incompatible mappings ({}->{} vs {}->{})",
            a.from, a.to, b.from, b.to
        )));
    }
    Ok(())
}

/// Sorted lookup array over a mapping's pairs: one flat allocation with
/// binary-search probes, instead of a node-per-pair `BTreeMap`. Duplicate
/// pairs keep the *last* occurrence, matching the overwrite semantics of
/// the map-insertion index it replaces.
fn pair_index(m: &Mapping) -> Vec<((ObjectId, ObjectId), Option<f64>)> {
    let mut index: Vec<((ObjectId, ObjectId), Option<f64>)> = m
        .pairs
        .iter()
        .map(|a| ((a.from, a.to), a.evidence))
        .collect();
    // stable sort preserves input order among duplicates, so keeping the
    // later of two adjacent equal keys keeps the last occurrence overall
    index.sort_by_key(|&(key, _)| key);
    let mut len = 0;
    for i in 0..index.len() {
        if len > 0 && index[len - 1].0 == index[i].0 {
            index[len - 1] = index[i];
        } else {
            index[len] = index[i];
            len += 1;
        }
    }
    index.truncate(len);
    index
}

fn pair_lookup(
    index: &[((ObjectId, ObjectId), Option<f64>)],
    key: (ObjectId, ObjectId),
) -> Option<Option<f64>> {
    index
        .binary_search_by_key(&key, |&(k, _)| k)
        .ok()
        .map(|i| index[i].1)
}

/// Union of two mappings between the same sources; duplicate pairs keep
/// the stronger evidence. The result carries `a`'s relationship type.
pub fn union(a: &Mapping, b: &Mapping) -> GamResult<Mapping> {
    check_compatible(a, b)?;
    let mut out = a.clone();
    out.pairs.extend(b.pairs.iter().copied());
    out.dedup();
    Ok(out)
}

/// Intersection: pairs present in both mappings. Evidence is the *weaker*
/// of the two (both observations must hold for the pair to hold).
pub fn intersect(a: &Mapping, b: &Mapping) -> GamResult<Mapping> {
    check_compatible(a, b)?;
    let bi = pair_index(b);
    let mut out = Mapping::empty(a.from, a.to, a.rel_type);
    for assoc in &a.pairs {
        if let Some(other_evidence) = pair_lookup(&bi, (assoc.from, assoc.to)) {
            let ea = assoc.evidence.unwrap_or(1.0);
            let eb = other_evidence.unwrap_or(1.0);
            let evidence = match (assoc.evidence, other_evidence) {
                (None, None) => None,
                _ => Some(ea.min(eb)),
            };
            out.pairs.push(Association {
                from: assoc.from,
                to: assoc.to,
                evidence,
            });
        }
    }
    out.dedup();
    Ok(out)
}

/// Difference: pairs of `a` absent from `b` (evidence ignored for
/// membership). Useful for release diffing: `difference(new, old)` is the
/// set of newly curated associations.
pub fn difference(a: &Mapping, b: &Mapping) -> GamResult<Mapping> {
    check_compatible(a, b)?;
    let bi = pair_index(b);
    let mut out = Mapping::empty(a.from, a.to, a.rel_type);
    out.pairs = a
        .pairs
        .iter()
        .filter(|assoc| pair_lookup(&bi, (assoc.from, assoc.to)).is_none())
        .copied()
        .collect();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::model::RelType;
    use gam::{ObjectId, SourceId};

    fn m(pairs: &[(u64, u64, Option<f64>)]) -> Mapping {
        Mapping {
            from: SourceId(1),
            to: SourceId(2),
            rel_type: RelType::Fact,
            pairs: pairs
                .iter()
                .map(|&(f, t, e)| Association {
                    from: ObjectId(f),
                    to: ObjectId(t),
                    evidence: e,
                })
                .collect(),
        }
    }

    #[test]
    fn union_keeps_stronger_evidence() {
        let a = m(&[(1, 10, Some(0.4)), (2, 20, None)]);
        let b = m(&[(1, 10, Some(0.8)), (3, 30, Some(0.5))]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.len(), 3);
        let p = u.pairs.iter().find(|p| p.from == ObjectId(1)).unwrap();
        assert_eq!(p.evidence, Some(0.8));
    }

    #[test]
    fn intersect_keeps_weaker_evidence() {
        let a = m(&[(1, 10, Some(0.9)), (2, 20, None), (4, 40, Some(0.3))]);
        let b = m(&[(1, 10, Some(0.6)), (2, 20, Some(0.7))]);
        let i = intersect(&a, &b).unwrap();
        assert_eq!(i.len(), 2);
        let p1 = i.pairs.iter().find(|p| p.from == ObjectId(1)).unwrap();
        assert_eq!(p1.evidence, Some(0.6));
        // fact ∩ scored keeps the score (the weaker belief)
        let p2 = i.pairs.iter().find(|p| p.from == ObjectId(2)).unwrap();
        assert_eq!(p2.evidence, Some(0.7));
        // fact ∩ fact stays fact
        let a = m(&[(1, 10, None)]);
        let b = m(&[(1, 10, None)]);
        assert_eq!(intersect(&a, &b).unwrap().pairs[0].evidence, None);
    }

    #[test]
    fn difference_is_release_diff() {
        let new = m(&[(1, 10, None), (2, 20, None), (3, 30, None)]);
        let old = m(&[(1, 10, None), (2, 20, None)]);
        let added = difference(&new, &old).unwrap();
        assert_eq!(added.len(), 1);
        assert_eq!(added.pairs[0].from, ObjectId(3));
        let removed = difference(&old, &new).unwrap();
        assert!(removed.is_empty());
    }

    #[test]
    fn algebraic_laws() {
        let a = m(&[(1, 10, Some(0.5)), (2, 20, None)]);
        let b = m(&[(2, 20, Some(0.9)), (3, 30, None)]);
        // |a ∪ b| = |a| + |b| - |a ∩ b|
        let u = union(&a, &b).unwrap();
        let i = intersect(&a, &b).unwrap();
        assert_eq!(u.len(), a.len() + b.len() - i.len());
        // a \ b and a ∩ b partition a (by pair membership)
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len() + i.len(), a.len());
        // idempotence
        assert_eq!(union(&a, &a).unwrap().len(), a.len());
        assert_eq!(intersect(&a, &a).unwrap().len(), a.len());
        assert!(difference(&a, &a).unwrap().is_empty());
    }

    #[test]
    fn pair_index_keeps_last_duplicate() {
        // non-deduplicated inputs: the lookup side keeps the *last*
        // occurrence of a pair, matching the former map-insertion index
        let a = m(&[(1, 10, Some(0.9))]);
        let b = m(&[(1, 10, Some(0.2)), (2, 20, None), (1, 10, Some(0.6))]);
        let idx = pair_index(&b);
        assert_eq!(idx.len(), 2);
        assert_eq!(
            pair_lookup(&idx, (ObjectId(1), ObjectId(10))),
            Some(Some(0.6))
        );
        assert_eq!(pair_lookup(&idx, (ObjectId(9), ObjectId(9))), None);
        let i = intersect(&a, &b).unwrap();
        assert_eq!(i.pairs[0].evidence, Some(0.6));
    }

    #[test]
    fn incompatible_mappings_rejected() {
        let a = m(&[]);
        let mut b = m(&[]);
        b.to = SourceId(9);
        assert!(union(&a, &b).is_err());
        assert!(intersect(&a, &b).is_err());
        assert!(difference(&a, &b).is_err());
    }
}
