//! The `Map` operation and the mapping-resolution abstraction.

use gam::{GamError, GamRead, GamResult, Mapping, MappingIndex, SourceId};
#[cfg(test)]
use gam::GamStore;

/// The paper's `Map(S, T)`: "searches the database for an existing mapping
/// between S and T and returns the corresponding object associations."
///
/// All stored mappings between the two sources (Fact, Similarity, and
/// previously materialized Composed ones) are merged and oriented
/// `from → to`; duplicate pairs keep their best evidence. Returns
/// [`GamError::NoMapping`] when no mapping exists in either direction.
pub fn map(store: &dyn GamRead, from: SourceId, to: SourceId) -> GamResult<Mapping> {
    let mut merged: Option<Mapping> = None;
    for rel in store.source_rels_between(from, to)? {
        if rel.rel_type.is_structural() {
            continue;
        }
        let m = store.load_mapping(rel.id)?;
        merged = Some(match merged {
            None => m,
            Some(mut acc) => {
                acc.pairs.extend(m.pairs);
                acc
            }
        });
    }
    for rel in store.source_rels_between(to, from)? {
        if rel.rel_type.is_structural() || from == to {
            continue;
        }
        let m = store.load_mapping(rel.id)?.inverse();
        merged = Some(match merged {
            None => m,
            Some(mut acc) => {
                acc.pairs.extend(m.pairs);
                acc
            }
        });
    }
    match merged {
        Some(mut m) => {
            m.from = from;
            m.to = to;
            m.dedup();
            Ok(m)
        }
        None => Err(GamError::NoMapping { from, to }),
    }
}

/// [`map`] in CSR form. When a single stored, non-structural mapping backs
/// the pair — by far the common case — the index streams straight out of
/// the store's batched `OBJECT_REL` scan ([`GamStore::load_mapping_index`])
/// with no per-row allocation, no sort and no dedup; otherwise it
/// canonicalizes the merged [`map`] result. Either way the index holds
/// exactly `map(store, from, to)` in canonical form.
pub fn map_index(store: &dyn GamRead, from: SourceId, to: SourceId) -> GamResult<MappingIndex> {
    let forward: Vec<_> = store
        .source_rels_between(from, to)?
        .into_iter()
        .filter(|r| !r.rel_type.is_structural())
        .collect();
    let has_inverse = from != to
        && store
            .source_rels_between(to, from)?
            .iter()
            .any(|r| !r.rel_type.is_structural());
    if forward.len() == 1 && !has_inverse {
        return store.load_mapping_index(forward[0].id);
    }
    Ok(MappingIndex::build(map(store, from, to)?))
}

/// [`map_or_compose`] in CSR form: try [`map_index`] first, fall back to
/// the merge-join [`crate::compose::compose_path_idx`] along the path.
pub fn map_or_compose_idx(
    store: &dyn GamRead,
    from: SourceId,
    to: SourceId,
    path: &[SourceId],
    cfg: &crate::exec::ExecConfig,
) -> GamResult<MappingIndex> {
    match map_index(store, from, to) {
        Ok(m) => Ok(m),
        Err(GamError::NoMapping { .. }) => crate::compose::compose_path_idx(store, path, cfg),
        Err(e) => Err(e),
    }
}

/// How `GenerateView` obtains the mapping `Mi: S ↔ Ti` — "using either the
/// Map or Compose operation" (Figure 5). Implementations may search the
/// source graph for a mapping path; [`DirectResolver`] only uses `Map`.
///
/// `Sync` is required so one resolver can serve the concurrent per-target
/// resolution of [`crate::view::generate_view_par`].
pub trait MappingResolver: Sync {
    /// Produce a mapping oriented `from → to`.
    fn resolve(&self, store: &dyn GamRead, from: SourceId, to: SourceId) -> GamResult<Mapping>;
}

/// Resolver that only retrieves directly stored mappings.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectResolver;

impl MappingResolver for DirectResolver {
    fn resolve(&self, store: &dyn GamRead, from: SourceId, to: SourceId) -> GamResult<Mapping> {
        map(store, from, to)
    }
}

/// Try `Map` first; if no direct mapping exists, compose along the given
/// path (which must start at `from` and end at `to`).
pub fn map_or_compose(
    store: &dyn GamRead,
    from: SourceId,
    to: SourceId,
    path: &[SourceId],
) -> GamResult<Mapping> {
    map_or_compose_par(store, from, to, path, &crate::exec::ExecConfig::sequential())
}

/// [`map_or_compose`] with the partitioned parallel probe for the Compose
/// fallback.
pub fn map_or_compose_par(
    store: &dyn GamRead,
    from: SourceId,
    to: SourceId,
    path: &[SourceId],
    cfg: &crate::exec::ExecConfig,
) -> GamResult<Mapping> {
    match map(store, from, to) {
        Ok(m) => Ok(m),
        Err(GamError::NoMapping { .. }) => crate::compose::compose_path_par(store, path, cfg),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::model::{RelType, SourceContent, SourceStructure};
    use gam::ObjectId;

    fn setup() -> (GamStore, SourceId, SourceId, Vec<ObjectId>, Vec<ObjectId>) {
        let mut s = GamStore::in_memory().unwrap();
        let a = s
            .create_source("A", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let b = s
            .create_source("B", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let ao: Vec<ObjectId> = (0..4)
            .map(|i| s.create_object(a, &format!("a{i}"), None, None).unwrap())
            .collect();
        let bo: Vec<ObjectId> = (0..4)
            .map(|i| s.create_object(b, &format!("b{i}"), None, None).unwrap())
            .collect();
        (s, a, b, ao, bo)
    }

    #[test]
    fn map_returns_oriented_associations() {
        let (mut s, a, b, ao, bo) = setup();
        let rel = s.create_source_rel(a, b, RelType::Fact, None).unwrap();
        s.add_association(rel, ao[0], bo[0], None).unwrap();
        s.add_association(rel, ao[1], bo[1], None).unwrap();

        let m = map(&s, a, b).unwrap();
        assert_eq!(m.from, a);
        assert_eq!(m.len(), 2);
        // reversed orientation inverts pairs
        let m = map(&s, b, a).unwrap();
        assert_eq!(m.from, b);
        assert!(m.pairs.iter().any(|p| p.from == bo[0] && p.to == ao[0]));
    }

    #[test]
    fn map_merges_fact_and_similarity() {
        let (mut s, a, b, ao, bo) = setup();
        let fact = s.create_source_rel(a, b, RelType::Fact, None).unwrap();
        let sim = s.create_source_rel(a, b, RelType::Similarity, None).unwrap();
        s.add_association(fact, ao[0], bo[0], None).unwrap();
        s.add_association(sim, ao[1], bo[1], Some(0.6)).unwrap();
        // same pair in both: fact (evidence 1.0) wins
        s.add_association(sim, ao[0], bo[0], Some(0.5)).unwrap();

        let m = map(&s, a, b).unwrap();
        assert_eq!(m.len(), 2);
        let p00 = m.pairs.iter().find(|p| p.from == ao[0]).unwrap();
        assert_eq!(p00.evidence, None, "fact association dominates");
        let p11 = m.pairs.iter().find(|p| p.from == ao[1]).unwrap();
        assert_eq!(p11.evidence, Some(0.6));
    }

    #[test]
    fn map_skips_structural_relationships() {
        let (mut s, a, _b, ao, _) = setup();
        let isa = s.create_source_rel(a, a, RelType::IsA, None).unwrap();
        s.add_association(isa, ao[0], ao[1], None).unwrap();
        assert!(matches!(
            map(&s, a, a),
            Err(GamError::NoMapping { .. })
        ));
    }

    #[test]
    fn missing_mapping_is_an_error() {
        let (s, a, b, _, _) = setup();
        assert!(matches!(map(&s, a, b), Err(GamError::NoMapping { .. })));
        assert!(DirectResolver.resolve(&s, a, b).is_err());
    }

    #[test]
    fn map_or_compose_falls_back_to_path() {
        let (mut s, a, b, ao, bo) = setup();
        let c = s
            .create_source("C", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let co = s.create_object(c, "c0", None, None).unwrap();
        let r1 = s.create_source_rel(a, c, RelType::Fact, None).unwrap();
        let r2 = s.create_source_rel(c, b, RelType::Fact, None).unwrap();
        s.add_association(r1, ao[0], co, None).unwrap();
        s.add_association(r2, co, bo[0], None).unwrap();
        let m = map_or_compose(&s, a, b, &[a, c, b]).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.pairs[0].from, ao[0]);
        assert_eq!(m.pairs[0].to, bo[0]);
    }

    #[test]
    fn map_index_equals_map_in_all_shapes() {
        let bits = |m: &Mapping| -> Vec<(ObjectId, ObjectId, Option<u64>)> {
            m.pairs
                .iter()
                .map(|a| (a.from, a.to, a.evidence.map(f64::to_bits)))
                .collect()
        };
        // single forward rel: the batched fast path
        let (mut s, a, b, ao, bo) = setup();
        let rel = s.create_source_rel(a, b, RelType::Fact, None).unwrap();
        s.add_association(rel, ao[0], bo[0], None).unwrap();
        s.add_association(rel, ao[1], bo[1], Some(0.5)).unwrap();
        let idx = map_index(&s, a, b).unwrap();
        let reference = map(&s, a, b).unwrap();
        assert_eq!(bits(&idx.to_mapping()), bits(&reference));
        assert_eq!((idx.from, idx.to, idx.rel_type), (reference.from, reference.to, reference.rel_type));

        // reversed orientation has no forward rel: merged/inverted path
        let idx = map_index(&s, b, a).unwrap();
        let reference = map(&s, b, a).unwrap();
        assert_eq!(bits(&idx.to_mapping()), bits(&reference));

        // a second (similarity) rel with an overlapping pair: merged path
        let sim = s.create_source_rel(a, b, RelType::Similarity, None).unwrap();
        s.add_association(sim, ao[0], bo[0], Some(0.4)).unwrap();
        s.add_association(sim, ao[2], bo[2], Some(0.8)).unwrap();
        let idx = map_index(&s, a, b).unwrap();
        let reference = map(&s, a, b).unwrap();
        assert_eq!(bits(&idx.to_mapping()), bits(&reference));

        // no mapping at all: same error
        let c = s
            .create_source("Cx", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        assert!(matches!(map_index(&s, a, c), Err(GamError::NoMapping { .. })));
    }
}
