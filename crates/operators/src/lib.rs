//! `operators` — GenMapper's high-level GAM-based operators (paper §4.2).
//!
//! | Paper operation      | Here |
//! |----------------------|------|
//! | `Map(S, T)`          | [`simple::map`] |
//! | `Domain(map)`        | [`gam::Mapping::domain`] |
//! | `Range(map)`         | [`gam::Mapping::range`] |
//! | `RestrictDomain`     | [`gam::Mapping::restrict_domain`] |
//! | `RestrictRange`      | [`gam::Mapping::restrict_range`] |
//! | `Compose`            | [`compose::compose`] / [`compose::compose_path`] |
//! | Subsumed derivation  | [`subsume::subsume`] |
//! | `GenerateView`       | [`view::generate_view`] (Figure 5, verbatim) |
//!
//! Results of general interest — Composed mappings and Subsumed closures —
//! can be [materialized](materialize) back into the central database, the
//! paper's mechanism for supporting frequent queries.
//!
//! `Compose` and `GenerateView` additionally come in `_par` variants
//! ([`compose_par`], [`generate_view_par`]) that execute the join probe and
//! the per-target resolution pipelines on a scoped-thread worker pool
//! configured by [`exec::ExecConfig`] — with output bit-identical to the
//! sequential operators (see [`exec`] for the determinism argument).

pub mod compose;
pub mod exec;
pub mod materialize;
pub mod setops;
pub mod simple;
pub mod subsume;
pub mod view;

pub use compose::{
    compose, compose_par, compose_path, compose_path_par, compose_path_with_threshold,
    compose_path_with_threshold_par, compose_with_threshold, compose_with_threshold_par,
};
pub use exec::ExecConfig;
pub use setops::{difference, intersect, union};
pub use simple::{map, map_or_compose, map_or_compose_par, DirectResolver, MappingResolver};
pub use subsume::subsume;
pub use view::{generate_view, generate_view_par, AnnotationView, Combine, TargetSpec, ViewQuery};
