//! `operators` — GenMapper's high-level GAM-based operators (paper §4.2).
//!
//! | Paper operation      | Here |
//! |----------------------|------|
//! | `Map(S, T)`          | [`simple::map`] |
//! | `Domain(map)`        | [`gam::Mapping::domain`] |
//! | `Range(map)`         | [`gam::Mapping::range`] |
//! | `RestrictDomain`     | [`gam::Mapping::restrict_domain`] |
//! | `RestrictRange`      | [`gam::Mapping::restrict_range`] |
//! | `Compose`            | [`compose::compose`] / [`compose::compose_path`] |
//! | Subsumed derivation  | [`subsume::subsume`] |
//! | `GenerateView`       | [`view::generate_view`] (Figure 5, verbatim) |
//!
//! Results of general interest — Composed mappings and Subsumed closures —
//! can be [materialized](materialize) back into the central database, the
//! paper's mechanism for supporting frequent queries.
//!
//! `Compose` and `GenerateView` additionally come in `_par` variants
//! ([`compose_par`], [`generate_view_par`]) that execute the join probe and
//! the per-target resolution pipelines on a scoped-thread worker pool
//! configured by [`exec::ExecConfig`] — with output bit-identical to the
//! sequential operators (see [`exec`] for the determinism argument).
//!
//! The `_idx` variants ([`compose_idx`], [`compose_path_idx`],
//! [`map_index`], [`generate_view_idx`]) operate on the CSR
//! [`gam::MappingIndex`] — the representation the GenMapper system caches.
//! Sequential `compose_idx` is a sorted merge join over the two indexes'
//! key arrays (galloping on heavy size skew); above the parallel threshold
//! it falls back to the partitioned hash probe. Restrictions and
//! `GenerateView` probes become binary searches over the offset arrays.
//! Every `_idx` operator is pinned bit-identical to its `Vec`-based
//! counterpart by `tests/csr_prop.rs`.
//!
//! The `_idx` entry points route through the cost-based planner
//! ([`plan`]) by default (`ExecConfig::plan`): per-index build-time
//! statistics drive join-strategy selection, evidence-floor pushdown,
//! fact-chain reordering, and shared path prefixes across a view's
//! targets — with output pinned bit-identical to naive caller-order
//! execution by `tests/plan_prop.rs`, and [`plan::ExplainNode`] surfacing
//! the chosen plan for the CLI/serve `explain` verbs.

// Non-test code on the import/query path must propagate errors, never
// panic: one malformed dump line must not take down a whole import.
// genlint's no-panic rule enforces the same invariant where clippy is
// not run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod compose;
pub mod exec;
pub mod materialize;
pub mod plan;
pub mod setops;
pub mod simple;
pub mod subsume;
pub mod view;

pub use compose::{
    compose, compose_idx, compose_idx_with_threshold, compose_par, compose_path,
    compose_path_idx, compose_path_idx_with_threshold, compose_path_par,
    compose_path_with_threshold, compose_path_with_threshold_par, compose_with_threshold,
    compose_with_threshold_par,
};
pub use exec::ExecConfig;
pub use plan::{explain_view, plan_chain, plan_chain_explain, ExplainNode, ViewContext};
pub use setops::{difference, intersect, union};
pub use simple::{
    map, map_index, map_or_compose, map_or_compose_idx, map_or_compose_par, DirectResolver,
    MappingResolver,
};
pub use subsume::subsume;
pub use view::{
    generate_view, generate_view_idx, generate_view_par, AnnotationView, BuildIndexResolver,
    Combine, IndexResolver, TargetSpec, ViewQuery,
};
