//! `operators` — GenMapper's high-level GAM-based operators (paper §4.2).
//!
//! | Paper operation      | Here |
//! |----------------------|------|
//! | `Map(S, T)`          | [`simple::map`] |
//! | `Domain(map)`        | [`gam::Mapping::domain`] |
//! | `Range(map)`         | [`gam::Mapping::range`] |
//! | `RestrictDomain`     | [`gam::Mapping::restrict_domain`] |
//! | `RestrictRange`      | [`gam::Mapping::restrict_range`] |
//! | `Compose`            | [`compose::compose`] / [`compose::compose_path`] |
//! | Subsumed derivation  | [`subsume::subsume`] |
//! | `GenerateView`       | [`view::generate_view`] (Figure 5, verbatim) |
//!
//! Results of general interest — Composed mappings and Subsumed closures —
//! can be [materialized](materialize) back into the central database, the
//! paper's mechanism for supporting frequent queries.

pub mod compose;
pub mod materialize;
pub mod setops;
pub mod simple;
pub mod subsume;
pub mod view;

pub use compose::{compose, compose_path, compose_path_with_threshold, compose_with_threshold};
pub use setops::{difference, intersect, union};
pub use simple::{map, map_or_compose, DirectResolver, MappingResolver};
pub use subsume::subsume;
pub use view::{generate_view, AnnotationView, Combine, TargetSpec, ViewQuery};
