//! The `Compose` operation: transitivity of associations.
//!
//! Paper §4.2: "Compose takes as input a so-called mapping path consisting
//! of two or more mappings connecting two sources with each other ... it
//! can use a relational join operation to combine map1: S1↔S2 and map2:
//! S2↔S3, which share a common source S2, and produce as output a mapping
//! between S1 and S3."
//!
//! Evidence combination: the composed association's evidence is the
//! product of the constituents' effective evidence (facts count as 1.0),
//! reflecting the paper's note that composition may weaken plausibility —
//! "the use of mappings containing associations of reduced evidence is a
//! promising subject for future research". Two all-fact inputs therefore
//! compose into fact associations.

use crate::exec::{partitioned, ExecConfig};
use crate::plan::cost::{self, JoinStrategy};
use crate::simple::{map, map_index};
use gam::mapping::Association;
use gam::model::RelType;
use gam::{GamError, GamRead, GamResult, Mapping, MappingIndex, ObjectId, SourceId};
#[cfg(test)]
use gam::GamStore;
use std::collections::HashMap;
use std::sync::Arc;

/// Probe one contiguous chunk of the left mapping against the shared
/// build-side index. `min_evidence` is applied **during** the probe, so
/// pairs below the floor are never allocated; this is exactly equivalent to
/// composing fully and filtering afterwards because duplicates are later
/// deduped to their maximum evidence, and the maximum survives the floor
/// iff any duplicate does.
fn probe_chunk(
    chunk: &[Association],
    by_mid: &HashMap<ObjectId, Vec<&Association>>,
    min_evidence: Option<f64>,
) -> Vec<Association> {
    let mut out = Vec::new();
    for l in chunk {
        if let Some(matches) = by_mid.get(&l.to) {
            for r in matches {
                let evidence = match (l.evidence, r.evidence) {
                    (None, None) => None, // fact ∘ fact = fact
                    _ => Some(l.effective_evidence() * r.effective_evidence()),
                };
                if let Some(floor) = min_evidence {
                    if evidence.unwrap_or(1.0) < floor {
                        continue;
                    }
                }
                out.push(Association {
                    from: l.from,
                    to: r.to,
                    evidence,
                });
            }
        }
    }
    out
}

/// The shared join core: build an index over the right mapping's middle
/// objects, probe the left side (chunked across `cfg`'s worker pool when
/// large enough), and merge the per-worker buffers in partition order.
fn compose_inner(
    left: &Mapping,
    right: &Mapping,
    min_evidence: Option<f64>,
    cfg: &ExecConfig,
) -> GamResult<Mapping> {
    if left.to != right.from {
        return Err(GamError::Invalid(format!(
            "compose: mappings do not share a source ({} vs {})",
            left.to, right.from
        )));
    }
    // hash join on the shared middle objects; build side = right
    let mut by_mid: HashMap<ObjectId, Vec<&Association>> =
        HashMap::with_capacity(right.pairs.len());
    for assoc in &right.pairs {
        by_mid.entry(assoc.from).or_default().push(assoc);
    }
    let jobs = cfg.effective_jobs(left.pairs.len());
    let parts = partitioned(&left.pairs, jobs, |chunk| {
        probe_chunk(chunk, &by_mid, min_evidence)
    });
    Ok(Mapping::from_parts(
        left.from,
        right.to,
        RelType::Composed,
        parts,
    ))
}

/// Compose two in-memory mappings sharing a middle source
/// (`left.to == right.from`). Output pairs are deduplicated keeping the
/// strongest evidence. Runs sequentially; see [`compose_par`] for the
/// partitioned parallel variant (bit-identical output).
pub fn compose(left: &Mapping, right: &Mapping) -> GamResult<Mapping> {
    compose_inner(left, right, None, &ExecConfig::sequential())
}

/// [`compose`] with a partitioned parallel probe: the build-side index is
/// shared, the left (probe) side is split into contiguous chunks across
/// `cfg.jobs` scoped threads, and per-worker outputs are merged back in
/// chunk order before the deterministic dedup — so the result is
/// bit-identical to [`compose`]. Inputs below `cfg.parallel_threshold`
/// fall back to the sequential path.
pub fn compose_par(left: &Mapping, right: &Mapping, cfg: &ExecConfig) -> GamResult<Mapping> {
    compose_inner(left, right, None, cfg)
}

/// Compose with an evidence floor: composed associations whose combined
/// evidence falls below `min_evidence` are dropped. This implements the
/// paper's future-work direction — "the use of mappings containing
/// associations of reduced evidence is a promising subject for future
/// research" — as the simplest sound policy: multiplication for
/// combination, thresholding for acceptance. The threshold also bounds the
/// paper's noted risk that "Compose may lead to wrong associations when
/// the transitivity assumption does not hold": low-confidence chains are
/// exactly where transitivity breaks.
///
/// The floor is applied inside the probe loop, so rejected pairs are never
/// materialized.
pub fn compose_with_threshold(
    left: &Mapping,
    right: &Mapping,
    min_evidence: f64,
) -> GamResult<Mapping> {
    compose_with_threshold_par(left, right, min_evidence, &ExecConfig::sequential())
}

/// [`compose_with_threshold`] with the partitioned parallel probe.
pub fn compose_with_threshold_par(
    left: &Mapping,
    right: &Mapping,
    min_evidence: f64,
    cfg: &ExecConfig,
) -> GamResult<Mapping> {
    if !(0.0..=1.0).contains(&min_evidence) || min_evidence.is_nan() {
        return Err(GamError::BadEvidence(min_evidence));
    }
    compose_inner(left, right, Some(min_evidence), cfg)
}

/// Compose along a path with an evidence floor applied at every step, so
/// implausible chains are pruned early instead of multiplying through.
pub fn compose_path_with_threshold(
    store: &dyn GamRead,
    path: &[SourceId],
    min_evidence: f64,
) -> GamResult<Mapping> {
    compose_path_with_threshold_par(store, path, min_evidence, &ExecConfig::sequential())
}

/// [`compose_path_with_threshold`] with the partitioned parallel probe at
/// every join step.
pub fn compose_path_with_threshold_par(
    store: &dyn GamRead,
    path: &[SourceId],
    min_evidence: f64,
    cfg: &ExecConfig,
) -> GamResult<Mapping> {
    if !(0.0..=1.0).contains(&min_evidence) || min_evidence.is_nan() {
        return Err(GamError::BadEvidence(min_evidence));
    }
    if path.len() < 2 {
        return Err(GamError::Invalid(
            "compose path needs at least two sources".into(),
        ));
    }
    let mut acc = map(store, path[0], path[1])?;
    acc.pairs
        .retain(|a| a.effective_evidence() >= min_evidence);
    for window in path[1..].windows(2) {
        let step = map(store, window[0], window[1])?;
        acc = compose_with_threshold_par(&acc, &step, min_evidence, cfg)?;
        if acc.is_empty() {
            break;
        }
    }
    acc.from = path[0];
    // the len >= 2 guard above makes last() infallible; the fallback
    // keeps the already-correct endpoint rather than panicking
    acc.to = path.last().copied().unwrap_or(acc.to);
    if path.len() > 2 {
        acc.rel_type = RelType::Composed;
    }
    Ok(acc)
}

/// Compose along a mapping path of sources, loading each step with `Map`.
/// The path must name at least two sources; a two-source path degenerates
/// to `Map` itself.
pub fn compose_path(store: &dyn GamRead, path: &[SourceId]) -> GamResult<Mapping> {
    compose_path_par(store, path, &ExecConfig::sequential())
}

/// [`compose_path`] with the partitioned parallel probe at every join step.
pub fn compose_path_par(
    store: &dyn GamRead,
    path: &[SourceId],
    cfg: &ExecConfig,
) -> GamResult<Mapping> {
    if path.len() < 2 {
        return Err(GamError::Invalid(
            "compose path needs at least two sources".into(),
        ));
    }
    let mut acc = map(store, path[0], path[1])?;
    for window in path[1..].windows(2) {
        let step = map(store, window[0], window[1])?;
        acc = compose_par(&acc, &step, cfg)?;
        if acc.is_empty() {
            // no surviving associations; keep going so the result has the
            // right endpoints, but no further joins can add pairs
            break;
        }
    }
    acc.from = path[0];
    // the len >= 2 guard above makes last() infallible; the fallback
    // keeps the already-correct endpoint rather than panicking
    acc.to = path.last().copied().unwrap_or(acc.to);
    if path.len() > 2 {
        acc.rel_type = RelType::Composed;
    }
    Ok(acc)
}

/// First index `>= start` whose key is `>= target`, found by exponential
/// (galloping) search: a jump of distance `d` costs `O(log d)`, so merging
/// a small key array against a huge one costs the small side's length
/// times a logarithm rather than a linear walk over the huge side.
fn gallop(keys: &[ObjectId], start: usize, target: ObjectId) -> usize {
    let mut step = 1;
    while start + step < keys.len() && keys[start + step] < target {
        step <<= 1;
    }
    let lo = start + (step >> 1);
    let hi = (start + step).min(keys.len());
    lo + keys[lo..hi].partition_point(|&k| k < target)
}

/// Emit one matched middle object: every left association arriving at the
/// middle (via the inverse view) joins every right association leaving it.
/// Evidence combines exactly as in [`probe_chunk`], floor included.
#[inline]
fn emit_match(
    left: &MappingIndex,
    right: &MappingIndex,
    i: usize,
    j: usize,
    min_evidence: Option<f64>,
    out: &mut Vec<Association>,
) {
    for p in left.inv_range(i) {
        let lpos = left.inv_fwd_pos(p);
        let l_from = left.inv_from_at(p);
        let l_ev = left.evidence_at(lpos);
        for q in right.fwd_range(j) {
            let evidence = match (l_ev, right.evidence_at(q)) {
                (None, None) => None, // fact ∘ fact = fact
                _ => Some(left.effective_evidence_at(lpos) * right.effective_evidence_at(q)),
            };
            if let Some(floor) = min_evidence {
                if evidence.unwrap_or(1.0) < floor {
                    continue;
                }
            }
            out.push(Association {
                from: l_from,
                to: right.to_at(q),
                evidence,
            });
        }
    }
}

/// Sorted merge join over the left index's range keys and the right
/// index's domain keys — both already sorted and distinct, so the join
/// needs no hash table at all. When one key array dwarfs the other
/// ([`cost::GALLOP_RATIO`]), the caller flags the long side's cursor to
/// gallop; the flags only affect speed, never the emitted multiset.
fn merge_join_idx(
    left: &MappingIndex,
    right: &MappingIndex,
    min_evidence: Option<f64>,
    gallop_left: bool,
    gallop_right: bool,
) -> Vec<Association> {
    let lk = left.range_keys();
    let rk = right.domain_keys();
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lk.len() && j < rk.len() {
        if lk[i] < rk[j] {
            i = if gallop_left { gallop(lk, i, rk[j]) } else { i + 1 };
        } else if rk[j] < lk[i] {
            j = if gallop_right { gallop(rk, j, lk[i]) } else { j + 1 };
        } else {
            emit_match(left, right, i, j, min_evidence, &mut out);
            i += 1;
            j += 1;
        }
    }
    out
}

/// Partitioned hash probe over the left index's domain buckets: the build
/// side maps each of the right index's domain keys to its bucket, and
/// contiguous chunks of left buckets probe it concurrently. Used above the
/// parallel threshold; output feeds the same canonical dedup as the merge
/// join, so the two strategies produce bit-identical mappings.
fn hash_join_idx(
    left: &MappingIndex,
    right: &MappingIndex,
    min_evidence: Option<f64>,
    jobs: usize,
) -> Vec<Vec<Association>> {
    let by_mid: HashMap<ObjectId, usize> = right
        .domain_keys()
        .iter()
        .enumerate()
        .map(|(j, &k)| (k, j))
        .collect();
    let buckets: Vec<usize> = (0..left.domain_keys().len()).collect();
    partitioned(&buckets, jobs, |chunk| {
        let mut out = Vec::new();
        for &i in chunk {
            let l_from = left.domain_keys()[i];
            for p in left.fwd_range(i) {
                if let Some(&j) = by_mid.get(&left.to_at(p)) {
                    let l_ev = left.evidence_at(p);
                    for q in right.fwd_range(j) {
                        let evidence = match (l_ev, right.evidence_at(q)) {
                            (None, None) => None,
                            _ => Some(
                                left.effective_evidence_at(p) * right.effective_evidence_at(q),
                            ),
                        };
                        if let Some(floor) = min_evidence {
                            if evidence.unwrap_or(1.0) < floor {
                                continue;
                            }
                        }
                        out.push(Association {
                            from: l_from,
                            to: right.to_at(q),
                            evidence,
                        });
                    }
                }
            }
        }
        out
    })
}

/// The CSR join core: pick a [`JoinStrategy`] — the stats-driven cost
/// model when `cfg.plan`, the legacy fixed `effective_jobs` heuristic
/// otherwise — then run the canonical dedup. All strategies emit the same
/// association multiset, and the dedup is a pure function of that
/// multiset, so the resulting index is bit-identical whichever is chosen —
/// and bit-identical to composing the equivalent `Vec`-based mappings with
/// [`compose`].
fn compose_idx_inner(
    left: &MappingIndex,
    right: &MappingIndex,
    min_evidence: Option<f64>,
    cfg: &ExecConfig,
) -> GamResult<MappingIndex> {
    if left.to != right.from {
        return Err(GamError::Invalid(format!(
            "compose: mappings do not share a source ({} vs {})",
            left.to, right.from
        )));
    }
    let strategy = if cfg.plan {
        cost::choose_strategy(left.stats(), right.stats(), cfg)
    } else {
        let jobs = cfg.effective_jobs(left.len());
        if jobs > 1 {
            JoinStrategy::Hash { jobs }
        } else {
            let (gl, gr) = cost::gallop_flags(left.range_keys().len(), right.domain_keys().len());
            JoinStrategy::Gallop { left: gl, right: gr }
        }
    };
    let parts = match strategy {
        JoinStrategy::Hash { jobs } => hash_join_idx(left, right, min_evidence, jobs),
        JoinStrategy::Merge => vec![merge_join_idx(left, right, min_evidence, false, false)],
        JoinStrategy::Gallop { left: gl, right: gr } => {
            vec![merge_join_idx(left, right, min_evidence, gl, gr)]
        }
    };
    let merged = Mapping::from_parts(left.from, right.to, RelType::Composed, parts);
    // from_parts leaves the mapping canonical, so build skips the sort
    Ok(MappingIndex::build(merged))
}

/// [`compose`] over CSR indexes: a sorted merge join when sequential, the
/// partitioned hash probe above `cfg`'s parallel threshold. The result is
/// bit-identical to `compose(left.to_mapping(), right.to_mapping())`.
pub fn compose_idx(
    left: &MappingIndex,
    right: &MappingIndex,
    cfg: &ExecConfig,
) -> GamResult<MappingIndex> {
    compose_idx_inner(left, right, None, cfg)
}

/// [`compose_with_threshold`] over CSR indexes; the floor is applied
/// during the join, exactly as in the `Vec`-based probe.
pub fn compose_idx_with_threshold(
    left: &MappingIndex,
    right: &MappingIndex,
    min_evidence: f64,
    cfg: &ExecConfig,
) -> GamResult<MappingIndex> {
    if !(0.0..=1.0).contains(&min_evidence) || min_evidence.is_nan() {
        return Err(GamError::BadEvidence(min_evidence));
    }
    compose_idx_inner(left, right, Some(min_evidence), cfg)
}

/// The naive caller-order fold shared by the `plan: false` path and the
/// planner's step-load-failure fallback. Steps load lazily and the fold
/// breaks as soon as the accumulator empties, so a chain that empties
/// before a missing step never observes the missing mapping — the planner
/// falls back here precisely to reproduce that error-or-empty behaviour.
pub(crate) fn fold_chain_idx(
    store: &dyn GamRead,
    path: &[SourceId],
    floor: Option<f64>,
    cfg: &ExecConfig,
) -> GamResult<MappingIndex> {
    let mut acc = map_index(store, path[0], path[1])?;
    if let Some(f) = floor {
        acc = acc.filter_evidence(f);
    }
    for window in path[1..].windows(2) {
        let step = map_index(store, window[0], window[1])?;
        acc = match floor {
            Some(f) => compose_idx_with_threshold(&acc, &step, f, cfg)?,
            None => compose_idx(&acc, &step, cfg)?,
        };
        if acc.is_empty() {
            break;
        }
    }
    acc.from = path[0];
    // the callers' len >= 2 guard makes last() infallible; the fallback
    // keeps the already-correct endpoint rather than panicking
    acc.to = path.last().copied().unwrap_or(acc.to);
    if path.len() > 2 {
        acc.rel_type = RelType::Composed;
    }
    Ok(acc)
}

/// [`compose_path`] over CSR indexes: each step is loaded with
/// [`map_index`] (the batched `OBJECT_REL` scan when a single stored
/// mapping backs the step) and joined with [`compose_idx`]. When
/// `cfg.plan`, the chain routes through [`crate::plan::plan_chain`] —
/// bit-identical output, stats-chosen join strategies and rewrites.
pub fn compose_path_idx(
    store: &dyn GamRead,
    path: &[SourceId],
    cfg: &ExecConfig,
) -> GamResult<MappingIndex> {
    if path.len() < 2 {
        return Err(GamError::Invalid(
            "compose path needs at least two sources".into(),
        ));
    }
    if cfg.plan {
        let idx = crate::plan::plan_chain(store, path, None, cfg, None)?;
        return Ok(Arc::try_unwrap(idx).unwrap_or_else(|a| (*a).clone()));
    }
    fold_chain_idx(store, path, None, cfg)
}

/// [`compose_path_with_threshold`] over CSR indexes; plans like
/// [`compose_path_idx`], with the floor eligible for pushdown.
pub fn compose_path_idx_with_threshold(
    store: &dyn GamRead,
    path: &[SourceId],
    min_evidence: f64,
    cfg: &ExecConfig,
) -> GamResult<MappingIndex> {
    if !(0.0..=1.0).contains(&min_evidence) || min_evidence.is_nan() {
        return Err(GamError::BadEvidence(min_evidence));
    }
    if path.len() < 2 {
        return Err(GamError::Invalid(
            "compose path needs at least two sources".into(),
        ));
    }
    if cfg.plan {
        let idx = crate::plan::plan_chain(store, path, Some(min_evidence), cfg, None)?;
        return Ok(Arc::try_unwrap(idx).unwrap_or_else(|a| (*a).clone()));
    }
    fold_chain_idx(store, path, Some(min_evidence), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::model::{SourceContent, SourceStructure};
    use gam::ObjectId;

    fn m(from: u32, to: u32, pairs: &[(u64, u64, Option<f64>)]) -> Mapping {
        Mapping {
            from: SourceId(from),
            to: SourceId(to),
            rel_type: RelType::Fact,
            pairs: pairs
                .iter()
                .map(|&(f, t, e)| Association {
                    from: ObjectId(f),
                    to: ObjectId(t),
                    evidence: e,
                })
                .collect(),
        }
    }

    #[test]
    fn paper_example_unigene_go_via_locuslink() {
        // "the new mapping Unigene<->GO can be derived by combining two
        // existing mappings, Unigene<->LocusLink and LocusLink<->GO"
        let unigene_locuslink = m(1, 2, &[(10, 20, None), (11, 21, None)]);
        let locuslink_go = m(2, 3, &[(20, 30, None), (20, 31, None), (22, 32, None)]);
        let unigene_go = compose(&unigene_locuslink, &locuslink_go).unwrap();
        assert_eq!(unigene_go.from, SourceId(1));
        assert_eq!(unigene_go.to, SourceId(3));
        assert_eq!(unigene_go.rel_type, RelType::Composed);
        assert_eq!(unigene_go.len(), 2);
        assert!(unigene_go.pairs.contains(&Association::fact(ObjectId(10), ObjectId(30))));
        assert!(unigene_go.pairs.contains(&Association::fact(ObjectId(10), ObjectId(31))));
    }

    #[test]
    fn evidence_multiplies() {
        let ab = m(1, 2, &[(1, 2, Some(0.8))]);
        let bc = m(2, 3, &[(2, 3, Some(0.5)), (2, 4, None)]);
        let ac = compose(&ab, &bc).unwrap();
        assert_eq!(ac.len(), 2);
        let to3 = ac.pairs.iter().find(|p| p.to == ObjectId(3)).unwrap();
        assert!((to3.evidence.unwrap() - 0.4).abs() < 1e-12);
        // scored ∘ fact keeps the score
        let to4 = ac.pairs.iter().find(|p| p.to == ObjectId(4)).unwrap();
        assert!((to4.evidence.unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fact_compose_fact_stays_fact() {
        let ab = m(1, 2, &[(1, 2, None)]);
        let bc = m(2, 3, &[(2, 3, None)]);
        let ac = compose(&ab, &bc).unwrap();
        assert_eq!(ac.pairs[0].evidence, None);
    }

    #[test]
    fn duplicate_derivations_keep_best_evidence() {
        // two middle objects both lead from 1 to 9 with different strengths
        let ab = m(1, 2, &[(1, 2, Some(0.9)), (1, 3, Some(0.2))]);
        let bc = m(2, 3, &[(2, 9, Some(0.9)), (3, 9, Some(0.9))]);
        let ac = compose(&ab, &bc).unwrap();
        assert_eq!(ac.len(), 1);
        assert!((ac.pairs[0].evidence.unwrap() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn mismatched_sources_rejected() {
        let ab = m(1, 2, &[]);
        let cd = m(3, 4, &[]);
        assert!(compose(&ab, &cd).is_err());
    }

    #[test]
    fn compose_is_associative() {
        let ab = m(1, 2, &[(1, 10, Some(0.5)), (2, 11, None)]);
        let bc = m(2, 3, &[(10, 20, Some(0.8)), (11, 21, None)]);
        let cd = m(3, 4, &[(20, 30, None), (21, 31, Some(0.5))]);
        let left = compose(&compose(&ab, &bc).unwrap(), &cd).unwrap();
        let right = compose(&ab, &compose(&bc, &cd).unwrap()).unwrap();
        assert_eq!(left.pairs.len(), right.pairs.len());
        for (l, r) in left.pairs.iter().zip(&right.pairs) {
            assert_eq!((l.from, l.to), (r.from, r.to));
            match (l.evidence, r.evidence) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-12),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn threshold_prunes_weak_chains() {
        let ab = m(1, 2, &[(1, 2, Some(0.9)), (5, 6, Some(0.3))]);
        let bc = m(2, 3, &[(2, 3, Some(0.8)), (6, 7, Some(0.9))]);
        // unthresholded: both chains survive (0.72 and 0.27)
        let all = compose(&ab, &bc).unwrap();
        assert_eq!(all.len(), 2);
        // threshold 0.5 keeps only the strong chain
        let strong = compose_with_threshold(&ab, &bc, 0.5).unwrap();
        assert_eq!(strong.len(), 1);
        assert_eq!(strong.pairs[0].from, ObjectId(1));
        // threshold 0 is the identity policy
        let same = compose_with_threshold(&ab, &bc, 0.0).unwrap();
        assert_eq!(same.len(), all.len());
        // facts (evidence 1.0) always survive
        let facts = m(1, 2, &[(1, 2, None)]);
        let more = m(2, 3, &[(2, 3, None)]);
        assert_eq!(compose_with_threshold(&facts, &more, 0.99).unwrap().len(), 1);
        // invalid thresholds rejected
        assert!(compose_with_threshold(&ab, &bc, 1.5).is_err());
        assert!(compose_with_threshold(&ab, &bc, f64::NAN).is_err());
    }

    #[test]
    fn parallel_compose_is_bit_identical() {
        // deterministic pseudo-random mapping large enough to exercise
        // several partitions, with duplicate pairs and mixed evidence
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut left = m(1, 2, &[]);
        let mut right = m(2, 3, &[]);
        for _ in 0..5_000 {
            let e = match next() % 3 {
                0 => None,
                _ => Some((next() % 1000) as f64 / 1000.0),
            };
            left.pairs.push(Association {
                from: ObjectId(next() % 200),
                to: ObjectId(next() % 150),
                evidence: e,
            });
            right.pairs.push(Association {
                from: ObjectId(next() % 150),
                to: ObjectId(next() % 200),
                evidence: e.map(|v| 1.0 - v),
            });
        }
        let seq = compose(&left, &right).unwrap();
        for jobs in [2, 3, 4, 8] {
            let cfg = ExecConfig {
                jobs,
                parallel_threshold: 0,
                plan: true,
            };
            let par = compose_par(&left, &right, &cfg).unwrap();
            assert_eq!(par, seq, "jobs={jobs}");
            let seq_t = compose_with_threshold(&left, &right, 0.25).unwrap();
            let par_t = compose_with_threshold_par(&left, &right, 0.25, &cfg).unwrap();
            assert_eq!(par_t, seq_t, "threshold jobs={jobs}");
        }
    }

    #[test]
    fn threshold_in_probe_equals_filter_after() {
        // the probe-time floor must match the old compose-then-retain
        // semantics, including on duplicate pairs with mixed evidence
        let left = m(
            1,
            2,
            &[(1, 10, Some(0.9)), (1, 10, Some(0.3)), (2, 11, None), (3, 10, Some(0.4))],
        );
        let right = m(2, 3, &[(10, 20, Some(0.7)), (10, 21, None), (11, 22, Some(0.2))]);
        let mut reference = compose(&left, &right).unwrap();
        reference.pairs.retain(|a| a.effective_evidence() >= 0.5);
        let filtered = compose_with_threshold(&left, &right, 0.5).unwrap();
        assert_eq!(filtered, reference);
    }

    #[test]
    fn below_threshold_inputs_stay_sequential() {
        // tiny input + huge threshold: effective_jobs must be 1, and the
        // result identical either way
        let left = m(1, 2, &[(1, 10, None)]);
        let right = m(2, 3, &[(10, 20, None)]);
        let cfg = ExecConfig::with_jobs(8);
        assert_eq!(cfg.effective_jobs(left.pairs.len()), 1);
        assert_eq!(
            compose_par(&left, &right, &cfg).unwrap(),
            compose(&left, &right).unwrap()
        );
    }

    #[test]
    fn compose_path_in_store() {
        let mut s = GamStore::in_memory().unwrap();
        let ids: Vec<SourceId> = ["Affy", "Unigene", "LocusLink", "GO"]
            .iter()
            .map(|n| {
                s.create_source(n, SourceContent::Gene, SourceStructure::Flat, None)
                    .unwrap()
                    .id
            })
            .collect();
        let mut objs = Vec::new();
        for (i, &src) in ids.iter().enumerate() {
            objs.push(s.create_object(src, &format!("o{i}"), None, None).unwrap());
        }
        for w in ids.windows(2) {
            let rel = s
                .create_source_rel(w[0], w[1], RelType::Fact, None)
                .unwrap();
            let i = ids.iter().position(|x| *x == w[0]).unwrap();
            s.add_association(rel, objs[i], objs[i + 1], None).unwrap();
        }
        let m = compose_path(&s, &ids).unwrap();
        assert_eq!(m.from, ids[0]);
        assert_eq!(m.to, ids[3]);
        assert_eq!(m.rel_type, RelType::Composed);
        assert_eq!(m.len(), 1);
        assert_eq!(m.pairs[0].from, objs[0]);
        assert_eq!(m.pairs[0].to, objs[3]);

        // two-source path is just Map
        let m2 = compose_path(&s, &ids[..2]).unwrap();
        assert_eq!(m2.rel_type, RelType::Fact);
        // degenerate path rejected
        assert!(compose_path(&s, &ids[..1]).is_err());
        // missing step mapping surfaces as NoMapping
        assert!(matches!(
            compose_path(&s, &[ids[0], ids[2]]),
            Err(GamError::NoMapping { .. })
        ));
    }

    fn bits(m: &Mapping) -> Vec<(ObjectId, ObjectId, Option<u64>)> {
        m.pairs
            .iter()
            .map(|a| (a.from, a.to, a.evidence.map(f64::to_bits)))
            .collect()
    }

    /// Deterministic pseudo-random mapping pair sharing a middle source.
    fn random_pair(seed: u64, n: usize, left_dom: u64, mid: u64, right_dom: u64) -> (Mapping, Mapping) {
        let mut state = seed;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut left = m(1, 2, &[]);
        let mut right = m(2, 3, &[]);
        for _ in 0..n {
            let e = match next() % 3 {
                0 => None,
                _ => Some((next() % 1000) as f64 / 1000.0),
            };
            left.pairs.push(Association {
                from: ObjectId(next() % left_dom),
                to: ObjectId(next() % mid),
                evidence: e,
            });
            right.pairs.push(Association {
                from: ObjectId(next() % mid),
                to: ObjectId(next() % right_dom),
                evidence: e.map(|v| 1.0 - v),
            });
        }
        (left, right)
    }

    #[test]
    fn csr_compose_is_bit_identical_to_vec_compose() {
        // several shapes: balanced, left-skewed and right-skewed key
        // counts (exercising both gallop directions), empty sides
        let shapes = [
            random_pair(0x9e3779b97f4a7c15, 4_000, 200, 150, 200),
            random_pair(7, 2_000, 3_000, 2_000, 8),
            random_pair(11, 2_000, 8, 40, 3_000),
            random_pair(13, 0, 10, 10, 10),
        ];
        for (k, (left, right)) in shapes.iter().enumerate() {
            let reference = compose(left, right).unwrap();
            let li = MappingIndex::build(left.clone());
            let ri = MappingIndex::build(right.clone());
            // compose() dedups its inputs implicitly through from_parts
            // only on the *output*; the CSR build canonicalizes the
            // inputs, so compare against composing the canonical inputs
            let reference_canon = compose(&li.to_mapping(), &ri.to_mapping()).unwrap();
            assert_eq!(bits(&reference_canon), bits(&reference), "shape {k}: input dedup changes nothing");
            for jobs in [1, 2, 3, 8] {
                // both the cost-model strategy choice and the legacy
                // effective_jobs heuristic must hit the same bits
                for plan in [true, false] {
                    let cfg = ExecConfig {
                        jobs,
                        parallel_threshold: 0,
                        plan,
                    };
                    let idx = compose_idx(&li, &ri, &cfg).unwrap();
                    assert_eq!(
                        bits(&idx.to_mapping()),
                        bits(&reference),
                        "shape {k} jobs={jobs} plan={plan}"
                    );
                    assert_eq!(idx.from, reference.from);
                    assert_eq!(idx.to, reference.to);
                    assert_eq!(idx.rel_type, RelType::Composed);
                    let t = compose_with_threshold(left, right, 0.25).unwrap();
                    let ti = compose_idx_with_threshold(&li, &ri, 0.25, &cfg).unwrap();
                    assert_eq!(
                        bits(&ti.to_mapping()),
                        bits(&t),
                        "threshold shape {k} jobs={jobs} plan={plan}"
                    );
                }
            }
        }
    }

    #[test]
    fn csr_compose_rejects_bad_inputs() {
        let ab = MappingIndex::build(m(1, 2, &[]));
        let cd = MappingIndex::build(m(3, 4, &[]));
        let cfg = ExecConfig::sequential();
        assert!(compose_idx(&ab, &cd, &cfg).is_err());
        let bc = MappingIndex::build(m(2, 3, &[]));
        assert!(compose_idx_with_threshold(&ab, &bc, 1.5, &cfg).is_err());
        assert!(compose_idx_with_threshold(&ab, &bc, f64::NAN, &cfg).is_err());
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let keys: Vec<ObjectId> = (0..100).map(|i| ObjectId(i * 2)).collect();
        for start in [0, 3, 50, 99] {
            for target in [0u64, 1, 7, 120, 198, 199, 500] {
                let got = gallop(&keys, start, ObjectId(target));
                let want = start
                    + keys[start..].partition_point(|&k| k < ObjectId(target));
                assert_eq!(got, want, "start={start} target={target}");
            }
        }
    }

    #[test]
    fn csr_compose_path_matches_vec_path() {
        let mut s = GamStore::in_memory().unwrap();
        let ids: Vec<SourceId> = ["A", "B", "C"]
            .iter()
            .map(|n| {
                s.create_source(n, SourceContent::Gene, SourceStructure::Flat, None)
                    .unwrap()
                    .id
            })
            .collect();
        let mut objs = [Vec::new(), Vec::new(), Vec::new()];
        for (i, &src) in ids.iter().enumerate() {
            for j in 0..6 {
                objs[i].push(s.create_object(src, &format!("o{i}_{j}"), None, None).unwrap());
            }
        }
        for w in 0..2 {
            let rel = s
                .create_source_rel(ids[w], ids[w + 1], RelType::Similarity, None)
                .unwrap();
            for j in 0..6 {
                for k in 0..3 {
                    s.add_association(rel, objs[w][j], objs[w + 1][(j + k) % 6], Some(0.5 + 0.08 * k as f64))
                        .unwrap();
                }
            }
        }
        let cfg = ExecConfig::sequential();
        let vec_path = compose_path(&s, &ids).unwrap();
        let idx_path = compose_path_idx(&s, &ids, &cfg).unwrap();
        assert_eq!(bits(&idx_path.to_mapping()), bits(&vec_path));
        assert_eq!((idx_path.from, idx_path.to, idx_path.rel_type), (vec_path.from, vec_path.to, vec_path.rel_type));

        let vec_t = compose_path_with_threshold(&s, &ids, 0.3).unwrap();
        let idx_t = compose_path_idx_with_threshold(&s, &ids, 0.3, &cfg).unwrap();
        assert_eq!(bits(&idx_t.to_mapping()), bits(&vec_t));

        // degenerate paths rejected identically
        assert!(compose_path_idx(&s, &ids[..1], &cfg).is_err());
        assert!(compose_path_idx_with_threshold(&s, &ids[..1], 0.5, &cfg).is_err());
        assert!(compose_path_idx_with_threshold(&s, &ids, 2.0, &cfg).is_err());
    }
}
