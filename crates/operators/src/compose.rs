//! The `Compose` operation: transitivity of associations.
//!
//! Paper §4.2: "Compose takes as input a so-called mapping path consisting
//! of two or more mappings connecting two sources with each other ... it
//! can use a relational join operation to combine map1: S1↔S2 and map2:
//! S2↔S3, which share a common source S2, and produce as output a mapping
//! between S1 and S3."
//!
//! Evidence combination: the composed association's evidence is the
//! product of the constituents' effective evidence (facts count as 1.0),
//! reflecting the paper's note that composition may weaken plausibility —
//! "the use of mappings containing associations of reduced evidence is a
//! promising subject for future research". Two all-fact inputs therefore
//! compose into fact associations.

use crate::simple::map;
use gam::mapping::Association;
use gam::model::RelType;
use gam::{GamError, GamResult, GamStore, Mapping, SourceId};
use std::collections::HashMap;

/// Compose two in-memory mappings sharing a middle source
/// (`left.to == right.from`). Output pairs are deduplicated keeping the
/// strongest evidence.
pub fn compose(left: &Mapping, right: &Mapping) -> GamResult<Mapping> {
    if left.to != right.from {
        return Err(GamError::Invalid(format!(
            "compose: mappings do not share a source ({} vs {})",
            left.to, right.from
        )));
    }
    // hash join on the shared middle objects; build side = right
    let mut by_mid: HashMap<gam::ObjectId, Vec<&Association>> =
        HashMap::with_capacity(right.pairs.len());
    for assoc in &right.pairs {
        by_mid.entry(assoc.from).or_default().push(assoc);
    }
    let mut out = Mapping::empty(left.from, right.to, RelType::Composed);
    for l in &left.pairs {
        if let Some(matches) = by_mid.get(&l.to) {
            for r in matches {
                let evidence = match (l.evidence, r.evidence) {
                    (None, None) => None, // fact ∘ fact = fact
                    _ => Some(l.effective_evidence() * r.effective_evidence()),
                };
                out.pairs.push(Association {
                    from: l.from,
                    to: r.to,
                    evidence,
                });
            }
        }
    }
    out.dedup();
    Ok(out)
}

/// Compose with an evidence floor: composed associations whose combined
/// evidence falls below `min_evidence` are dropped. This implements the
/// paper's future-work direction — "the use of mappings containing
/// associations of reduced evidence is a promising subject for future
/// research" — as the simplest sound policy: multiplication for
/// combination, thresholding for acceptance. The threshold also bounds the
/// paper's noted risk that "Compose may lead to wrong associations when
/// the transitivity assumption does not hold": low-confidence chains are
/// exactly where transitivity breaks.
pub fn compose_with_threshold(
    left: &Mapping,
    right: &Mapping,
    min_evidence: f64,
) -> GamResult<Mapping> {
    if !(0.0..=1.0).contains(&min_evidence) || min_evidence.is_nan() {
        return Err(GamError::BadEvidence(min_evidence));
    }
    let mut out = compose(left, right)?;
    out.pairs
        .retain(|a| a.effective_evidence() >= min_evidence);
    Ok(out)
}

/// Compose along a path with an evidence floor applied at every step, so
/// implausible chains are pruned early instead of multiplying through.
pub fn compose_path_with_threshold(
    store: &GamStore,
    path: &[SourceId],
    min_evidence: f64,
) -> GamResult<Mapping> {
    if path.len() < 2 {
        return Err(GamError::Invalid(
            "compose path needs at least two sources".into(),
        ));
    }
    let mut acc = map(store, path[0], path[1])?;
    acc.pairs
        .retain(|a| a.effective_evidence() >= min_evidence);
    for window in path[1..].windows(2) {
        let step = map(store, window[0], window[1])?;
        acc = compose_with_threshold(&acc, &step, min_evidence)?;
        if acc.is_empty() {
            break;
        }
    }
    acc.from = path[0];
    acc.to = *path.last().expect("non-empty path");
    if path.len() > 2 {
        acc.rel_type = RelType::Composed;
    }
    Ok(acc)
}

/// Compose along a mapping path of sources, loading each step with `Map`.
/// The path must name at least two sources; a two-source path degenerates
/// to `Map` itself.
pub fn compose_path(store: &GamStore, path: &[SourceId]) -> GamResult<Mapping> {
    if path.len() < 2 {
        return Err(GamError::Invalid(
            "compose path needs at least two sources".into(),
        ));
    }
    let mut acc = map(store, path[0], path[1])?;
    for window in path[1..].windows(2) {
        let step = map(store, window[0], window[1])?;
        acc = compose(&acc, &step)?;
        if acc.is_empty() {
            // no surviving associations; keep going so the result has the
            // right endpoints, but no further joins can add pairs
            break;
        }
    }
    acc.from = path[0];
    acc.to = *path.last().expect("non-empty path");
    if path.len() > 2 {
        acc.rel_type = RelType::Composed;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::model::{SourceContent, SourceStructure};
    use gam::ObjectId;

    fn m(from: u32, to: u32, pairs: &[(u64, u64, Option<f64>)]) -> Mapping {
        Mapping {
            from: SourceId(from),
            to: SourceId(to),
            rel_type: RelType::Fact,
            pairs: pairs
                .iter()
                .map(|&(f, t, e)| Association {
                    from: ObjectId(f),
                    to: ObjectId(t),
                    evidence: e,
                })
                .collect(),
        }
    }

    #[test]
    fn paper_example_unigene_go_via_locuslink() {
        // "the new mapping Unigene<->GO can be derived by combining two
        // existing mappings, Unigene<->LocusLink and LocusLink<->GO"
        let unigene_locuslink = m(1, 2, &[(10, 20, None), (11, 21, None)]);
        let locuslink_go = m(2, 3, &[(20, 30, None), (20, 31, None), (22, 32, None)]);
        let unigene_go = compose(&unigene_locuslink, &locuslink_go).unwrap();
        assert_eq!(unigene_go.from, SourceId(1));
        assert_eq!(unigene_go.to, SourceId(3));
        assert_eq!(unigene_go.rel_type, RelType::Composed);
        assert_eq!(unigene_go.len(), 2);
        assert!(unigene_go.pairs.contains(&Association::fact(ObjectId(10), ObjectId(30))));
        assert!(unigene_go.pairs.contains(&Association::fact(ObjectId(10), ObjectId(31))));
    }

    #[test]
    fn evidence_multiplies() {
        let ab = m(1, 2, &[(1, 2, Some(0.8))]);
        let bc = m(2, 3, &[(2, 3, Some(0.5)), (2, 4, None)]);
        let ac = compose(&ab, &bc).unwrap();
        assert_eq!(ac.len(), 2);
        let to3 = ac.pairs.iter().find(|p| p.to == ObjectId(3)).unwrap();
        assert!((to3.evidence.unwrap() - 0.4).abs() < 1e-12);
        // scored ∘ fact keeps the score
        let to4 = ac.pairs.iter().find(|p| p.to == ObjectId(4)).unwrap();
        assert!((to4.evidence.unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fact_compose_fact_stays_fact() {
        let ab = m(1, 2, &[(1, 2, None)]);
        let bc = m(2, 3, &[(2, 3, None)]);
        let ac = compose(&ab, &bc).unwrap();
        assert_eq!(ac.pairs[0].evidence, None);
    }

    #[test]
    fn duplicate_derivations_keep_best_evidence() {
        // two middle objects both lead from 1 to 9 with different strengths
        let ab = m(1, 2, &[(1, 2, Some(0.9)), (1, 3, Some(0.2))]);
        let bc = m(2, 3, &[(2, 9, Some(0.9)), (3, 9, Some(0.9))]);
        let ac = compose(&ab, &bc).unwrap();
        assert_eq!(ac.len(), 1);
        assert!((ac.pairs[0].evidence.unwrap() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn mismatched_sources_rejected() {
        let ab = m(1, 2, &[]);
        let cd = m(3, 4, &[]);
        assert!(compose(&ab, &cd).is_err());
    }

    #[test]
    fn compose_is_associative() {
        let ab = m(1, 2, &[(1, 10, Some(0.5)), (2, 11, None)]);
        let bc = m(2, 3, &[(10, 20, Some(0.8)), (11, 21, None)]);
        let cd = m(3, 4, &[(20, 30, None), (21, 31, Some(0.5))]);
        let left = compose(&compose(&ab, &bc).unwrap(), &cd).unwrap();
        let right = compose(&ab, &compose(&bc, &cd).unwrap()).unwrap();
        assert_eq!(left.pairs.len(), right.pairs.len());
        for (l, r) in left.pairs.iter().zip(&right.pairs) {
            assert_eq!((l.from, l.to), (r.from, r.to));
            match (l.evidence, r.evidence) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-12),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn threshold_prunes_weak_chains() {
        let ab = m(1, 2, &[(1, 2, Some(0.9)), (5, 6, Some(0.3))]);
        let bc = m(2, 3, &[(2, 3, Some(0.8)), (6, 7, Some(0.9))]);
        // unthresholded: both chains survive (0.72 and 0.27)
        let all = compose(&ab, &bc).unwrap();
        assert_eq!(all.len(), 2);
        // threshold 0.5 keeps only the strong chain
        let strong = compose_with_threshold(&ab, &bc, 0.5).unwrap();
        assert_eq!(strong.len(), 1);
        assert_eq!(strong.pairs[0].from, ObjectId(1));
        // threshold 0 is the identity policy
        let same = compose_with_threshold(&ab, &bc, 0.0).unwrap();
        assert_eq!(same.len(), all.len());
        // facts (evidence 1.0) always survive
        let facts = m(1, 2, &[(1, 2, None)]);
        let more = m(2, 3, &[(2, 3, None)]);
        assert_eq!(compose_with_threshold(&facts, &more, 0.99).unwrap().len(), 1);
        // invalid thresholds rejected
        assert!(compose_with_threshold(&ab, &bc, 1.5).is_err());
        assert!(compose_with_threshold(&ab, &bc, f64::NAN).is_err());
    }

    #[test]
    fn compose_path_in_store() {
        let mut s = GamStore::in_memory().unwrap();
        let ids: Vec<SourceId> = ["Affy", "Unigene", "LocusLink", "GO"]
            .iter()
            .map(|n| {
                s.create_source(n, SourceContent::Gene, SourceStructure::Flat, None)
                    .unwrap()
                    .id
            })
            .collect();
        let mut objs = Vec::new();
        for (i, &src) in ids.iter().enumerate() {
            objs.push(s.create_object(src, &format!("o{i}"), None, None).unwrap());
        }
        for w in ids.windows(2) {
            let rel = s
                .create_source_rel(w[0], w[1], RelType::Fact, None)
                .unwrap();
            let i = ids.iter().position(|x| *x == w[0]).unwrap();
            s.add_association(rel, objs[i], objs[i + 1], None).unwrap();
        }
        let m = compose_path(&s, &ids).unwrap();
        assert_eq!(m.from, ids[0]);
        assert_eq!(m.to, ids[3]);
        assert_eq!(m.rel_type, RelType::Composed);
        assert_eq!(m.len(), 1);
        assert_eq!(m.pairs[0].from, objs[0]);
        assert_eq!(m.pairs[0].to, objs[3]);

        // two-source path is just Map
        let m2 = compose_path(&s, &ids[..2]).unwrap();
        assert_eq!(m2.rel_type, RelType::Fact);
        // degenerate path rejected
        assert!(compose_path(&s, &ids[..1]).is_err());
        // missing step mapping surfaces as NoMapping
        assert!(matches!(
            compose_path(&s, &[ids[0], ids[2]]),
            Err(GamError::NoMapping { .. })
        ));
    }
}
