//! Materialization of derived mappings.
//!
//! Paper §2: "Results of such operators that are of general interest, e.g.
//! new mappings derived from existing mappings, can be materialized in the
//! central database." A materialized Composed or Subsumed mapping becomes
//! an ordinary `SOURCE_REL` + `OBJECT_REL` set and is found by `Map` like
//! any imported mapping, which is how repeated queries are accelerated
//! (ablation A3 in DESIGN.md).

use gam::model::RelType;
use gam::{GamResult, GamStore, Mapping, SourceRelId};

/// Store a derived mapping. `derivation` documents how it was produced
/// (e.g. the mapping path `"Unigene-LocusLink-GO"`). If a mapping of the
/// same derived type with the same derivation already exists between the
/// two sources, it is dropped and rebuilt (re-materialization after new
/// imports). Returns the mapping id and the number of associations stored.
pub fn materialize(
    store: &mut GamStore,
    mapping: &Mapping,
    derivation: &str,
) -> GamResult<(SourceRelId, usize)> {
    debug_assert!(
        mapping.rel_type.is_derived(),
        "only derived mappings are materialized"
    );
    // drop any previous materialization with the same derivation
    for rel in store.source_rels_between(mapping.from, mapping.to)? {
        if rel.rel_type == mapping.rel_type && rel.derivation.as_deref() == Some(derivation) {
            store.delete_source_rel(rel.id)?;
        }
    }
    let rel = store.create_source_rel(mapping.from, mapping.to, mapping.rel_type, Some(derivation))?;
    let mut added = 0;
    store.add_associations_bulk(rel, mapping.pairs.iter().copied(), &mut added)?;
    Ok((rel, added))
}

/// Derive and materialize the Subsumed mapping of a taxonomy source in one
/// step. Returns the mapping id and association count.
pub fn materialize_subsumed(
    store: &mut GamStore,
    source: gam::SourceId,
) -> GamResult<(SourceRelId, usize)> {
    let sub = crate::subsume::subsume(&*store, source)?;
    materialize(store, &sub, "subsumed(IS_A)")
}

/// Compose along a path and materialize the result, recording the path as
/// the derivation. Returns the mapping id and association count.
pub fn materialize_composed(
    store: &mut GamStore,
    path: &[gam::SourceId],
) -> GamResult<(SourceRelId, usize)> {
    let composed = crate::compose::compose_path(&*store, path)?;
    let mut composed = composed;
    composed.rel_type = RelType::Composed;
    let names: GamResult<Vec<String>> = path
        .iter()
        .map(|&s| Ok(store.get_source(s)?.name))
        .collect();
    let derivation = names?.join("-");
    materialize(store, &composed, &derivation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::map;
    use gam::model::{SourceContent, SourceStructure};
    use gam::SourceId;

    fn three_source_store() -> (GamStore, Vec<SourceId>) {
        let mut s = GamStore::in_memory().unwrap();
        let ids: Vec<SourceId> = ["A", "B", "C"]
            .iter()
            .map(|n| {
                s.create_source(n, SourceContent::Gene, SourceStructure::Flat, None)
                    .unwrap()
                    .id
            })
            .collect();
        let a0 = s.create_object(ids[0], "a0", None, None).unwrap();
        let b0 = s.create_object(ids[1], "b0", None, None).unwrap();
        let c0 = s.create_object(ids[2], "c0", None, None).unwrap();
        let c1 = s.create_object(ids[2], "c1", None, None).unwrap();
        let ab = s.create_source_rel(ids[0], ids[1], RelType::Fact, None).unwrap();
        let bc = s.create_source_rel(ids[1], ids[2], RelType::Fact, None).unwrap();
        s.add_association(ab, a0, b0, None).unwrap();
        s.add_association(bc, b0, c0, None).unwrap();
        s.add_association(bc, b0, c1, None).unwrap();
        (s, ids)
    }

    #[test]
    fn composed_mapping_becomes_mappable() {
        let (mut s, ids) = three_source_store();
        // no direct A->C mapping yet
        assert!(map(&s, ids[0], ids[2]).is_err());
        let (rel, n) = materialize_composed(&mut s, &ids).unwrap();
        assert_eq!(n, 2);
        // now Map finds it
        let m = map(&s, ids[0], ids[2]).unwrap();
        assert_eq!(m.len(), 2);
        let stored = s.get_source_rel(rel).unwrap();
        assert_eq!(stored.rel_type, RelType::Composed);
        assert_eq!(stored.derivation.as_deref(), Some("A-B-C"));
    }

    #[test]
    fn rematerialization_replaces_not_duplicates() {
        let (mut s, ids) = three_source_store();
        let (rel1, _) = materialize_composed(&mut s, &ids).unwrap();
        let before = s.cardinalities().unwrap();
        let (rel2, n) = materialize_composed(&mut s, &ids).unwrap();
        assert_ne!(rel1, rel2, "old mapping dropped, new created");
        assert_eq!(n, 2);
        let after = s.cardinalities().unwrap();
        assert_eq!(before.mappings, after.mappings);
        assert_eq!(before.associations, after.associations);
        assert!(s.get_source_rel(rel1).is_err());
    }

    #[test]
    fn subsumed_materialization() {
        let mut s = GamStore::in_memory().unwrap();
        let go = s
            .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
            .unwrap()
            .id;
        let a = s.create_object(go, "GO:1", None, None).unwrap();
        let b = s.create_object(go, "GO:2", None, None).unwrap();
        let c = s.create_object(go, "GO:3", None, None).unwrap();
        let rel = s.create_source_rel(go, go, RelType::IsA, None).unwrap();
        s.add_association(rel, b, a, None).unwrap();
        s.add_association(rel, c, b, None).unwrap();
        let (sub_rel, n) = materialize_subsumed(&mut s, go).unwrap();
        assert_eq!(n, 3);
        let stored = s.get_source_rel(sub_rel).unwrap();
        assert_eq!(stored.rel_type, RelType::Subsumed);
        assert_eq!(stored.derivation.as_deref(), Some("subsumed(IS_A)"));
        // the subsumed mapping is loadable and complete
        let loaded = s.load_mapping(sub_rel).unwrap();
        assert_eq!(loaded.len(), 3);
    }
}
