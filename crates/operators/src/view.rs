//! `GenerateView` — the paper's Figure 5 algorithm, verbatim.
//!
//! ```text
//! GenerateView(S, s, T1, t1, ..., Tm, tm, [AND|OR], {negated})
//!   V = s
//!   For i = 1..m
//!     Determine mapping Mi: S↔Ti           // Map or Compose
//!     mi = RestrictDomain(Mi, s)
//!     mi = RestrictRange(mi, ti)
//!     If negated[Ti]
//!       sî = s \ Domain(mi)
//!       mî = RestrictDomain(Mi, sî)
//!       mi = mî right outer join sî on S   // preserve objects without associations
//!     End If
//!     V = V inner join / left outer join mi on S   // AND / OR
//!   End For
//! ```
//!
//! The result is "a view of m+1 attributes, S, T1, ..., Tm, containing
//! tuples of related objects from the corresponding sources".

use crate::exec::ExecConfig;
use crate::simple::MappingResolver;
use gam::{GamRead, GamResult, MappingIndex, ObjectId, SourceId};
#[cfg(test)]
use gam::GamStore;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// How per-target sub-mappings are combined into the view (paper §4.2:
/// "the mappings can be combined using the logical operators AND or OR").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Inner join: objects must relate to every target.
    And,
    /// Left outer join: objects keep NULL columns for missing targets.
    Or,
}

/// One target column of the requested view.
#[derive(Debug, Clone)]
pub struct TargetSpec {
    /// The target source `Ti`.
    pub target: SourceId,
    /// The relevant target objects `ti`; `None` covers all of `Ti`.
    pub objects: Option<BTreeSet<ObjectId>>,
    /// Whether this target's mapping is negated (`NOT`).
    pub negated: bool,
    /// Optional mapping path for Compose when no direct mapping exists.
    /// Must start at the view's source and end at `target`.
    pub path: Option<Vec<SourceId>>,
    /// Minimum effective evidence for associations to count (facts count
    /// as 1.0). Implements the paper's future-work direction of handling
    /// "mappings containing associations of reduced evidence": weak links
    /// neither produce rows nor block a negation.
    pub min_evidence: Option<f64>,
}

impl TargetSpec {
    /// A plain target covering all of its objects.
    pub fn all(target: SourceId) -> Self {
        TargetSpec {
            target,
            objects: None,
            negated: false,
            path: None,
            min_evidence: None,
        }
    }

    /// Restrict to a subset of target objects.
    pub fn restricted(target: SourceId, objects: BTreeSet<ObjectId>) -> Self {
        TargetSpec {
            target,
            objects: Some(objects),
            negated: false,
            path: None,
            min_evidence: None,
        }
    }

    /// Negate this target.
    pub fn negated(mut self) -> Self {
        self.negated = true;
        self
    }

    /// Use an explicit mapping path.
    pub fn via(mut self, path: Vec<SourceId>) -> Self {
        self.path = Some(path);
        self
    }

    /// Require a minimum effective evidence on this target's associations.
    pub fn min_evidence(mut self, threshold: f64) -> Self {
        self.min_evidence = Some(threshold);
        self
    }
}

/// A complete view request.
#[derive(Debug, Clone)]
pub struct ViewQuery {
    /// The source `S` to be annotated.
    pub source: SourceId,
    /// The relevant source objects `s`; `None` covers all of `S`.
    pub objects: Option<BTreeSet<ObjectId>>,
    /// The targets `T1..Tm`.
    pub targets: Vec<TargetSpec>,
    /// AND or OR combination.
    pub combine: Combine,
}

impl ViewQuery {
    /// A query over all objects of `source`, OR-combined.
    pub fn new(source: SourceId) -> Self {
        ViewQuery {
            source,
            objects: None,
            targets: Vec::new(),
            combine: Combine::Or,
        }
    }

    /// Add a target column.
    pub fn target(mut self, spec: TargetSpec) -> Self {
        self.targets.push(spec);
        self
    }

    /// Set the combine mode.
    pub fn combine(mut self, combine: Combine) -> Self {
        self.combine = combine;
        self
    }

    /// Restrict the source objects.
    pub fn objects(mut self, objects: BTreeSet<ObjectId>) -> Self {
        self.objects = Some(objects);
        self
    }
}

/// The materialized annotation view: one column for the source object and
/// one per target; rows are tuples of related object ids, with `None` for
/// missing (outer-joined or negated) annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationView {
    pub source: SourceId,
    pub targets: Vec<SourceId>,
    /// Rows of arity `1 + targets.len()`. Column 0 (the source object) is
    /// always `Some`.
    pub rows: Vec<Vec<Option<ObjectId>>>,
}

impl AnnotationView {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the view has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Distinct source objects appearing in the view.
    pub fn source_objects(&self) -> BTreeSet<ObjectId> {
        self.rows
            .iter()
            .filter_map(|r| r[0])
            .collect()
    }

    /// Distinct values of a target column (ignoring NULLs). Column index 0
    /// is the first target.
    pub fn target_objects(&self, column: usize) -> BTreeSet<ObjectId> {
        self.rows
            .iter()
            .filter_map(|r| r[column + 1])
            .collect()
    }

    /// Sort rows for deterministic output.
    pub fn sort(&mut self) {
        self.rows.sort();
    }
}

/// Resolve one target column: determine `Mi` (Map or Compose along the
/// explicit path), apply the evidence floor, restrict to `s` and `ti`, and
/// handle negation — everything in Figure 5 up to, but excluding, the
/// AND/OR join fold. The result maps each surviving source object to its
/// annotation values (empty = object present with NULL, e.g. negation).
fn resolve_target(
    store: &dyn GamRead,
    query: &ViewQuery,
    spec: &TargetSpec,
    s: &BTreeSet<ObjectId>,
    resolver: &dyn MappingResolver,
    cfg: &ExecConfig,
) -> GamResult<HashMap<ObjectId, Vec<ObjectId>>> {
    // Determine Mi: S↔Ti, using Map or Compose.
    let mut mi_full = match &spec.path {
        Some(path) => {
            crate::simple::map_or_compose_par(store, query.source, spec.target, path, cfg)?
        }
        None => resolver.resolve(store, query.source, spec.target)?,
    };
    if let Some(threshold) = spec.min_evidence {
        if !(0.0..=1.0).contains(&threshold) || threshold.is_nan() {
            return Err(gam::GamError::BadEvidence(threshold));
        }
        mi_full
            .pairs
            .retain(|a| a.effective_evidence() >= threshold);
    }
    // mi = RestrictRange(RestrictDomain(Mi, s), ti)
    let mut mi = mi_full.restrict_domain(s);
    if let Some(ti) = &spec.objects {
        mi = mi.restrict_range(ti);
    }
    // Negation: preserve exactly the objects without the annotation.
    if spec.negated {
        let covered = mi.domain();
        let s_hat: BTreeSet<ObjectId> = s.difference(&covered).copied().collect();
        let m_hat = mi_full.restrict_domain(&s_hat);
        // right outer join with sî on S: every object of sî appears,
        // with its other associations or NULL
        let mut out: HashMap<ObjectId, Vec<ObjectId>> = HashMap::with_capacity(s_hat.len());
        for assoc in &m_hat.pairs {
            out.entry(assoc.from).or_default().push(assoc.to);
        }
        for &obj in &s_hat {
            out.entry(obj).or_default();
        }
        Ok(out)
    } else {
        let mut out: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
        for assoc in &mi.pairs {
            out.entry(assoc.from).or_default().push(assoc.to);
        }
        Ok(out)
    }
}

/// How [`generate_view_idx`] obtains the CSR index of `Mi: S ↔ Ti`.
/// Implementations can hand out shared, pre-built indexes behind an
/// [`Arc`] — the GenMapper system's versioned cache does exactly that, so
/// repeated views probe one immutable index instead of rebuilding per-call
/// hash maps.
pub trait IndexResolver: Sync {
    /// Produce the canonical index of the mapping oriented `from → to`.
    fn resolve_index(
        &self,
        store: &dyn GamRead,
        from: SourceId,
        to: SourceId,
    ) -> GamResult<Arc<MappingIndex>>;
}

/// Adapter building a fresh [`MappingIndex`] from whatever a plain
/// [`MappingResolver`] returns. Deliberately a wrapper rather than a
/// blanket impl, so resolvers holding pre-built indexes (e.g. a cache)
/// implement [`IndexResolver`] directly and skip the rebuild.
pub struct BuildIndexResolver<'a>(pub &'a dyn MappingResolver);

impl IndexResolver for BuildIndexResolver<'_> {
    fn resolve_index(
        &self,
        store: &dyn GamRead,
        from: SourceId,
        to: SourceId,
    ) -> GamResult<Arc<MappingIndex>> {
        Ok(Arc::new(MappingIndex::build(self.0.resolve(store, from, to)?)))
    }
}

/// One resolved target column in mini-CSR form: `keys` are the surviving
/// source objects (ascending), `offsets[i]..offsets[i + 1]` delimits key
/// `i`'s annotation values. A key with an empty bucket is an object
/// present with NULL (negation semantics) — distinct from an absent key,
/// which the AND fold drops.
pub(crate) struct TargetColumn {
    pub(crate) keys: Vec<ObjectId>,
    pub(crate) offsets: Vec<u32>,
    pub(crate) values: Vec<ObjectId>,
}

impl TargetColumn {
    fn get(&self, obj: ObjectId) -> Option<&[ObjectId]> {
        let i = self.keys.binary_search(&obj).ok()?;
        Some(&self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }
}

/// [`resolve_target`] over a shared CSR index: the same Figure 5 steps,
/// but restriction and negation run as offset-array probes on the
/// immutable index — no per-call `HashMap` is built over `Mi`, and the
/// evidence floor is tested per position during the probe instead of
/// materializing a filtered copy of the mapping. When `cfg.plan`, explicit
/// paths resolve through the planner seam ([`crate::plan::resolve_path_idx`]),
/// sharing composed prefixes across the view's targets via `ctx`.
fn resolve_target_idx(
    store: &dyn GamRead,
    query: &ViewQuery,
    spec: &TargetSpec,
    s: &BTreeSet<ObjectId>,
    resolver: &dyn IndexResolver,
    cfg: &ExecConfig,
    ctx: Option<&crate::plan::ViewContext>,
) -> GamResult<TargetColumn> {
    // Determine Mi: S↔Ti, using Map or Compose.
    let mi: Arc<MappingIndex> = match &spec.path {
        Some(path) => {
            if cfg.plan {
                crate::plan::resolve_path_idx(store, query.source, spec.target, path, cfg, ctx)?
            } else {
                Arc::new(crate::simple::map_or_compose_idx(
                    store,
                    query.source,
                    spec.target,
                    path,
                    cfg,
                )?)
            }
        }
        None => resolver.resolve_index(store, query.source, spec.target)?,
    };
    project_target_column(&mi, spec, s)
}

/// The restriction/negation/floor half of [`resolve_target_idx`]: project
/// an already-resolved `Mi` into its mini-CSR column over the source
/// objects `s`. Split out so the planner's instrumented explain run can
/// reuse it verbatim.
pub(crate) fn project_target_column(
    mi: &MappingIndex,
    spec: &TargetSpec,
    s: &BTreeSet<ObjectId>,
) -> GamResult<TargetColumn> {
    if let Some(threshold) = spec.min_evidence {
        if !(0.0..=1.0).contains(&threshold) || threshold.is_nan() {
            return Err(gam::GamError::BadEvidence(threshold));
        }
    }
    // keep iff effective evidence clears the floor — identical to the
    // `retain` the Vec-based path performs up front
    let keep = |pos: usize| match spec.min_evidence {
        Some(floor) => mi.effective_evidence_at(pos) >= floor,
        None => true,
    };
    let ti = spec.objects.as_ref();
    let mut keys = Vec::new();
    let mut offsets: Vec<u32> = Vec::new();
    let mut values: Vec<ObjectId> = Vec::new();
    if spec.negated {
        // sî = s \ Domain(RestrictRange(RestrictDomain(Mi, s), ti)); each
        // object of sî appears with its other (un-restricted) annotations
        // or an empty bucket (→ NULL row)
        for &obj in s {
            let start = values.len() as u32;
            let mut covered = false;
            if let Some(i) = mi.domain_bucket(obj) {
                covered = mi.fwd_range(i).any(|pos| {
                    keep(pos) && ti.is_none_or(|t| t.contains(&mi.to_at(pos)))
                });
                if !covered {
                    for pos in mi.fwd_range(i) {
                        if keep(pos) {
                            values.push(mi.to_at(pos));
                        }
                    }
                }
            }
            if !covered {
                keys.push(obj);
                offsets.push(start);
            }
        }
    } else {
        // mi = RestrictRange(RestrictDomain(Mi, s), ti)
        for &obj in s {
            if let Some(i) = mi.domain_bucket(obj) {
                let start = values.len() as u32;
                for pos in mi.fwd_range(i) {
                    if keep(pos) {
                        let to = mi.to_at(pos);
                        if ti.is_none_or(|t| t.contains(&to)) {
                            values.push(to);
                        }
                    }
                }
                if values.len() as u32 > start {
                    keys.push(obj);
                    offsets.push(start);
                }
            }
        }
    }
    offsets.push(values.len() as u32);
    Ok(TargetColumn {
        keys,
        offsets,
        values,
    })
}

/// Execute `GenerateView` against a store, resolving mappings with
/// `resolver` (falling back to each target's explicit path when given).
/// Runs sequentially; see [`generate_view_par`].
pub fn generate_view(
    store: &dyn GamRead,
    query: &ViewQuery,
    resolver: &dyn MappingResolver,
) -> GamResult<AnnotationView> {
    generate_view_par(store, query, resolver, &ExecConfig::sequential())
}

/// [`generate_view`] with parallel per-target resolution: each
/// `TargetSpec`'s Map/Compose + restrict pipeline is independent of the
/// others, so all target columns are resolved concurrently on scoped
/// threads; only the final AND/OR join fold runs sequentially in target
/// order, preserving row semantics. Each per-target pipeline is itself the
/// sequential code, so the folded rows — and after the final sort, the
/// whole view — are bit-identical to the sequential result. Errors
/// surface in target order, matching the sequential path.
pub fn generate_view_par(
    store: &dyn GamRead,
    query: &ViewQuery,
    resolver: &dyn MappingResolver,
    cfg: &ExecConfig,
) -> GamResult<AnnotationView> {
    // V = s — start with all given source objects.
    let s: BTreeSet<ObjectId> = match &query.objects {
        Some(set) => set.clone(),
        None => store.object_ids_of(query.source)?.into_iter().collect(),
    };

    let target_jobs = if cfg.jobs > 1 { cfg.jobs.min(query.targets.len()) } else { 1 };
    let resolved: Vec<GamResult<HashMap<ObjectId, Vec<ObjectId>>>> = if target_jobs > 1 {
        // one worker per target (capped at cfg.jobs); the per-target
        // pipelines run their inner joins sequentially to keep the total
        // thread count bounded by cfg.jobs
        let inner = ExecConfig::sequential();
        std::thread::scope(|scope| {
            let handles: Vec<_> = query
                .targets
                .iter()
                .map(|spec| {
                    let s = &s;
                    let inner = &inner;
                    scope.spawn(move || resolve_target(store, query, spec, s, resolver, inner))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .collect()
        })
    } else {
        query
            .targets
            .iter()
            .map(|spec| resolve_target(store, query, spec, &s, resolver, cfg))
            .collect()
    };

    // Fold sequentially, in target order (AND/OR join semantics).
    let mut rows: Vec<Vec<Option<ObjectId>>> = s.iter().map(|&o| vec![Some(o)]).collect();
    for pairs in resolved {
        let pairs = pairs?;
        // V = V inner join / left outer join mi on S.
        let mut next = Vec::with_capacity(rows.len());
        for row in rows {
            // the source column is Some by construction; a row without
            // it carries no join key and can match nothing
            let Some(&Some(key)) = row.first() else {
                continue;
            };
            match pairs.get(&key) {
                Some(values) if !values.is_empty() => {
                    for &v in values {
                        let mut extended = row.clone();
                        extended.push(Some(v));
                        next.push(extended);
                    }
                }
                Some(_) => {
                    // object present with no associations (negated targets)
                    let mut extended = row;
                    extended.push(None);
                    next.push(extended);
                }
                None => match query.combine {
                    Combine::And => {} // inner join drops the row
                    Combine::Or => {
                        let mut extended = row;
                        extended.push(None);
                        next.push(extended);
                    }
                },
            }
        }
        rows = next;
    }

    let mut view = AnnotationView {
        source: query.source,
        targets: query.targets.iter().map(|t| t.target).collect(),
        rows,
    };
    view.sort();
    Ok(view)
}

/// `GenerateView` over CSR indexes: per-target resolution probes shared
/// [`MappingIndex`]es (via `resolver`) instead of rebuilding a `HashMap`
/// per call, with the same parallel per-target scaffolding as
/// [`generate_view_par`]. Output is bit-identical to
/// [`generate_view`]/[`generate_view_par`] with an equivalent resolver,
/// and errors surface in target order exactly like the sequential path.
pub fn generate_view_idx(
    store: &dyn GamRead,
    query: &ViewQuery,
    resolver: &dyn IndexResolver,
    cfg: &ExecConfig,
) -> GamResult<AnnotationView> {
    // V = s — start with all given source objects.
    let s: BTreeSet<ObjectId> = match &query.objects {
        Some(set) => set.clone(),
        None => store.object_ids_of(query.source)?.into_iter().collect(),
    };

    // Planner context: shared path prefixes across this view's targets.
    // A memo hit and a miss produce bit-identical indexes, so sharing is
    // safe even across the concurrently-resolved targets below.
    let ctx = cfg.plan.then(|| crate::plan::ViewContext::new(query));
    let ctx = ctx.as_ref();

    let target_jobs = if cfg.jobs > 1 { cfg.jobs.min(query.targets.len()) } else { 1 };
    let resolved: Vec<GamResult<TargetColumn>> = if target_jobs > 1 {
        let inner = ExecConfig::sequential().with_plan(cfg.plan);
        std::thread::scope(|scope| {
            let handles: Vec<_> = query
                .targets
                .iter()
                .map(|spec| {
                    let s = &s;
                    let inner = &inner;
                    scope.spawn(move || {
                        resolve_target_idx(store, query, spec, s, resolver, inner, ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .collect()
        })
    } else {
        query
            .targets
            .iter()
            .map(|spec| resolve_target_idx(store, query, spec, &s, resolver, cfg, ctx))
            .collect()
    };

    fold_columns(&s, resolved, query)
}

/// The sequential AND/OR join fold over resolved target columns, in target
/// order. Shared by [`generate_view_idx`] and the planner's instrumented
/// explain run.
pub(crate) fn fold_columns(
    s: &BTreeSet<ObjectId>,
    resolved: Vec<GamResult<TargetColumn>>,
    query: &ViewQuery,
) -> GamResult<AnnotationView> {
    let mut rows: Vec<Vec<Option<ObjectId>>> = s.iter().map(|&o| vec![Some(o)]).collect();
    for column in resolved {
        let column = column?;
        let mut next = Vec::with_capacity(rows.len());
        for row in rows {
            // the source column is Some by construction; a row without
            // it carries no join key and can match nothing
            let Some(&Some(key)) = row.first() else {
                continue;
            };
            match column.get(key) {
                Some(values) if !values.is_empty() => {
                    for &v in values {
                        let mut extended = row.clone();
                        extended.push(Some(v));
                        next.push(extended);
                    }
                }
                Some(_) => {
                    // object present with no associations (negated targets)
                    let mut extended = row;
                    extended.push(None);
                    next.push(extended);
                }
                None => match query.combine {
                    Combine::And => {} // inner join drops the row
                    Combine::Or => {
                        let mut extended = row;
                        extended.push(None);
                        next.push(extended);
                    }
                },
            }
        }
        rows = next;
    }

    let mut view = AnnotationView {
        source: query.source,
        targets: query.targets.iter().map(|t| t.target).collect(),
        rows,
    };
    view.sort();
    Ok(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::DirectResolver;
    use gam::model::{RelType, SourceContent, SourceStructure};

    /// Fixture: loci annotated with GO terms and OMIM diseases.
    /// locus l0: go g0, omim o0
    /// locus l1: go g0, g1
    /// locus l2: omim o1
    /// locus l3: (nothing)
    struct Fix {
        store: GamStore,
        s: SourceId,
        go: SourceId,
        omim: SourceId,
        l: Vec<ObjectId>,
        g: Vec<ObjectId>,
        o: Vec<ObjectId>,
    }

    fn fix() -> Fix {
        let mut store = GamStore::in_memory().unwrap();
        let s = store
            .create_source("LocusLink", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let go = store
            .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
            .unwrap()
            .id;
        let omim = store
            .create_source("OMIM", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let l: Vec<ObjectId> = (0..4)
            .map(|i| store.create_object(s, &format!("l{i}"), None, None).unwrap())
            .collect();
        let g: Vec<ObjectId> = (0..2)
            .map(|i| store.create_object(go, &format!("g{i}"), None, None).unwrap())
            .collect();
        let o: Vec<ObjectId> = (0..2)
            .map(|i| store.create_object(omim, &format!("o{i}"), None, None).unwrap())
            .collect();
        let rgo = store.create_source_rel(s, go, RelType::Fact, None).unwrap();
        let rom = store.create_source_rel(s, omim, RelType::Fact, None).unwrap();
        store.add_association(rgo, l[0], g[0], None).unwrap();
        store.add_association(rgo, l[1], g[0], None).unwrap();
        store.add_association(rgo, l[1], g[1], None).unwrap();
        store.add_association(rom, l[0], o[0], None).unwrap();
        store.add_association(rom, l[2], o[1], None).unwrap();
        Fix {
            store,
            s,
            go,
            omim,
            l,
            g,
            o,
        }
    }

    #[test]
    fn empty_target_list_returns_source_subset() {
        let f = fix();
        let view = generate_view(&f.store, &ViewQuery::new(f.s), &DirectResolver).unwrap();
        assert_eq!(view.len(), 4);
        assert_eq!(view.source_objects().len(), 4);
        // restricted
        let q = ViewQuery::new(f.s).objects([f.l[1], f.l[2]].into());
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.source_objects(), [f.l[1], f.l[2]].into());
    }

    #[test]
    fn or_view_pads_missing_annotations() {
        let f = fix();
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::all(f.go))
            .combine(Combine::Or);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        // l0: 1 row, l1: 2 rows, l2: NULL row, l3: NULL row
        assert_eq!(view.len(), 5);
        assert!(view.rows.contains(&vec![Some(f.l[2]), None]));
        assert!(view.rows.contains(&vec![Some(f.l[3]), None]));
        assert!(view.rows.contains(&vec![Some(f.l[1]), Some(f.g[1])]));
        assert_eq!(view.source_objects().len(), 4, "OR preserves all objects");
    }

    #[test]
    fn and_view_requires_all_targets() {
        let f = fix();
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::all(f.go))
            .target(TargetSpec::all(f.omim))
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        // only l0 has both GO and OMIM annotations
        assert_eq!(view.source_objects(), [f.l[0]].into());
        assert_eq!(view.rows, vec![vec![Some(f.l[0]), Some(f.g[0]), Some(f.o[0])]]);
    }

    #[test]
    fn and_is_subset_of_or() {
        let f = fix();
        let base = ViewQuery::new(f.s)
            .target(TargetSpec::all(f.go))
            .target(TargetSpec::all(f.omim));
        let and_view =
            generate_view(&f.store, &base.clone().combine(Combine::And), &DirectResolver).unwrap();
        let or_view = generate_view(&f.store, &base.combine(Combine::Or), &DirectResolver).unwrap();
        for row in &and_view.rows {
            assert!(or_view.rows.contains(row), "AND row {row:?} missing from OR");
        }
        assert!(or_view.source_objects().is_superset(&and_view.source_objects()));
    }

    #[test]
    fn restricted_target_subset() {
        let f = fix();
        // only GO term g1 is of interest
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::restricted(f.go, [f.g[1]].into()))
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.source_objects(), [f.l[1]].into());
    }

    #[test]
    fn negation_partitions_the_source() {
        let f = fix();
        // the paper's canonical query shape: loci NOT associated with OMIM
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::all(f.omim).negated())
            .combine(Combine::And);
        let negated = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(negated.source_objects(), [f.l[1], f.l[3]].into());
        // all negated rows carry NULL in the OMIM column
        assert!(negated.rows.iter().all(|r| r[1].is_none()));

        // positive counterpart
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::all(f.omim))
            .combine(Combine::And);
        let positive = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(positive.source_objects(), [f.l[0], f.l[2]].into());

        // together they partition s
        let union: BTreeSet<ObjectId> = negated
            .source_objects()
            .union(&positive.source_objects())
            .copied()
            .collect();
        assert_eq!(union.len(), 4);
        assert!(negated
            .source_objects()
            .is_disjoint(&positive.source_objects()));
    }

    #[test]
    fn negated_subset_shows_other_annotations() {
        let f = fix();
        // negate only disease o0: objects lacking o0, with their other
        // OMIM annotations preserved (the paper's right outer join)
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::restricted(f.omim, [f.o[0]].into()).negated())
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.source_objects(), [f.l[1], f.l[2], f.l[3]].into());
        // l2 lacks o0 but has o1, which the right outer join preserves
        assert!(view.rows.contains(&vec![Some(f.l[2]), Some(f.o[1])]));
        assert!(view.rows.contains(&vec![Some(f.l[1]), None]));
    }

    #[test]
    fn figure3_shape_multiple_targets_or() {
        // Figure 3 is an OR view over LocusLink with several annotation
        // columns; objects with several GO terms repeat with one row each.
        let f = fix();
        let q = ViewQuery::new(f.s)
            .objects([f.l[0], f.l[1]].into())
            .target(TargetSpec::all(f.go))
            .target(TargetSpec::all(f.omim))
            .combine(Combine::Or);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.targets, vec![f.go, f.omim]);
        // l0: (g0, o0); l1: (g0, NULL), (g1, NULL)
        assert_eq!(view.len(), 3);
        assert!(view.rows.iter().all(|r| r.len() == 3));
        assert_eq!(view.target_objects(0), [f.g[0], f.g[1]].into());
        assert_eq!(view.target_objects(1), [f.o[0]].into());
    }

    #[test]
    fn missing_mapping_propagates() {
        let mut f = fix();
        let lonely = f
            .store
            .create_source("Lonely", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let q = ViewQuery::new(f.s).target(TargetSpec::all(lonely));
        assert!(generate_view(&f.store, &q, &DirectResolver).is_err());
    }

    #[test]
    fn evidence_threshold_filters_weak_links() {
        let mut f = fix();
        // add a scored similarity mapping LocusLink -> GO with one weak
        // and one strong association on locus l3 (otherwise unannotated)
        let sim = f
            .store
            .create_source_rel(f.s, f.go, RelType::Similarity, None)
            .unwrap();
        f.store.add_association(sim, f.l[3], f.g[0], Some(0.2)).unwrap();
        f.store.add_association(sim, f.l[3], f.g[1], Some(0.95)).unwrap();

        // without a threshold, both similarity links surface
        let q = ViewQuery::new(f.s)
            .objects([f.l[3]].into())
            .target(TargetSpec::all(f.go))
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.len(), 2);

        // threshold 0.5 drops the weak link
        let q = ViewQuery::new(f.s)
            .objects([f.l[3]].into())
            .target(TargetSpec::all(f.go).min_evidence(0.5))
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.rows, vec![vec![Some(f.l[3]), Some(f.g[1])]]);

        // threshold above every link: the object no longer counts as
        // annotated, so the negated query now includes it
        let q = ViewQuery::new(f.s)
            .objects([f.l[3]].into())
            .target(TargetSpec::all(f.go).min_evidence(0.99).negated())
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.source_objects(), [f.l[3]].into());

        // facts (evidence-free) always pass thresholds
        let q = ViewQuery::new(f.s)
            .objects([f.l[0]].into())
            .target(TargetSpec::all(f.go).min_evidence(0.99))
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert!(!view.is_empty());

        // invalid threshold is an error
        let q = ViewQuery::new(f.s).target(TargetSpec::all(f.go).min_evidence(1.5));
        assert!(generate_view(&f.store, &q, &DirectResolver).is_err());
    }

    #[test]
    fn parallel_view_is_bit_identical() {
        let f = fix();
        let queries = [
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go))
                .target(TargetSpec::all(f.omim))
                .combine(Combine::Or),
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go))
                .target(TargetSpec::all(f.omim))
                .combine(Combine::And),
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go))
                .target(TargetSpec::all(f.omim).negated())
                .combine(Combine::And),
            ViewQuery::new(f.s)
                .objects([f.l[0], f.l[1], f.l[2]].into())
                .target(TargetSpec::restricted(f.go, [f.g[1]].into()))
                .target(TargetSpec::all(f.omim))
                .combine(Combine::Or),
        ];
        for (i, q) in queries.iter().enumerate() {
            let seq = generate_view(&f.store, q, &DirectResolver).unwrap();
            for jobs in [2, 4, 8] {
                let cfg = ExecConfig {
                    jobs,
                    parallel_threshold: 0,
                    plan: true,
                };
                let par = generate_view_par(&f.store, q, &DirectResolver, &cfg).unwrap();
                assert_eq!(par, seq, "query {i} jobs={jobs}");
            }
        }
    }

    #[test]
    fn parallel_view_propagates_first_error_in_target_order() {
        let mut f = fix();
        let lonely = f
            .store
            .create_source("Lonely", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        // two failing targets: the reported error must name the first one
        // (an invalid threshold on GO), matching the sequential path
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::all(f.go).min_evidence(7.0))
            .target(TargetSpec::all(lonely));
        let cfg = ExecConfig {
            jobs: 4,
            parallel_threshold: 0,
            plan: true,
        };
        let seq_err = generate_view(&f.store, &q, &DirectResolver).unwrap_err();
        let par_err = generate_view_par(&f.store, &q, &DirectResolver, &cfg).unwrap_err();
        assert_eq!(par_err.to_string(), seq_err.to_string());
        assert!(matches!(par_err, gam::GamError::BadEvidence(_)));
    }

    #[test]
    fn explicit_path_compose_in_view() {
        let mut f = fix();
        // add a second hop: OMIM -> Disease registry; view LocusLink ->
        // registry via the explicit path
        let reg = f
            .store
            .create_source("Registry", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let r0 = f.store.create_object(reg, "r0", None, None).unwrap();
        let rel = f
            .store
            .create_source_rel(f.omim, reg, RelType::Fact, None)
            .unwrap();
        f.store.add_association(rel, f.o[0], r0, None).unwrap();
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::all(reg).via(vec![f.s, f.omim, reg]))
            .combine(Combine::And);
        let view = generate_view(&f.store, &q, &DirectResolver).unwrap();
        assert_eq!(view.rows, vec![vec![Some(f.l[0]), Some(r0)]]);

        // the CSR path composes along the same explicit path
        let idx_view =
            generate_view_idx(&f.store, &q, &BuildIndexResolver(&DirectResolver), &ExecConfig::sequential())
                .unwrap();
        assert_eq!(idx_view, view);
    }

    #[test]
    fn csr_view_is_bit_identical_to_reference() {
        let mut f = fix();
        // add a scored mapping so evidence floors have something to cut
        let sim = f
            .store
            .create_source_rel(f.s, f.go, RelType::Similarity, None)
            .unwrap();
        f.store.add_association(sim, f.l[3], f.g[0], Some(0.2)).unwrap();
        f.store.add_association(sim, f.l[3], f.g[1], Some(0.95)).unwrap();
        let queries = [
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go))
                .target(TargetSpec::all(f.omim))
                .combine(Combine::Or),
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go))
                .target(TargetSpec::all(f.omim))
                .combine(Combine::And),
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go))
                .target(TargetSpec::all(f.omim).negated())
                .combine(Combine::And),
            ViewQuery::new(f.s)
                .objects([f.l[0], f.l[1], f.l[2]].into())
                .target(TargetSpec::restricted(f.go, [f.g[1]].into()))
                .target(TargetSpec::all(f.omim))
                .combine(Combine::Or),
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go).min_evidence(0.5))
                .combine(Combine::And),
            ViewQuery::new(f.s)
                .target(TargetSpec::all(f.go).min_evidence(0.99).negated())
                .combine(Combine::And),
            ViewQuery::new(f.s)
                .target(TargetSpec::restricted(f.omim, [f.o[0]].into()).negated())
                .combine(Combine::And),
            ViewQuery::new(f.s).combine(Combine::And),
        ];
        let resolver = BuildIndexResolver(&DirectResolver);
        for (i, q) in queries.iter().enumerate() {
            let reference = generate_view(&f.store, q, &DirectResolver).unwrap();
            let seq = generate_view_idx(&f.store, q, &resolver, &ExecConfig::sequential()).unwrap();
            assert_eq!(seq, reference, "query {i} sequential");
            for jobs in [2, 4, 8] {
                let cfg = ExecConfig {
                    jobs,
                    parallel_threshold: 0,
                    plan: true,
                };
                let par = generate_view_idx(&f.store, q, &resolver, &cfg).unwrap();
                assert_eq!(par, reference, "query {i} jobs={jobs}");
            }
        }
    }

    #[test]
    fn csr_view_propagates_errors_in_target_order() {
        let mut f = fix();
        let lonely = f
            .store
            .create_source("Lonely", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let q = ViewQuery::new(f.s)
            .target(TargetSpec::all(f.go).min_evidence(7.0))
            .target(TargetSpec::all(lonely));
        let resolver = BuildIndexResolver(&DirectResolver);
        let reference = generate_view(&f.store, &q, &DirectResolver).unwrap_err();
        for jobs in [1, 4] {
            let cfg = ExecConfig {
                jobs,
                parallel_threshold: 0,
                plan: true,
            };
            let err = generate_view_idx(&f.store, &q, &resolver, &cfg).unwrap_err();
            assert_eq!(err.to_string(), reference.to_string(), "jobs={jobs}");
            assert!(matches!(err, gam::GamError::BadEvidence(_)));
        }
    }
}
