//! Derivation of `Subsumed` relationships from a taxonomy's IS_A structure.
//!
//! Paper §3: "Subsumed relationships are automatically derived from the
//! IS_A structure of a source and contain the associations of a term in a
//! taxonomy to all subsumed terms in the term hierarchy. This is motivated
//! by the fact that if a gene is annotated with a particular GO term, it is
//! often necessary to consider the subsumed terms for more detailed gene
//! functions."
//!
//! The result maps each term to every *descendant* (subsumed term) in the
//! IS_A DAG — the transitive closure of the inverted IS_A mapping,
//! excluding the reflexive pairs.

use gam::mapping::Association;
use gam::model::RelType;
use gam::{GamError, GamRead, GamResult, Mapping, ObjectId, SourceId};
#[cfg(test)]
use gam::GamStore;
use std::collections::{BTreeMap, BTreeSet};

/// Derive the Subsumed mapping of a Network source from its stored IS_A
/// mapping. Fails with [`GamError::Invalid`] if the IS_A structure is
/// cyclic (a corrupt taxonomy) or missing.
pub fn subsume(store: &dyn GamRead, source: SourceId) -> GamResult<Mapping> {
    let (rel, _) = store
        .find_source_rel(source, source, Some(RelType::IsA))?
        .ok_or_else(|| GamError::Invalid(format!("source {source} has no IS_A structure")))?;
    let isa = store.load_mapping(rel.id)?;
    subsume_isa(&isa)
}

/// Pure closure over an in-memory IS_A mapping (`child → parent` pairs).
pub fn subsume_isa(isa: &Mapping) -> GamResult<Mapping> {
    // children[p] = direct children of p
    let mut children: BTreeMap<ObjectId, Vec<ObjectId>> = BTreeMap::new();
    let mut nodes: BTreeSet<ObjectId> = BTreeSet::new();
    for assoc in &isa.pairs {
        children.entry(assoc.to).or_default().push(assoc.from);
        nodes.insert(assoc.from);
        nodes.insert(assoc.to);
    }

    // Detect cycles with an iterative three-color DFS over the child
    // relation; a cyclic taxonomy would make the closure infinite.
    let mut color: BTreeMap<ObjectId, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
    for &start in &nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack = vec![(start, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                color.insert(node, 2);
                continue;
            }
            match color.get(&node).copied().unwrap_or(0) {
                1 => return Err(GamError::Invalid("IS_A structure contains a cycle".into())),
                2 => continue,
                _ => {}
            }
            color.insert(node, 1);
            stack.push((node, true));
            if let Some(kids) = children.get(&node) {
                for &kid in kids {
                    match color.get(&kid).copied().unwrap_or(0) {
                        1 => {
                            return Err(GamError::Invalid(
                                "IS_A structure contains a cycle".into(),
                            ))
                        }
                        2 => {}
                        _ => stack.push((kid, false)),
                    }
                }
            }
        }
    }

    // Closure: descendants(t) = union over children c of {c} ∪ descendants(c).
    // Process in reverse topological order via memoized DFS.
    let mut memo: BTreeMap<ObjectId, BTreeSet<ObjectId>> = BTreeMap::new();
    fn descendants(
        node: ObjectId,
        children: &BTreeMap<ObjectId, Vec<ObjectId>>,
        memo: &mut BTreeMap<ObjectId, BTreeSet<ObjectId>>,
    ) -> BTreeSet<ObjectId> {
        if let Some(d) = memo.get(&node) {
            return d.clone();
        }
        let mut out = BTreeSet::new();
        if let Some(kids) = children.get(&node) {
            for &kid in kids {
                out.insert(kid);
                out.extend(descendants(kid, children, memo));
            }
        }
        memo.insert(node, out.clone());
        out
    }

    let mut result = Mapping::empty(isa.from, isa.from, RelType::Subsumed);
    for &node in &nodes {
        for desc in descendants(node, &children, &mut memo) {
            result.pairs.push(Association::fact(node, desc));
        }
    }
    result.sort();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gam::model::{SourceContent, SourceStructure};

    fn isa(pairs: &[(u64, u64)]) -> Mapping {
        Mapping {
            from: SourceId(1),
            to: SourceId(1),
            rel_type: RelType::IsA,
            pairs: pairs
                .iter()
                .map(|&(c, p)| Association::fact(ObjectId(c), ObjectId(p)))
                .collect(),
        }
    }

    #[test]
    fn chain_closure() {
        // 3 IS_A 2 IS_A 1
        let s = subsume_isa(&isa(&[(3, 2), (2, 1)])).unwrap();
        assert_eq!(s.rel_type, RelType::Subsumed);
        let pairs: Vec<(u64, u64)> = s.pairs.iter().map(|a| (a.from.0, a.to.0)).collect();
        assert_eq!(pairs, vec![(1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn dag_with_multiple_parents() {
        //    1   2
        //     \ / \
        //      3   4
        //      |
        //      5
        let s = subsume_isa(&isa(&[(3, 1), (3, 2), (4, 2), (5, 3)])).unwrap();
        let pairs: BTreeSet<(u64, u64)> = s.pairs.iter().map(|a| (a.from.0, a.to.0)).collect();
        let expected: BTreeSet<(u64, u64)> =
            [(1, 3), (1, 5), (2, 3), (2, 4), (2, 5), (3, 5)].into();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn closure_properties() {
        let s = subsume_isa(&isa(&[(3, 2), (2, 1), (4, 2)])).unwrap();
        let set: BTreeSet<(ObjectId, ObjectId)> =
            s.pairs.iter().map(|a| (a.from, a.to)).collect();
        // irreflexive
        assert!(set.iter().all(|(a, b)| a != b));
        // transitive
        for &(a, b) in &set {
            for &(c, d) in &set {
                if b == c {
                    assert!(set.contains(&(a, d)), "missing ({a}, {d})");
                }
            }
        }
        // no duplicates
        assert_eq!(set.len(), s.pairs.len());
    }

    #[test]
    fn cycle_detected() {
        assert!(subsume_isa(&isa(&[(1, 2), (2, 3), (3, 1)])).is_err());
        assert!(subsume_isa(&isa(&[(1, 2), (2, 1)])).is_err());
    }

    #[test]
    fn empty_isa_closure_is_empty() {
        let s = subsume_isa(&isa(&[])).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn store_integration() {
        let mut s = GamStore::in_memory().unwrap();
        let go = s
            .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
            .unwrap()
            .id;
        let root = s.create_object(go, "GO:1", None, None).unwrap();
        let mid = s.create_object(go, "GO:2", None, None).unwrap();
        let leaf = s.create_object(go, "GO:3", None, None).unwrap();
        let rel = s.create_source_rel(go, go, RelType::IsA, None).unwrap();
        s.add_association(rel, mid, root, None).unwrap();
        s.add_association(rel, leaf, mid, None).unwrap();

        let sub = subsume(&s, go).unwrap();
        assert_eq!(sub.len(), 3);
        assert!(sub.pairs.contains(&Association::fact(root, leaf)));

        // source without IS_A fails
        let flat = s
            .create_source("Flat", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        assert!(subsume(&s, flat).is_err());
    }
}
