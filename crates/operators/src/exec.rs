//! Execution configuration and the scoped-thread partitioning primitive
//! shared by the parallel operators.
//!
//! The mapping algebra parallelizes along two independent axes:
//!
//! * **within one join** — `Compose` chunks its probe side across a worker
//!   pool over a shared build-side index ([`crate::compose::compose_par`]);
//! * **across view columns** — `GenerateView` resolves each target's
//!   Map/Compose + restrict pipeline concurrently and only folds the final
//!   AND/OR join sequentially ([`crate::view::generate_view_par`]).
//!
//! Both axes preserve bit-identical output: partitions are contiguous
//! in-order slices of the probe side, per-worker buffers are merged back in
//! partition order, and the final `Mapping::dedup` / row sort are the same
//! total orders the sequential path applies. Determinism therefore does not
//! depend on thread scheduling.
//!
//! Workers are plain `std::thread::scope` threads; small inputs fall back
//! to the sequential code below [`ExecConfig::parallel_threshold`], where
//! thread spawn overhead would dominate the join itself.

/// Tunables for parallel operator execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum number of worker threads per operation. `0` and `1` both
    /// mean fully sequential execution.
    pub jobs: usize,
    /// Probe-side size (in associations) below which a join runs
    /// sequentially even when `jobs > 1`.
    pub parallel_threshold: usize,
    /// Route `compose_path_idx*` / `generate_view_idx` through the
    /// cost-based planner (`crate::plan`): stats-driven join strategy,
    /// floor/restrict pushdown, fact-chain reordering, and shared path
    /// prefixes across a view's targets. Output is bit-identical either
    /// way (pinned by `tests/plan_prop.rs`); `false` preserves literal
    /// caller-order execution and is what the planner itself uses as the
    /// equivalence baseline.
    pub plan: bool,
}

/// Default probe-side size under which parallelism is not worth the spawn
/// cost. Lives in the planner's constants table (`plan::cost`) next to the
/// other cutovers; re-exported here for the config that carries it.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = crate::plan::cost::PARALLEL_THRESHOLD;

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            jobs: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            plan: true,
        }
    }
}

impl ExecConfig {
    /// Fully sequential execution. The planner stays on: strategy choice
    /// and rewrites are orthogonal to the worker count.
    pub fn sequential() -> Self {
        ExecConfig {
            jobs: 1,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            plan: true,
        }
    }

    /// A config with an explicit worker count and the default threshold.
    pub fn with_jobs(jobs: usize) -> Self {
        ExecConfig {
            jobs,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            plan: true,
        }
    }

    /// This config with the planner toggled.
    pub fn with_plan(mut self, plan: bool) -> Self {
        self.plan = plan;
        self
    }

    /// Worker count actually used for a probe side of `work` items.
    pub fn effective_jobs(&self, work: usize) -> usize {
        if self.jobs <= 1 || work < self.parallel_threshold {
            1
        } else {
            self.jobs.min(work)
        }
    }
}

/// Split `items` into at most `jobs` contiguous chunks, run `f` on each
/// chunk on its own scoped thread, and return the per-chunk results **in
/// chunk order** — the caller can concatenate them and obtain exactly the
/// sequence a sequential left-to-right pass would have produced.
pub fn partitioned<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return vec![f(items)];
    }
    let chunk_size = items.len().div_ceil(jobs.min(items.len()));
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_jobs_respects_threshold() {
        let cfg = ExecConfig {
            jobs: 8,
            parallel_threshold: 100,
            plan: true,
        };
        assert_eq!(cfg.effective_jobs(99), 1);
        assert_eq!(cfg.effective_jobs(100), 8);
        assert_eq!(cfg.effective_jobs(1_000_000), 8);
        assert_eq!(ExecConfig::sequential().effective_jobs(1_000_000), 1);
        // never more workers than items
        let tiny = ExecConfig {
            jobs: 8,
            parallel_threshold: 0,
            plan: true,
        };
        assert_eq!(tiny.effective_jobs(3), 3);
        // jobs = 0 behaves like 1
        assert_eq!(ExecConfig { jobs: 0, parallel_threshold: 0, plan: true }.effective_jobs(10), 1);
    }

    #[test]
    fn partitioned_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for jobs in [1, 2, 3, 7, 16] {
            let parts = partitioned(&items, jobs, |chunk| {
                chunk.iter().map(|x| x * 2).collect::<Vec<_>>()
            });
            let flat: Vec<u64> = parts.into_iter().flatten().collect();
            let seq: Vec<u64> = items.iter().map(|x| x * 2).collect();
            assert_eq!(flat, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn partitioned_handles_empty_and_single() {
        let empty: Vec<u64> = Vec::new();
        let parts = partitioned(&empty, 4, |c| c.len());
        assert_eq!(parts, vec![0]);
        let one = [42u64];
        let parts = partitioned(&one, 4, |c| c.to_vec());
        assert_eq!(parts.concat(), vec![42]);
    }
}
