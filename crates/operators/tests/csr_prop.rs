//! Property tests pinning every CSR operator bit-identical to the
//! `Vec<Association>`-based reference implementations, across random
//! mapping shapes (empty, 1:1, skewed N:M) and all worker counts.
//!
//! "Bit-identical" is literal: evidence values are compared via
//! `f64::to_bits`, so even a sign-of-zero or NaN-payload divergence — or a
//! fact (`None`) silently becoming an explicit `Some(1.0)` — fails.

use gam::model::{RelType, SourceContent, SourceStructure};
use gam::{Association, GamStore, Mapping, MappingIndex, ObjectId, SourceId};
use operators::{
    compose, compose_idx, compose_idx_with_threshold, compose_with_threshold, generate_view,
    generate_view_idx, BuildIndexResolver, Combine, DirectResolver, ExecConfig, TargetSpec,
    ViewQuery,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn bits(m: &Mapping) -> Vec<(ObjectId, ObjectId, Option<u64>)> {
    m.pairs
        .iter()
        .map(|a| (a.from, a.to, a.evidence.map(f64::to_bits)))
        .collect()
}

fn arb_evidence() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        2 => Just(None),
        1 => Just(Some(1.0)), // collides with a fact's effective evidence
        4 => (0u32..=1000).prop_map(|m| Some(f64::from(m) / 1000.0)),
    ]
}

/// Mapping shapes: (domain size, range size) pairs covering empty, 1:1 and
/// skewed N:M fan-outs in both directions.
fn arb_shape() -> impl Strategy<Value = (u64, u64)> {
    prop_oneof![
        Just((1, 1)),
        Just((40, 40)),
        Just((3, 120)),
        Just((120, 3)),
        Just((200, 8)),
    ]
}

fn arb_mapping(
    from: u32,
    to: u32,
    max_len: usize,
) -> impl Strategy<Value = Mapping> {
    arb_shape().prop_flat_map(move |(dom, rng)| {
        prop::collection::vec(((0..dom), (0..rng), arb_evidence()), 0..max_len).prop_map(
            move |raw| Mapping {
                from: SourceId(from),
                to: SourceId(to),
                rel_type: RelType::Similarity,
                pairs: raw
                    .into_iter()
                    .map(|(f, t, e)| Association {
                        from: ObjectId(f),
                        to: ObjectId(t),
                        evidence: e,
                    })
                    .collect(),
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merge-join (sequential) and partitioned hash-join (parallel)
    /// Compose over CSR indexes reproduce the Vec-based hash join bit for
    /// bit, with and without an evidence floor.
    #[test]
    fn csr_compose_matches_vec_reference(
        left in arb_mapping(1, 2, 300),
        right in arb_mapping(2, 3, 300),
        floor in prop_oneof![Just(None), (0u32..=1000).prop_map(|m| Some(f64::from(m) / 1000.0))],
    ) {
        let li = MappingIndex::build(left.clone());
        let ri = MappingIndex::build(right.clone());
        // the CSR build canonicalizes its input, so the reference composes
        // the same canonical mappings
        let (lc, rc) = (li.to_mapping(), ri.to_mapping());
        for jobs in [1usize, 2, 3, 8] {
            let cfg = ExecConfig { jobs, parallel_threshold: 0, plan: true };
            match floor {
                None => {
                    let reference = compose(&lc, &rc).unwrap();
                    let idx = compose_idx(&li, &ri, &cfg).unwrap();
                    prop_assert_eq!(bits(&idx.to_mapping()), bits(&reference), "jobs={}", jobs);
                    prop_assert_eq!(
                        (idx.from, idx.to, idx.rel_type),
                        (reference.from, reference.to, reference.rel_type)
                    );
                }
                Some(f) => {
                    let reference = compose_with_threshold(&lc, &rc, f).unwrap();
                    let idx = compose_idx_with_threshold(&li, &ri, f, &cfg).unwrap();
                    prop_assert_eq!(bits(&idx.to_mapping()), bits(&reference), "floor={} jobs={}", f, jobs);
                }
            }
        }
    }

    /// Domain/Range and the restrict operators as binary searches over the
    /// CSR offset arrays equal the Vec filters, in order and bit for bit.
    #[test]
    fn csr_restricts_match_vec_reference(
        mapping in arb_mapping(1, 2, 300),
        picks in prop::collection::vec(0u64..240, 0..40),
        floor in 0u32..=1000,
    ) {
        let idx = MappingIndex::build(mapping.clone());
        let canonical = idx.to_mapping();
        prop_assert_eq!(idx.domain(), canonical.domain());
        prop_assert_eq!(idx.range(), canonical.range());
        prop_assert_eq!(idx.len(), canonical.len());

        let subset: BTreeSet<ObjectId> = picks.iter().map(|&p| ObjectId(p)).collect();
        prop_assert_eq!(
            bits(&idx.restrict_domain(&subset)),
            bits(&canonical.restrict_domain(&subset))
        );
        prop_assert_eq!(
            bits(&idx.restrict_range(&subset)),
            bits(&canonical.restrict_range(&subset))
        );
        // full-domain restriction is identity
        prop_assert_eq!(
            bits(&idx.restrict_domain(&canonical.domain())),
            bits(&canonical)
        );

        let f = f64::from(floor) / 1000.0;
        let mut retained = canonical.clone();
        retained.pairs.retain(|a| a.effective_evidence() >= f);
        prop_assert_eq!(bits(&idx.filter_evidence(f).to_mapping()), bits(&retained));

        // round trip through the index is lossless
        prop_assert_eq!(bits(&MappingIndex::build(mapping).to_mapping()), bits(&canonical));
    }
}

/// One randomly-annotated two-target store for the view property.
fn view_store(
    edges_go: &[(usize, usize, Option<f64>)],
    edges_om: &[(usize, usize, Option<f64>)],
) -> (GamStore, SourceId, SourceId, SourceId, Vec<ObjectId>, Vec<ObjectId>, Vec<ObjectId>) {
    let mut store = GamStore::in_memory().unwrap();
    let s = store
        .create_source("S", SourceContent::Gene, SourceStructure::Flat, None)
        .unwrap()
        .id;
    let go = store
        .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
        .unwrap()
        .id;
    let om = store
        .create_source("OMIM", SourceContent::Other, SourceStructure::Flat, None)
        .unwrap()
        .id;
    let so: Vec<ObjectId> = (0..8)
        .map(|i| store.create_object(s, &format!("s{i}"), None, None).unwrap())
        .collect();
    let go_o: Vec<ObjectId> = (0..6)
        .map(|i| store.create_object(go, &format!("g{i}"), None, None).unwrap())
        .collect();
    let om_o: Vec<ObjectId> = (0..6)
        .map(|i| store.create_object(om, &format!("o{i}"), None, None).unwrap())
        .collect();
    let rgo = store
        .create_source_rel(s, go, RelType::Similarity, None)
        .unwrap();
    let rom = store
        .create_source_rel(s, om, RelType::Similarity, None)
        .unwrap();
    let mut seen = BTreeSet::new();
    for &(i, j, e) in edges_go {
        if seen.insert((0, i % 8, j % 6)) {
            store
                .add_association(rgo, so[i % 8], go_o[j % 6], e)
                .unwrap();
        }
    }
    for &(i, j, e) in edges_om {
        if seen.insert((1, i % 8, j % 6)) {
            store
                .add_association(rom, so[i % 8], om_o[j % 6], e)
                .unwrap();
        }
    }
    (store, s, go, om, so, go_o, om_o)
}

fn arb_edges() -> impl Strategy<Value = Vec<(usize, usize, Option<f64>)>> {
    prop::collection::vec((0usize..8, 0usize..6, arb_evidence()), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `GenerateView` probing per-target CSR indexes equals the Figure 5
    /// reference over per-call hash maps — across AND/OR, negation,
    /// target-object restriction, evidence floors, and all worker counts.
    #[test]
    fn csr_view_matches_vec_reference(
        edges_go in arb_edges(),
        edges_om in arb_edges(),
        negate_first in any::<bool>(),
        negate_second in any::<bool>(),
        and_combine in any::<bool>(),
        restrict_om in any::<bool>(),
        floor in prop_oneof![Just(None), (0u32..=1000).prop_map(|m| Some(f64::from(m) / 1000.0))],
    ) {
        let (store, s, go, om, _so, _go_o, om_o) = view_store(&edges_go, &edges_om);
        let mut t1 = TargetSpec::all(go);
        if negate_first {
            t1 = t1.negated();
        }
        if let Some(f) = floor {
            t1 = t1.min_evidence(f);
        }
        let mut t2 = if restrict_om {
            TargetSpec::restricted(om, [om_o[0], om_o[2], om_o[4]].into())
        } else {
            TargetSpec::all(om)
        };
        if negate_second {
            t2 = t2.negated();
        }
        let q = ViewQuery::new(s)
            .target(t1)
            .target(t2)
            .combine(if and_combine { Combine::And } else { Combine::Or });

        let reference = generate_view(&store, &q, &DirectResolver).unwrap();
        let resolver = BuildIndexResolver(&DirectResolver);
        for jobs in [1usize, 2, 4] {
            let cfg = ExecConfig { jobs, parallel_threshold: 0, plan: true };
            let idx_view = generate_view_idx(&store, &q, &resolver, &cfg).unwrap();
            prop_assert_eq!(&idx_view, &reference, "jobs={}", jobs);
        }
    }
}
