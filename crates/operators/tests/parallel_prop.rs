//! Property tests for the parallel mapping algebra: on arbitrary random
//! mappings, the partitioned parallel `Compose` / `GenerateView` must be
//! **bit-identical** to the sequential implementations — same pairs, same
//! evidence after dedup, same rows. This is the determinism contract the
//! parallel executor documents in `operators::exec`.

use gam::mapping::{Association, Mapping};
use gam::model::{RelType, SourceContent, SourceStructure};
use gam::{GamStore, ObjectId, SourceId};
use operators::{
    compose, compose_par, compose_with_threshold, compose_with_threshold_par, generate_view,
    generate_view_par, Combine, DirectResolver, ExecConfig, TargetSpec, ViewQuery,
};
use proptest::prelude::*;

/// An arbitrary association list over small id spaces, so duplicates and
/// high fan-out (the hard cases for dedup determinism) are common.
fn arb_pairs(max_len: usize) -> impl Strategy<Value = Vec<(u64, u64, Option<u32>)>> {
    prop::collection::vec(
        (0u64..64, 0u64..48, prop::option::of(0u32..=1000)),
        0..max_len,
    )
}

fn mapping(from: u32, to: u32, pairs: &[(u64, u64, Option<u32>)]) -> Mapping {
    Mapping {
        from: SourceId(from),
        to: SourceId(to),
        rel_type: RelType::Fact,
        pairs: pairs
            .iter()
            .map(|&(f, t, e)| Association {
                from: ObjectId(f),
                to: ObjectId(t),
                evidence: e.map(|m| f64::from(m) / 1000.0),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parallel compose ≡ sequential compose, for any worker count.
    #[test]
    fn parallel_compose_equals_sequential(
        left in arb_pairs(400),
        right in arb_pairs(400),
        jobs in 2usize..9,
    ) {
        let l = mapping(1, 2, &left);
        let r = mapping(2, 3, &right);
        let seq = compose(&l, &r).unwrap();
        let cfg = ExecConfig { jobs, parallel_threshold: 0, plan: true };
        let par = compose_par(&l, &r, &cfg).unwrap();
        // bit-identical: same pairs in the same order, evidence compared
        // by bit pattern rather than float tolerance
        prop_assert_eq!(par.pairs.len(), seq.pairs.len());
        for (p, s) in par.pairs.iter().zip(&seq.pairs) {
            prop_assert_eq!((p.from, p.to), (s.from, s.to));
            prop_assert_eq!(
                p.evidence.map(f64::to_bits),
                s.evidence.map(f64::to_bits)
            );
        }
        prop_assert_eq!(par, seq);
    }

    /// the probe-time evidence floor ≡ compose-then-retain, sequential and
    /// parallel alike.
    #[test]
    fn threshold_in_probe_equals_retain(
        left in arb_pairs(300),
        right in arb_pairs(300),
        floor_millis in 0u32..=1000,
        jobs in 1usize..9,
    ) {
        let l = mapping(1, 2, &left);
        let r = mapping(2, 3, &right);
        let floor = f64::from(floor_millis) / 1000.0;
        let mut reference = compose(&l, &r).unwrap();
        reference.pairs.retain(|a| a.effective_evidence() >= floor);
        let cfg = ExecConfig { jobs, parallel_threshold: 0, plan: true };
        let seq = compose_with_threshold(&l, &r, floor).unwrap();
        let par = compose_with_threshold_par(&l, &r, floor, &cfg).unwrap();
        prop_assert_eq!(&seq, &reference);
        prop_assert_eq!(&par, &reference);
    }

    /// parallel generate_view ≡ sequential generate_view over random
    /// stores and query shapes (AND/OR, negation, restriction, floors).
    #[test]
    fn parallel_view_equals_sequential(
        go_pairs in arb_pairs(150),
        omim_pairs in arb_pairs(150),
        and_mode in any::<bool>(),
        negate_second in any::<bool>(),
        floor_millis in prop::option::of(0u32..=1000),
        jobs in 2usize..9,
    ) {
        let mut store = GamStore::in_memory().unwrap();
        let s = store
            .create_source("S", SourceContent::Gene, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let go = store
            .create_source("GO", SourceContent::Other, SourceStructure::Network, None)
            .unwrap()
            .id;
        let omim = store
            .create_source("OMIM", SourceContent::Other, SourceStructure::Flat, None)
            .unwrap()
            .id;
        let src_objs: Vec<ObjectId> = (0..64)
            .map(|i| store.create_object(s, &format!("s{i}"), None, None).unwrap())
            .collect();
        let go_objs: Vec<ObjectId> = (0..48)
            .map(|i| store.create_object(go, &format!("g{i}"), None, None).unwrap())
            .collect();
        let omim_objs: Vec<ObjectId> = (0..48)
            .map(|i| store.create_object(omim, &format!("o{i}"), None, None).unwrap())
            .collect();
        let rel_go = store.create_source_rel(s, go, RelType::Similarity, None).unwrap();
        let rel_omim = store.create_source_rel(s, omim, RelType::Similarity, None).unwrap();
        for &(f, t, e) in &go_pairs {
            let _ = store.add_association(
                rel_go,
                src_objs[(f % 64) as usize],
                go_objs[(t % 48) as usize],
                e.map(|m| f64::from(m) / 1000.0),
            );
        }
        for &(f, t, e) in &omim_pairs {
            let _ = store.add_association(
                rel_omim,
                src_objs[(f % 64) as usize],
                omim_objs[(t % 48) as usize],
                e.map(|m| f64::from(m) / 1000.0),
            );
        }

        let mut first = TargetSpec::all(go);
        if let Some(m) = floor_millis {
            first = first.min_evidence(f64::from(m) / 1000.0);
        }
        let mut second = TargetSpec::restricted(
            omim,
            omim_objs.iter().take(20).copied().collect(),
        );
        if negate_second {
            second = second.negated();
        }
        let query = ViewQuery::new(s)
            .target(first)
            .target(second)
            .combine(if and_mode { Combine::And } else { Combine::Or });

        let seq = generate_view(&store, &query, &DirectResolver).unwrap();
        let cfg = ExecConfig { jobs, parallel_threshold: 0, plan: true };
        let par = generate_view_par(&store, &query, &DirectResolver, &cfg).unwrap();
        prop_assert_eq!(par, seq);
    }
}
