//! Property tests pinning the cost-based planner bit-identical to naive
//! execution: for every random chain shape, evidence mix, floor, negation
//! and worker count, `plan: true` must produce exactly the bytes that
//! `plan: false` produces. The planner is licensed to be *faster*, never
//! *different* — fact-chain reordering, floor pushdown, join-strategy
//! choice and shared-prefix memoization are all behind equivalence gates,
//! and this suite is what keeps those gates honest.
//!
//! "Bit-identical" is literal: evidence values are compared via
//! `f64::to_bits`, so a planner rewrite that reassociates a scored
//! product (floating-point multiplication is not associative) or turns a
//! fact (`None`) into `Some(1.0)` fails here.

use gam::model::{RelType, SourceContent, SourceStructure};
use gam::{GamStore, Mapping, ObjectId, SourceId};
use operators::{
    compose_path_idx, compose_path_idx_with_threshold, generate_view_idx, BuildIndexResolver,
    Combine, DirectResolver, ExecConfig, TargetSpec, ViewQuery,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn bits(m: &Mapping) -> Vec<(ObjectId, ObjectId, Option<u64>)> {
    m.pairs
        .iter()
        .map(|a| (a.from, a.to, a.evidence.map(f64::to_bits)))
        .collect()
}

fn arb_evidence() -> impl Strategy<Value = Option<f64>> {
    prop_oneof![
        2 => Just(None),
        1 => Just(Some(1.0)),
        4 => (0u32..=1000).prop_map(|m| Some(f64::from(m) / 1000.0)),
    ]
}

/// Edges of one chain hop over 6x6 objects. Empty hops are deliberately
/// reachable: the naive fold early-breaks on an empty accumulator and the
/// planner must reproduce the exact empty result it leaves behind.
fn arb_hop() -> impl Strategy<Value = Vec<(usize, usize, Option<f64>)>> {
    prop::collection::vec((0usize..6, 0usize..6, arb_evidence()), 0..22)
}

/// Per-hop edge lists: `hops[h]` holds `(from_obj, to_obj, evidence)`
/// triples for the mapping between sources `h` and `h + 1`.
type Hops = Vec<Vec<(usize, usize, Option<f64>)>>;

/// A random chain: length 3..=6 sources, per-hop edge lists, and a
/// facts-only flag. Stripping all evidence to `None` arms the planner's
/// fact-chain reordering (it only fires when every step is unscored), so
/// both the reordered and the in-order execution paths get exercised.
fn arb_chain() -> impl Strategy<Value = (Hops, bool)> {
    (3usize..=6)
        .prop_flat_map(|n| prop::collection::vec(arb_hop(), n - 1))
        .prop_flat_map(|hops| (Just(hops), any::<bool>()))
}

/// Materialize a chain store S0 -> S1 -> ... with 6 objects per source.
fn chain_store(
    hops: &[Vec<(usize, usize, Option<f64>)>],
    facts_only: bool,
) -> (GamStore, Vec<SourceId>) {
    let mut store = GamStore::in_memory().unwrap();
    let n = hops.len() + 1;
    let mut ids = Vec::with_capacity(n);
    let mut objs = Vec::with_capacity(n);
    for i in 0..n {
        let s = store
            .create_source(
                &format!("S{i}"),
                SourceContent::Other,
                SourceStructure::Flat,
                None,
            )
            .unwrap()
            .id;
        ids.push(s);
        objs.push(
            (0..6)
                .map(|j| {
                    store
                        .create_object(s, &format!("s{i}o{j}"), None, None)
                        .unwrap()
                })
                .collect::<Vec<_>>(),
        );
    }
    for (h, edges) in hops.iter().enumerate() {
        let rel = store
            .create_source_rel(ids[h], ids[h + 1], RelType::Similarity, None)
            .unwrap();
        let mut seen = BTreeSet::new();
        for &(i, j, e) in edges {
            if seen.insert((i, j)) {
                let e = if facts_only { None } else { e };
                store
                    .add_association(rel, objs[h][i], objs[h + 1][j], e)
                    .unwrap();
            }
        }
    }
    (store, ids)
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A deterministic, self-contained sweep over the same space the
/// properties explore — random chains, evidence mixes, floors, negation,
/// every worker count — so the equivalence gets executed even where the
/// proptest runner is unavailable, and a regression pins to a fixed seed.
#[test]
fn deterministic_sweep_planned_equals_naive() {
    let mut st = 0x9E37_79B9_7F4A_7C15u64;
    for round in 0..30u32 {
        let n = 3 + (xorshift(&mut st) % 4) as usize;
        let facts_only = xorshift(&mut st).is_multiple_of(2);
        let hops: Vec<Vec<(usize, usize, Option<f64>)>> = (0..n - 1)
            .map(|_| {
                let k = (xorshift(&mut st) % 22) as usize;
                (0..k)
                    .map(|_| {
                        let i = (xorshift(&mut st) % 6) as usize;
                        let j = (xorshift(&mut st) % 6) as usize;
                        let e = match xorshift(&mut st) % 7 {
                            0 | 1 => None,
                            2 => Some(1.0),
                            _ => Some((xorshift(&mut st) % 1001) as f64 / 1000.0),
                        };
                        (i, j, e)
                    })
                    .collect()
            })
            .collect();
        let (store, ids) = chain_store(&hops, facts_only);
        let floor = if xorshift(&mut st).is_multiple_of(2) {
            None
        } else {
            Some((xorshift(&mut st) % 1001) as f64 / 1000.0)
        };

        let mut deep = TargetSpec::all(ids[n - 1]).via(ids.clone());
        if xorshift(&mut st).is_multiple_of(2) {
            deep = deep.negated();
        }
        if let Some(f) = floor {
            deep = deep.min_evidence(f);
        }
        let mut mid = TargetSpec::all(ids[n - 2]).via(ids[..n - 1].to_vec());
        if xorshift(&mut st).is_multiple_of(2) {
            mid = mid.negated();
        }
        let q = ViewQuery::new(ids[0])
            .target(deep)
            .target(mid)
            .target(TargetSpec::all(ids[1]))
            .combine(if xorshift(&mut st).is_multiple_of(2) {
                Combine::And
            } else {
                Combine::Or
            });
        let resolver = BuildIndexResolver(&DirectResolver);

        for jobs in [1usize, 2, 4, 8] {
            let planned = ExecConfig { jobs, parallel_threshold: 0, plan: true };
            let naive = ExecConfig { jobs, parallel_threshold: 0, plan: false };
            let (p, nv) = match floor {
                None => (
                    compose_path_idx(&store, &ids, &planned).unwrap(),
                    compose_path_idx(&store, &ids, &naive).unwrap(),
                ),
                Some(f) => (
                    compose_path_idx_with_threshold(&store, &ids, f, &planned).unwrap(),
                    compose_path_idx_with_threshold(&store, &ids, f, &naive).unwrap(),
                ),
            };
            assert_eq!(
                bits(&p.to_mapping()),
                bits(&nv.to_mapping()),
                "round={round} jobs={jobs} floor={floor:?} facts_only={facts_only}"
            );
            assert_eq!((p.from, p.to, p.rel_type), (nv.from, nv.to, nv.rel_type));

            let pv = generate_view_idx(&store, &q, &resolver, &planned).unwrap();
            let nv = generate_view_idx(&store, &q, &resolver, &naive).unwrap();
            assert_eq!(pv, nv, "view round={round} jobs={jobs}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Planned chain composition equals the naive left fold bit for bit —
    /// across chain lengths 3..=6, evidence mixes (scored, fact-only),
    /// floors, and all worker counts. This pins every chain rewrite the
    /// planner owns: join-strategy choice, floor pushdown (gated on all
    /// steps having in-range evidence), and fact-chain reordering.
    #[test]
    fn planned_chain_is_bit_identical_to_naive(
        (hops, facts_only) in arb_chain(),
        floor in prop_oneof![Just(None), (0u32..=1000).prop_map(|m| Some(f64::from(m) / 1000.0))],
    ) {
        let (store, ids) = chain_store(&hops, facts_only);
        for jobs in [1usize, 2, 4, 8] {
            let planned = ExecConfig { jobs, parallel_threshold: 0, plan: true };
            let naive = ExecConfig { jobs, parallel_threshold: 0, plan: false };
            let (p, n) = match floor {
                None => (
                    compose_path_idx(&store, &ids, &planned).unwrap(),
                    compose_path_idx(&store, &ids, &naive).unwrap(),
                ),
                Some(f) => (
                    compose_path_idx_with_threshold(&store, &ids, f, &planned).unwrap(),
                    compose_path_idx_with_threshold(&store, &ids, f, &naive).unwrap(),
                ),
            };
            prop_assert_eq!(
                bits(&p.to_mapping()),
                bits(&n.to_mapping()),
                "jobs={} floor={:?} facts_only={}",
                jobs,
                floor,
                facts_only
            );
            prop_assert_eq!((p.from, p.to, p.rel_type), (n.from, n.to, n.rel_type));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planned GenerateView equals naive GenerateView row for row — with
    /// via-paths sharing a prefix (arming the planner's shared-prefix
    /// memo), negation, per-target floors, AND/OR, and all worker counts.
    #[test]
    fn planned_view_is_bit_identical_to_naive(
        (hops, facts_only) in arb_chain(),
        negate_deep in any::<bool>(),
        negate_mid in any::<bool>(),
        and_combine in any::<bool>(),
        floor in prop_oneof![Just(None), (0u32..=1000).prop_map(|m| Some(f64::from(m) / 1000.0))],
    ) {
        let (store, ids) = chain_store(&hops, facts_only);
        let n = ids.len();
        // deep target walks the whole chain; mid target shares its prefix
        let mut deep = TargetSpec::all(ids[n - 1]).via(ids.clone());
        if negate_deep {
            deep = deep.negated();
        }
        if let Some(f) = floor {
            deep = deep.min_evidence(f);
        }
        let mut mid = TargetSpec::all(ids[n - 2]).via(ids[..n - 1].to_vec());
        if negate_mid {
            mid = mid.negated();
        }
        let q = ViewQuery::new(ids[0])
            .target(deep)
            .target(mid)
            .target(TargetSpec::all(ids[1]))
            .combine(if and_combine { Combine::And } else { Combine::Or });

        let resolver = BuildIndexResolver(&DirectResolver);
        for jobs in [1usize, 2, 4, 8] {
            let planned = ExecConfig { jobs, parallel_threshold: 0, plan: true };
            let naive = ExecConfig { jobs, parallel_threshold: 0, plan: false };
            let pv = generate_view_idx(&store, &q, &resolver, &planned).unwrap();
            let nv = generate_view_idx(&store, &q, &resolver, &naive).unwrap();
            prop_assert_eq!(&pv, &nv, "jobs={}", jobs);
        }
    }
}
