//! `profiling` — large-scale automatic gene functional profiling.
//!
//! Reproduces the paper's §5.2 application: a comparative expression study
//! between humans and chimpanzees, profiled through GenMapper.
//!
//! * "From a total of approx. 40,000 genes, the expression of around
//!   20,000 genes were detected, from which around 2,500 show a
//!   significantly different expression pattern between the species." —
//!   the [`expression`] simulator reproduces those proportions from
//!   Affymetrix-style probe sets (the real measurements are proprietary,
//!   see DESIGN.md §2).
//! * "The proprietary genes of Affymetrix microarrays were mapped to the
//!   generally accepted gene representation UniGene, for which GO
//!   annotations were in turn derived from the mappings provided by
//!   LocusLink" — the [`pipeline`] walks exactly this mapping path with
//!   GenMapper operators.
//! * "Using the structure information of the sources, i.e. IS_A and
//!   Subsumed relationships, comprehensive statistical analysis over the
//!   entire GO taxonomy was possible" — term counts aggregate through the
//!   Subsumed closure, and [`stats`] provides the hypergeometric
//!   enrichment test.

pub mod expression;
pub mod pipeline;
pub mod stats;

pub use expression::{ExpressionParams, ExpressionStudy, ProbeMeasurement};
pub use pipeline::{FunctionalProfile, ProfilingReport, TermEnrichment};
