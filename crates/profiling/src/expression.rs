//! Simulated comparative expression measurements.
//!
//! The paper's study [18, 25, 27] measured human and chimpanzee brain
//! expression on Affymetrix arrays. The raw measurements are proprietary;
//! this simulator reproduces the published pipeline numbers — ~40 000
//! genes on the chip, ~50% detected, ~2 500 significantly different — so
//! the downstream GenMapper profiling runs on data with the same shape.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sources::universe::Universe;

/// Study-shape parameters.
#[derive(Debug, Clone)]
pub struct ExpressionParams {
    /// RNG seed (independent of the universe seed).
    pub seed: u64,
    /// Probability that a probe set is detected at all.
    pub detection_rate: f64,
    /// Probability that a detected probe set is truly differentially
    /// expressed between the species.
    pub differential_rate: f64,
    /// Log2 fold-change magnitude injected into true differentials.
    pub effect_size: f64,
    /// |log2 fold change| threshold used to call a difference.
    pub call_threshold: f64,
    /// Optional planted functional signal: genes annotated with this GO
    /// accession become differentially expressed with `boost` probability
    /// instead of `differential_rate`. Used to validate that the
    /// enrichment statistics recover a known signal end-to-end.
    pub planted: Option<PlantedSignal>,
}

/// A function-biased differential-expression signal.
#[derive(Debug, Clone)]
pub struct PlantedSignal {
    /// GO accession whose annotated genes are preferentially differential.
    pub go_accession: String,
    /// Differential probability for annotated genes (≫ the background
    /// `differential_rate`).
    pub boost: f64,
}

impl Default for ExpressionParams {
    fn default() -> Self {
        // Tuned so a 40k-gene chip yields ≈20k detected and ≈2.5k called,
        // the §5.2 numbers.
        ExpressionParams {
            seed: 4242,
            detection_rate: 0.5,
            differential_rate: 0.118,
            effect_size: 1.6,
            call_threshold: 1.0,
            planted: None,
        }
    }
}

impl ExpressionParams {
    /// Default parameters plus a planted functional signal on `go_acc`.
    pub fn with_planted_signal(go_acc: impl Into<String>, boost: f64) -> Self {
        ExpressionParams {
            planted: Some(PlantedSignal {
                go_accession: go_acc.into(),
                boost,
            }),
            ..ExpressionParams::default()
        }
    }
}

/// Measurements of one probe set.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeMeasurement {
    /// NetAffx probe set accession.
    pub probeset: String,
    /// Whether expression was detected in either species.
    pub detected: bool,
    /// Mean log2 expression, human brain.
    pub human: f64,
    /// Mean log2 expression, chimpanzee brain.
    pub chimp: f64,
}

impl ProbeMeasurement {
    /// log2 fold change (human − chimp).
    pub fn log_fold_change(&self) -> f64 {
        self.human - self.chimp
    }
}

/// The complete simulated study.
#[derive(Debug, Clone)]
pub struct ExpressionStudy {
    pub params: ExpressionParams,
    pub measurements: Vec<ProbeMeasurement>,
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl ExpressionStudy {
    /// Simulate the study over every probe set of the universe's chip.
    pub fn simulate(universe: &Universe, params: ExpressionParams) -> ExpressionStudy {
        let mut rng = SmallRng::seed_from_u64(params.seed);
        // resolve the planted term (plus all IS_A descendants, since genes
        // are annotated at leaf terms) to the set of boosted probe sets
        let boosted: std::collections::HashSet<usize> = match &params.planted {
            None => Default::default(),
            Some(signal) => 'resolve: {
                let Some(target) = universe
                    .go_terms
                    .iter()
                    .position(|t| t.acc == signal.go_accession)
                else {
                    break 'resolve Default::default();
                };
                // descendants of target in the IS_A DAG (children point at
                // parents via `parents`)
                let mut in_cone = vec![false; universe.go_terms.len()];
                in_cone[target] = true;
                for (i, term) in universe.go_terms.iter().enumerate() {
                    if term.parents.iter().any(|&p| in_cone[p]) {
                        in_cone[i] = true;
                    }
                }
                universe
                    .probesets
                    .iter()
                    .enumerate()
                    .filter(|(_, ps)| {
                        universe.unigene[ps.unigene].loci.iter().any(|&l| {
                            universe.loci[l].go_terms.iter().any(|&t| in_cone[t])
                        })
                    })
                    .map(|(i, _)| i)
                    .collect()
            }
        };
        let mut measurements = Vec::with_capacity(universe.probesets.len());
        for (ps_index, ps) in universe.probesets.iter().enumerate() {
            let detected = rng.gen_bool(params.detection_rate);
            let base = 6.0 + gaussian(&mut rng) * 2.0;
            let noise = 0.15;
            let (human, chimp) = if detected {
                let rate = match &params.planted {
                    Some(signal) if boosted.contains(&ps_index) => signal.boost,
                    _ => params.differential_rate,
                };
                let differential = rng.gen_bool(rate);
                let shift = if differential {
                    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    sign * (params.effect_size + gaussian(&mut rng).abs() * 0.3)
                } else {
                    0.0
                };
                (
                    base + shift / 2.0 + gaussian(&mut rng) * noise,
                    base - shift / 2.0 + gaussian(&mut rng) * noise,
                )
            } else {
                (0.0, 0.0)
            };
            measurements.push(ProbeMeasurement {
                probeset: ps.acc.clone(),
                detected,
                human,
                chimp,
            });
        }
        ExpressionStudy {
            params,
            measurements,
        }
    }

    /// Probe sets with detected expression.
    pub fn detected(&self) -> impl Iterator<Item = &ProbeMeasurement> {
        self.measurements.iter().filter(|m| m.detected)
    }

    /// Detected probe sets whose |log2 fold change| exceeds the call
    /// threshold — the differential-expression candidates of §5.2.
    pub fn differential(&self) -> impl Iterator<Item = &ProbeMeasurement> {
        let threshold = self.params.call_threshold;
        self.measurements
            .iter()
            .filter(move |m| m.detected && m.log_fold_change().abs() >= threshold)
    }

    /// (total, detected, differential) counts — the paper's 40k/20k/2.5k.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.measurements.len(),
            self.detected().count(),
            self.differential().count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sources::universe::UniverseParams;

    #[test]
    fn deterministic() {
        let u = Universe::generate(UniverseParams::tiny(3));
        let a = ExpressionStudy::simulate(&u, ExpressionParams::default());
        let b = ExpressionStudy::simulate(&u, ExpressionParams::default());
        assert_eq!(a.measurements, b.measurements);
        let c = ExpressionStudy::simulate(
            &u,
            ExpressionParams {
                seed: 1,
                ..ExpressionParams::default()
            },
        );
        assert_ne!(a.measurements, c.measurements);
    }

    #[test]
    fn paper_proportions_hold_at_scale() {
        // a chip of ~2.8k probes is enough to check the ratios
        let u = Universe::generate(UniverseParams::default());
        let study = ExpressionStudy::simulate(&u, ExpressionParams::default());
        let (total, detected, differential) = study.counts();
        assert!(total > 2_000);
        let detection = detected as f64 / total as f64;
        assert!((0.45..0.55).contains(&detection), "≈50% detected, got {detection}");
        let diff_rate = differential as f64 / total as f64;
        // paper: 2.5k of 40k ≈ 6.25%
        assert!(
            (0.04..0.09).contains(&diff_rate),
            "≈6% differential, got {diff_rate}"
        );
    }

    #[test]
    fn undetected_probes_are_not_differential() {
        let u = Universe::generate(UniverseParams::tiny(5));
        let study = ExpressionStudy::simulate(&u, ExpressionParams::default());
        for m in study.differential() {
            assert!(m.detected);
            assert!(m.log_fold_change().abs() >= study.params.call_threshold);
        }
        assert!(study.detected().count() <= study.measurements.len());
    }
}
