//! The §5.2 profiling pipeline on top of GenMapper.
//!
//! "Using the mappings provided by GenMapper, the proprietary genes of
//! Affymetrix microarrays were mapped to the generally accepted gene
//! representation UniGene, for which GO annotations were in turn derived
//! from the mappings provided by LocusLink. Furthermore, using the
//! structure information of the sources, i.e. IS_A and Subsumed
//! relationships, comprehensive statistical analysis over the entire GO
//! taxonomy was possible to determine significant genes."

use crate::expression::ExpressionStudy;
use crate::stats::{benjamini_hochberg, hypergeometric_sf};
use gam::{GamResult, Mapping, ObjectId};
use genmapper::GenMapper;
use std::collections::{BTreeSet, HashMap};

/// Enrichment result for one GO term.
#[derive(Debug, Clone, PartialEq)]
pub struct TermEnrichment {
    /// GO accession.
    pub accession: String,
    /// Term name.
    pub name: Option<String>,
    /// Differential genes annotated with the term (incl. subsumed terms).
    pub study_count: usize,
    /// Background genes annotated with the term (incl. subsumed terms).
    pub population_count: usize,
    /// Raw hypergeometric p-value.
    pub p_value: f64,
    /// Benjamini–Hochberg adjusted p-value.
    pub q_value: f64,
}

/// Stage-by-stage report of the profiling run.
#[derive(Debug, Clone)]
pub struct ProfilingReport {
    /// (total, detected, differential) probe sets — the paper's
    /// 40k/20k/2.5k shape.
    pub probe_counts: (usize, usize, usize),
    /// Distinct UniGene clusters the differential probes map to.
    pub study_clusters: usize,
    /// Distinct LocusLink genes the differential probes map to.
    pub study_loci: usize,
    /// Distinct background (detected) LocusLink genes.
    pub population_loci: usize,
    /// Background genes carrying at least one GO annotation.
    pub annotated_population: usize,
    /// Differential genes carrying at least one GO annotation.
    pub annotated_study: usize,
    /// Per-term enrichment, sorted by ascending p-value.
    pub enrichment: Vec<TermEnrichment>,
    /// Profiled terms per sub-taxonomy root (e.g. GO's Biological
    /// Process / Molecular Function / Cellular Component) — the paper's
    /// "comprehensive statistical analysis over the entire GO taxonomy"
    /// broken down by partition. Entries: (root accession, root name,
    /// profiled terms under the root including itself).
    pub namespace_breakdown: Vec<(String, Option<String>, usize)>,
}

impl ProfilingReport {
    /// Terms significant at the given FDR level.
    pub fn significant(&self, fdr: f64) -> impl Iterator<Item = &TermEnrichment> {
        self.enrichment.iter().filter(move |t| t.q_value <= fdr)
    }
}

/// The profiling engine.
pub struct FunctionalProfile;

/// Forward image of a set under a mapping.
fn image(mapping: &Mapping, inputs: &BTreeSet<ObjectId>) -> BTreeSet<ObjectId> {
    let mut by_from: HashMap<ObjectId, Vec<ObjectId>> = HashMap::with_capacity(mapping.len());
    for a in &mapping.pairs {
        by_from.entry(a.from).or_default().push(a.to);
    }
    let mut out = BTreeSet::new();
    for i in inputs {
        if let Some(ts) = by_from.get(i) {
            out.extend(ts.iter().copied());
        }
    }
    out
}

impl FunctionalProfile {
    /// Run the full pipeline: probes → UniGene → LocusLink → GO, with
    /// Subsumed aggregation and hypergeometric enrichment of the
    /// differential set against the detected background.
    pub fn run(gm: &mut GenMapper, study: &ExpressionStudy) -> GamResult<ProfilingReport> {
        Self::run_taxonomy(gm, study, "GO")
    }

    /// Run the pipeline against any Network taxonomy source annotated from
    /// LocusLink — the paper notes the "methodology is also applicable to
    /// other taxonomies, e.g. Enzyme, to gain additional insights".
    pub fn run_taxonomy(
        gm: &mut GenMapper,
        study: &ExpressionStudy,
        taxonomy: &str,
    ) -> GamResult<ProfilingReport> {
        let netaffx = gm.source_id("NetAffx")?;

        // resolve probe accessions to objects
        let resolve = |gm: &GenMapper, accs: Vec<&str>| -> GamResult<BTreeSet<ObjectId>> {
            let mut out = BTreeSet::new();
            for acc in accs {
                if let Some(obj) = gm.store().find_object(netaffx, acc)? {
                    out.insert(obj.id);
                }
            }
            Ok(out)
        };
        let study_probes = resolve(gm, study.differential().map(|m| m.probeset.as_str()).collect())?;
        let population_probes = resolve(gm, study.detected().map(|m| m.probeset.as_str()).collect())?;

        // the paper's mapping path: NetAffx -> Unigene -> LocusLink -> taxonomy
        let probe_to_cluster = gm.map("NetAffx", "Unigene")?;
        let cluster_to_locus = gm.map("Unigene", "LocusLink")?;
        let locus_to_go = gm.map("LocusLink", taxonomy)?;

        let study_clusters = image(&probe_to_cluster, &study_probes);
        let population_clusters = image(&probe_to_cluster, &population_probes);
        let study_loci = image(&cluster_to_locus, &study_clusters);
        let population_loci = image(&cluster_to_locus, &population_clusters);

        // direct annotations, then aggregation through the Subsumed
        // closure: a gene annotated with term t also counts for every
        // ancestor of t (ancestor → t appears in the Subsumed mapping).
        let go = gm.source_id(taxonomy)?;
        let subsumed = operators::subsume(gm.store(), go)?;
        let mut ancestors_of: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
        for a in &subsumed.pairs {
            // a.from is the ancestor, a.to the subsumed descendant
            ancestors_of.entry(a.to).or_default().push(a.from);
        }
        let annotate = |loci: &BTreeSet<ObjectId>| -> HashMap<ObjectId, BTreeSet<ObjectId>> {
            // term -> genes (with subsumed aggregation)
            let mut by_locus: HashMap<ObjectId, Vec<ObjectId>> = HashMap::new();
            for a in &locus_to_go.pairs {
                by_locus.entry(a.from).or_default().push(a.to);
            }
            let mut term_genes: HashMap<ObjectId, BTreeSet<ObjectId>> = HashMap::new();
            for &locus in loci {
                if let Some(terms) = by_locus.get(&locus) {
                    for &t in terms {
                        term_genes.entry(t).or_default().insert(locus);
                        if let Some(ups) = ancestors_of.get(&t) {
                            for &up in ups {
                                term_genes.entry(up).or_default().insert(locus);
                            }
                        }
                    }
                }
            }
            term_genes
        };
        let study_terms = annotate(&study_loci);
        let population_terms = annotate(&population_loci);

        let annotated_study: BTreeSet<ObjectId> = study_terms
            .values()
            .flat_map(|genes| genes.iter().copied())
            .collect();
        let annotated_population: BTreeSet<ObjectId> = population_terms
            .values()
            .flat_map(|genes| genes.iter().copied())
            .collect();

        // hypergeometric enrichment per term with ≥ 1 study gene
        let total = annotated_population.len();
        let sample = annotated_study.len();
        let mut terms: Vec<(ObjectId, usize, usize)> = study_terms
            .iter()
            .map(|(term, genes)| {
                let pop = population_terms.get(term).map(BTreeSet::len).unwrap_or(0);
                (*term, genes.len(), pop.max(genes.len()))
            })
            .collect();
        terms.sort_by_key(|(t, _, _)| *t);
        let p_values: Vec<f64> = terms
            .iter()
            .map(|&(_, k, annotated)| hypergeometric_sf(total, annotated, sample, k))
            .collect();
        let q_values = benjamini_hochberg(&p_values);

        // namespace breakdown: roots are terms that never appear as a
        // descendant in the Subsumed closure; every profiled term counts
        // toward each root that subsumes it
        let descendants_set: BTreeSet<ObjectId> = subsumed.pairs.iter().map(|a| a.to).collect();
        let closure_nodes: BTreeSet<ObjectId> = subsumed
            .pairs
            .iter()
            .flat_map(|a| [a.from, a.to])
            .collect();
        let roots: Vec<ObjectId> = closure_nodes
            .iter()
            .filter(|n| !descendants_set.contains(n))
            .copied()
            .collect();
        let mut per_root: HashMap<ObjectId, usize> = HashMap::new();
        let subsumed_by_root: HashMap<ObjectId, BTreeSet<ObjectId>> = {
            let mut m: HashMap<ObjectId, BTreeSet<ObjectId>> = HashMap::new();
            for a in &subsumed.pairs {
                if roots.contains(&a.from) {
                    m.entry(a.from).or_default().insert(a.to);
                }
            }
            m
        };
        for &root in &roots {
            let empty = BTreeSet::new();
            let under = subsumed_by_root.get(&root).unwrap_or(&empty);
            let n = study_terms
                .keys()
                .filter(|t| **t == root || under.contains(t))
                .count();
            if n > 0 {
                per_root.insert(root, n);
            }
        }
        let mut namespace_breakdown = Vec::with_capacity(per_root.len());
        for (root, n) in per_root {
            let obj = gm.store().get_object(root)?;
            namespace_breakdown.push((obj.accession, obj.text, n));
        }
        namespace_breakdown.sort();

        let mut enrichment = Vec::with_capacity(terms.len());
        for ((term, k, pop), (p, q)) in terms.into_iter().zip(p_values.into_iter().zip(q_values)) {
            let obj = gm.store().get_object(term)?;
            enrichment.push(TermEnrichment {
                accession: obj.accession,
                name: obj.text,
                study_count: k,
                population_count: pop,
                p_value: p,
                q_value: q,
            });
        }
        enrichment.sort_by(|a, b| {
            a.p_value
                .total_cmp(&b.p_value)
                .then_with(|| a.accession.cmp(&b.accession))
        });

        Ok(ProfilingReport {
            probe_counts: study.counts(),
            study_clusters: study_clusters.len(),
            study_loci: study_loci.len(),
            population_loci: population_loci.len(),
            annotated_population: total,
            annotated_study: sample,
            enrichment,
            namespace_breakdown,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expression::{ExpressionParams, ExpressionStudy};
    use sources::ecosystem::{Ecosystem, EcosystemParams};


    fn setup() -> (GenMapper, ExpressionStudy) {
        let eco = Ecosystem::generate(EcosystemParams::demo(11));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let study = ExpressionStudy::simulate(&eco.universe, ExpressionParams::default());
        (gm, study)
    }

    #[test]
    fn pipeline_maps_through_all_stages() {
        let (mut gm, study) = setup();
        let report = FunctionalProfile::run(&mut gm, &study).unwrap();
        let (total, detected, differential) = report.probe_counts;
        assert!(total > 0 && detected > 0 && differential > 0);
        assert!(detected <= total && differential <= detected);
        // each stage reaches fewer-or-equal entities than the previous
        assert!(report.study_loci <= report.population_loci);
        assert!(report.annotated_study <= report.study_loci);
        assert!(report.annotated_population <= report.population_loci);
        assert!(report.study_clusters > 0, "probes mapped into UniGene");
        assert!(report.study_loci > 0, "clusters mapped into LocusLink");
        assert!(!report.enrichment.is_empty(), "GO annotations derived");
    }

    #[test]
    fn namespace_breakdown_covers_profiled_terms() {
        let (mut gm, study) = setup();
        let report = FunctionalProfile::run(&mut gm, &study).unwrap();
        assert!(!report.namespace_breakdown.is_empty());
        // GO roots are the namespace anchors
        for (acc, _, n) in &report.namespace_breakdown {
            assert!(acc.starts_with("GO:"), "root {acc}");
            assert!(*n > 0);
        }
        // at most the three GO namespaces
        assert!(report.namespace_breakdown.len() <= 3);
        // every count is bounded by the number of profiled terms
        let total_terms = report.enrichment.len();
        for (_, _, n) in &report.namespace_breakdown {
            assert!(*n <= total_terms);
        }
    }

    #[test]
    fn enrichment_is_sound() {
        let (mut gm, study) = setup();
        let report = FunctionalProfile::run(&mut gm, &study).unwrap();
        for term in &report.enrichment {
            assert!(term.study_count >= 1);
            assert!(term.population_count >= term.study_count);
            assert!((0.0..=1.0).contains(&term.p_value));
            assert!(term.q_value >= term.p_value - 1e-12);
            assert!(term.q_value <= 1.0);
        }
        // sorted by p
        for pair in report.enrichment.windows(2) {
            assert!(pair[0].p_value <= pair[1].p_value);
        }
        // significance filter respects the threshold
        for t in report.significant(0.05) {
            assert!(t.q_value <= 0.05);
        }
    }

    #[test]
    fn subsumed_aggregation_reaches_namespace_roots() {
        // with IS_A aggregation, high-level terms must accumulate counts
        // from their descendants: the biological_process root should carry
        // annotations even though no gene is annotated to it directly.
        let (mut gm, study) = setup();
        let report = FunctionalProfile::run(&mut gm, &study).unwrap();
        let root = report
            .enrichment
            .iter()
            .find(|t| t.accession == "GO:0008150");
        // the pinned term GO:0009116 is a child of GO:0008150 and locus
        // 353 is always on the chip, so if any differential probe maps to
        // a BP-annotated gene the root accumulates it. We only require
        // that at least one internal (non-leaf) term accumulated more
        // genes than some leaf, which witnesses the aggregation.
        let max_count = report
            .enrichment
            .iter()
            .map(|t| t.study_count)
            .max()
            .unwrap();
        let min_count = report
            .enrichment
            .iter()
            .map(|t| t.study_count)
            .min()
            .unwrap();
        assert!(
            max_count > min_count || root.is_some(),
            "aggregation produced no concentration of counts"
        );
    }

    #[test]
    fn enzyme_taxonomy_profiling() {
        // the paper: "the adopted analysis methodology is also applicable
        // to other taxonomies, e.g. Enzyme" — needs a medium ecosystem so
        // enough differential genes are enzyme-coding (~15% of loci)
        let eco = Ecosystem::generate(EcosystemParams::medium(11));
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let study = ExpressionStudy::simulate(&eco.universe, ExpressionParams::default());
        let report = FunctionalProfile::run_taxonomy(&mut gm, &study, "Enzyme").unwrap();
        assert!(!report.enrichment.is_empty(), "EC classes profiled");
        // all profiled accessions are EC numbers, and Subsumed aggregation
        // pulls counts up to internal classes (e.g. "2.4" style prefixes)
        for term in &report.enrichment {
            assert!(
                term.accession.chars().next().unwrap().is_ascii_digit(),
                "EC accession: {}",
                term.accession
            );
        }
        let has_internal = report
            .enrichment
            .iter()
            .any(|t| t.accession.matches('.').count() < 3);
        assert!(has_internal, "internal EC classes accumulated counts");
        // unknown taxonomy errors cleanly
        assert!(FunctionalProfile::run_taxonomy(&mut gm, &study, "NoSuchTaxonomy").is_err());
    }

    #[test]
    fn planted_signal_is_recovered_as_top_enrichment() {
        // bias differential expression toward genes annotated under the
        // pinned term GO:0009116; the enrichment must surface that term
        // (or one of its ancestors, which aggregate its counts) at the top
        // with a far smaller p-value than the unbiased run produces.
        let eco = sources::ecosystem::Ecosystem::generate(
            sources::ecosystem::EcosystemParams::medium(17),
        );
        let mut gm = GenMapper::in_memory().unwrap();
        gm.import_dumps(&eco.dumps).unwrap();
        let params = crate::expression::ExpressionParams::with_planted_signal("GO:0009116", 0.9);
        let study = ExpressionStudy::simulate(&eco.universe, params);
        let report = FunctionalProfile::run(&mut gm, &study).unwrap();

        // the planted cone: GO:0009116 and its ancestors
        let planted = report
            .enrichment
            .iter()
            .find(|t| t.accession == "GO:0009116")
            .expect("planted term profiled");
        assert!(
            planted.p_value < 1e-3,
            "planted term should be strongly enriched, p={}",
            planted.p_value
        );
        // it ranks near the very top
        let rank = report
            .enrichment
            .iter()
            .position(|t| t.accession == "GO:0009116")
            .unwrap();
        assert!(rank < 10, "planted term ranked {rank}");
        // and it passes FDR control, unlike the null run where typically
        // nothing does
        assert!(report.significant(0.05).any(|t| t.accession == "GO:0009116"));
    }

    #[test]
    fn deterministic_report() {
        let (mut gm1, study1) = setup();
        let r1 = FunctionalProfile::run(&mut gm1, &study1).unwrap();
        let (mut gm2, study2) = setup();
        let r2 = FunctionalProfile::run(&mut gm2, &study2).unwrap();
        assert_eq!(r1.enrichment, r2.enrichment);
        assert_eq!(r1.probe_counts, r2.probe_counts);
    }
}
