//! Statistics for GO-term enrichment: log-factorials, the hypergeometric
//! distribution, and Benjamini–Hochberg FDR control.

/// Natural log of `n!`, computed once per process through a growing table
/// (study sizes stay in the tens of thousands, so a table is exact and
/// fast; no Stirling approximation error).
pub fn ln_factorial(n: usize) -> f64 {
    use std::sync::OnceLock;
    use std::sync::RwLock;
    static TABLE: OnceLock<RwLock<Vec<f64>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| RwLock::new(vec![0.0, 0.0]));
    {
        let read = table.read().expect("ln_factorial lock");
        if let Some(&v) = read.get(n) {
            return v;
        }
    }
    let mut write = table.write().expect("ln_factorial lock");
    while write.len() <= n {
        let k = write.len() as f64;
        let last = *write.last().expect("seeded");
        write.push(last + k.ln());
    }
    write[n]
}

/// `ln C(n, k)`; `-inf` when `k > n` (an impossible draw).
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Hypergeometric PMF: probability of exactly `k` annotated genes in a
/// sample of `n`, drawn from a population of `total` containing
/// `annotated` annotated genes.
pub fn hypergeometric_pmf(total: usize, annotated: usize, n: usize, k: usize) -> f64 {
    if k > annotated || n > total || n.saturating_sub(k) > total - annotated {
        return 0.0;
    }
    (ln_choose(annotated, k) + ln_choose(total - annotated, n - k) - ln_choose(total, n)).exp()
}

/// Upper-tail p-value `P[X >= k]` — the standard GO over-representation
/// test (one-sided Fisher exact test).
pub fn hypergeometric_sf(total: usize, annotated: usize, n: usize, k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let upper = annotated.min(n);
    let mut p = 0.0;
    for i in k..=upper {
        p += hypergeometric_pmf(total, annotated, n, i);
    }
    p.min(1.0)
}

/// Benjamini–Hochberg adjusted p-values, preserving input order.
pub fn benjamini_hochberg(p_values: &[f64]) -> Vec<f64> {
    let m = p_values.len();
    if m == 0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| p_values[a].total_cmp(&p_values[b]));
    let mut adjusted = vec![0.0; m];
    let mut running_min = 1.0f64;
    for rank in (0..m).rev() {
        let idx = order[rank];
        let q = (p_values[idx] * m as f64 / (rank + 1) as f64).min(1.0);
        running_min = running_min.min(q);
        adjusted[idx] = running_min;
    }
    adjusted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ln_factorial_exact_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!(close(ln_factorial(5), 120f64.ln(), 1e-12));
        assert!(close(ln_factorial(10), 3_628_800f64.ln(), 1e-9));
        // table growth works across calls
        assert!(ln_factorial(1000) > ln_factorial(999));
    }

    #[test]
    fn ln_choose_values() {
        assert!(close(ln_choose(5, 2).exp(), 10.0, 1e-9));
        assert!(close(ln_choose(52, 5).exp(), 2_598_960.0, 1e-3));
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        assert!(close(ln_choose(7, 0).exp(), 1.0, 1e-12));
    }

    #[test]
    fn hypergeometric_pmf_sums_to_one() {
        let (total, annotated, n) = (50, 12, 10);
        let sum: f64 = (0..=n).map(|k| hypergeometric_pmf(total, annotated, n, k)).sum();
        assert!(close(sum, 1.0, 1e-9));
    }

    #[test]
    fn hypergeometric_known_value() {
        // P[X = 2] for total=10, annotated=4, n=3: C(4,2)*C(6,1)/C(10,3) = 36/120
        assert!(close(hypergeometric_pmf(10, 4, 3, 2), 0.3, 1e-12));
        // survival at 0 is 1
        assert_eq!(hypergeometric_sf(10, 4, 3, 0), 1.0);
        // P[X >= 1] = 1 - C(6,3)/C(10,3) = 1 - 20/120
        assert!(close(hypergeometric_sf(10, 4, 3, 1), 1.0 - 20.0 / 120.0, 1e-12));
        // impossible draw
        assert_eq!(hypergeometric_pmf(10, 4, 3, 5), 0.0);
    }

    #[test]
    fn enrichment_direction() {
        // a term hit 8/10 times in the sample but covering 10% of the
        // population is strongly enriched (tiny p)
        let p_enriched = hypergeometric_sf(1000, 100, 10, 8);
        assert!(p_enriched < 1e-5);
        // a term hit proportionally is not
        let p_neutral = hypergeometric_sf(1000, 100, 10, 1);
        assert!(p_neutral > 0.2);
        assert!(p_enriched < p_neutral);
    }

    #[test]
    fn bh_adjustment_monotone_and_bounded() {
        let p = vec![0.001, 0.02, 0.03, 0.8, 0.04];
        let q = benjamini_hochberg(&p);
        assert_eq!(q.len(), p.len());
        for (pi, qi) in p.iter().zip(&q) {
            assert!(qi >= pi, "adjusted >= raw");
            assert!(*qi <= 1.0);
        }
        // order of significance preserved
        assert!(q[0] <= q[1]);
        assert!(q[3] >= q[2]);
        assert!(benjamini_hochberg(&[]).is_empty());
        // all-equal p-values adjust to the same value
        let q = benjamini_hochberg(&[0.5, 0.5, 0.5]);
        assert!(q.iter().all(|&v| close(v, 0.5, 1e-12)));
    }
}
