//! Substrate ablation — the embedded storage engine's access paths.
//!
//! The GAM operators reduce to point lookups, range scans, and joins over
//! the four tables; this bench isolates those physical operations so the
//! operator-level numbers (T2/F5) can be attributed: index lookup vs full
//! scan, index range vs scan, and hash vs merge join across sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relstore::join::{hash_join, merge_join};
use relstore::predicate::CmpOp;
use relstore::row::Row;
use relstore::schema::{Column, Schema};
use relstore::table::Table;
use relstore::value::{Value, ValueType};
use relstore::Predicate;

fn table_with(n: usize) -> Table {
    let mut t = Table::new(
        Schema::builder("object")
            .column(Column::new("id", ValueType::Int))
            .column(Column::new("grp", ValueType::Int))
            .column(Column::new("acc", ValueType::Text))
            .primary_key(&["id"])
            .index("by_grp", &["grp"])
            .build()
            .unwrap(),
    );
    for i in 0..n as i64 {
        t.insert(vec![
            Value::Int(i),
            Value::Int(i % 100),
            Value::text(format!("ACC{i}")),
        ])
        .unwrap();
    }
    t
}

fn bench_access_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("relstore/access_path");
    for &n in &[10_000usize, 100_000] {
        let t = table_with(n);
        group.throughput(Throughput::Elements(n as u64));
        // point lookup via unique index
        group.bench_with_input(BenchmarkId::new("pk_lookup", n), &t, |b, t| {
            b.iter(|| t.lookup_unique("pk", &[Value::Int((n / 2) as i64)]).unwrap())
        });
        // equality select served by the secondary index
        let by_grp = Predicate::eq("grp", Value::Int(42));
        group.bench_with_input(BenchmarkId::new("index_select", n), &t, |b, t| {
            b.iter(|| t.select(&by_grp).unwrap())
        });
        // the same rows through a forced full scan (no usable index)
        let scan = Predicate::Or(vec![Predicate::eq("grp", Value::Int(42))]);
        group.bench_with_input(BenchmarkId::new("full_scan_select", n), &t, |b, t| {
            b.iter(|| t.select(&scan).unwrap())
        });
        // range served by the ordered index
        let range = Predicate::cmp("grp", CmpOp::Ge, Value::Int(40))
            .and(Predicate::cmp("grp", CmpOp::Lt, Value::Int(45)));
        group.bench_with_input(BenchmarkId::new("index_range", n), &t, |b, t| {
            b.iter(|| t.select(&range).unwrap())
        });
    }
    group.finish();
}

fn rows(n: usize, key_mod: i64) -> Vec<Row> {
    (0..n as i64)
        .map(|i| Row::new(vec![Value::Int(i % key_mod), Value::Int(i)]))
        .collect()
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("relstore/join");
    for &n in &[1_000usize, 10_000, 100_000] {
        let left = rows(n, (n / 4) as i64);
        let right = rows(n, (n / 4) as i64);
        group.throughput(Throughput::Elements(2 * n as u64));
        group.bench_with_input(BenchmarkId::new("hash", n), &n, |b, _| {
            b.iter(|| hash_join(&left, &[0], &right, &[0]))
        });
        group.bench_with_input(BenchmarkId::new("merge", n), &n, |b, _| {
            b.iter(|| merge_join(&left, &[0], &right, &[0]))
        });
    }
    group.finish();
}

fn bench_durability(c: &mut Criterion) {
    let mut group = c.benchmark_group("relstore/durability");
    group.sample_size(10);
    let dir = std::env::temp_dir().join("relstore-bench");
    let _ = std::fs::remove_dir_all(&dir);
    // committed-transaction throughput with per-commit fsync
    group.bench_function("txn_commit_fsync", |b| {
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = relstore::Database::open(&dir).unwrap();
        db.create_table(
            Schema::builder("t")
                .column(Column::new("id", ValueType::Int))
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut next = 0i64;
        b.iter(|| {
            db.with_txn(|txn| {
                next += 1;
                txn.insert("t", vec![Value::Int(next)])?;
                Ok(())
            })
            .unwrap()
        });
    });
    // snapshot write cost for a 100k-row table
    group.bench_function("snapshot_100k_rows", |b| {
        let t = table_with(100_000);
        b.iter(|| relstore::snapshot::encode_snapshot(std::iter::once(&t), 0))
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_access_paths, bench_joins, bench_durability
}
criterion_main!(benches);
