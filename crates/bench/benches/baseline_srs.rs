//! Ablation A2 — GAM join queries vs SRS-style link navigation.
//!
//! Paper §1 on SRS/DBGET: "join queries over multiple sources are not
//! possible. Cross-references can be utilized for interactive navigation,
//! but not for the generation and analysis of annotation profiles." The
//! SRS user must emulate a join by navigating every entry's links; the
//! bench measures that fan-out against GenerateView, across source sizes.

use baselines::SrsStore;
use bench::fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genmapper::{QuerySpec, TargetQuery};
use sources::ecosystem::EcosystemParams;
use sources::universe::UniverseParams;

fn params(n_loci: usize) -> EcosystemParams {
    EcosystemParams {
        universe: UniverseParams {
            seed: 51,
            n_loci,
            n_go_terms: (n_loci / 4).max(30),
            n_enzymes: 25,
            n_omim: 30,
            n_interpro: 40,
            probesets_per_locus: 1.3,
            protein_fraction: 0.7,
        },
        n_satellites: 0,
        satellite_objects: 0,
        satellite_links: 0,
        satellite_hubs: 1,
        satellite_scored_fraction: 0.0,
    }
}

fn bench_join_vs_navigation(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_srs/join_query");
    group.sample_size(10);
    for &n in &[100usize, 400, 1600] {
        let f = fixture(params(n));
        let mut srs = SrsStore::new();
        for dump in &f.eco.dumps {
            srs.load(&dump.parse().unwrap());
        }
        let term = "GO:0009116";
        // sanity: both systems answer identically (asserted once per size)
        let spec = QuerySpec::source("Unigene")
            .target_spec(TargetQuery::new("GO").accessions([term]))
            .and();
        let gam_answer: std::collections::BTreeSet<String> = f
            .gm
            .query(&spec)
            .unwrap()
            .rows
            .iter()
            .filter_map(|r| r.cell_text(0).map(str::to_owned))
            .collect();
        let srs_answer: std::collections::BTreeSet<String> = srs
            .navigate_join("Unigene", &["LocusLink", "GO"], term)
            .into_iter()
            .collect();
        assert_eq!(gam_answer, srs_answer, "systems disagree at n={n}");

        group.bench_with_input(BenchmarkId::new("gam_generate_view", n), &n, |b, _| {
            b.iter(|| f.gm.query(&spec).expect("view"))
        });
        group.bench_with_input(BenchmarkId::new("srs_navigation", n), &n, |b, _| {
            b.iter(|| srs.navigate_join("Unigene", &["LocusLink", "GO"], term))
        });
    }
    group.finish();
}

fn bench_what_srs_is_good_at(c: &mut Criterion) {
    // single-entry lookup and one-hop navigation: SRS's home turf, where
    // both systems should be fast (crossover context for A2)
    let f = fixture(params(1600));
    let mut srs = SrsStore::new();
    for dump in &f.eco.dumps {
        srs.load(&dump.parse().unwrap());
    }
    let mut group = c.benchmark_group("baseline_srs/point_lookup");
    group.bench_function("srs_get", |b| {
        b.iter(|| srs.get("LocusLink", "353").expect("entry"))
    });
    group.bench_function("srs_navigate_one_hop", |b| {
        b.iter(|| srs.navigate("LocusLink", "353", "GO"))
    });
    let spec = QuerySpec::source("LocusLink").accessions(["353"]).target("GO");
    group.bench_function("gam_point_view", |b| {
        b.iter(|| f.gm.query(&spec).expect("view"))
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_join_vs_navigation, bench_what_srs_is_good_at
}
criterion_main!(benches);
