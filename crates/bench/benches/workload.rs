//! Mixed interactive workload — the usage profile of the deployed system
//! (§5.1): many small lookups, some annotation views, occasional composed
//! queries, all against one integrated database.
//!
//! The mix is 60% object-info lookups, 25% point views (one accession, one
//! target), 10% two-target views, 5% composed-path views — a plausible
//! interactive session distribution; the bench reports sustained
//! queries/second at medium scale.

use bench::medium_fixture;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use genmapper::QuerySpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_query_mix(c: &mut Criterion) {
    let f = medium_fixture(81);
    // pre-build the operation schedule so RNG cost is outside the loop
    let accessions: Vec<String> = f
        .eco
        .universe
        .loci
        .iter()
        .map(|l| l.id.to_string())
        .collect();
    let probes: Vec<String> = f
        .eco
        .universe
        .probesets
        .iter()
        .map(|p| p.acc.clone())
        .collect();
    let mut rng = SmallRng::seed_from_u64(4242);
    #[derive(Clone)]
    enum Op {
        Info(String),
        PointView(String),
        TwoTargetView(String),
        ComposedView(String),
    }
    let schedule: Vec<Op> = (0..512)
        .map(|_| {
            let acc = accessions[rng.gen_range(0..accessions.len())].clone();
            match rng.gen_range(0..100) {
                0..=59 => Op::Info(acc),
                60..=84 => Op::PointView(acc),
                85..=94 => Op::TwoTargetView(acc),
                _ => Op::ComposedView(probes[rng.gen_range(0..probes.len())].clone()),
            }
        })
        .collect();

    let mut group = c.benchmark_group("workload/interactive_mix");
    group.sample_size(10);
    group.throughput(Throughput::Elements(schedule.len() as u64));
    group.bench_function("mixed_512_ops", |b| {
        b.iter(|| {
            let mut rows = 0usize;
            for op in &schedule {
                match op {
                    Op::Info(acc) => {
                        rows += f
                            .gm
                            .object_info("LocusLink", acc)
                            .expect("info")
                            .associations
                            .len();
                    }
                    Op::PointView(acc) => {
                        let spec = QuerySpec::source("LocusLink")
                            .accessions([acc.as_str()])
                            .target("GO");
                        rows += f.gm.query(&spec).expect("view").len();
                    }
                    Op::TwoTargetView(acc) => {
                        let spec = QuerySpec::source("LocusLink")
                            .accessions([acc.as_str()])
                            .target("GO")
                            .target("OMIM")
                            .or();
                        rows += f.gm.query(&spec).expect("view").len();
                    }
                    Op::ComposedView(probe) => {
                        let spec = QuerySpec::source("NetAffx")
                            .accessions([probe.as_str()])
                            .target("GO")
                            .and();
                        rows += f.gm.query(&spec).expect("view").len();
                    }
                }
            }
            rows
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_query_mix
}
criterion_main!(benches);
