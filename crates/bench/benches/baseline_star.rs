//! Ablation A1 — generic GAM vs an application-specific star schema.
//!
//! The paper's §1 argument against conventional warehouses: "construction
//! and maintenance of the global schema ... are highly difficult and do
//! not scale well to many sources." Measured here as:
//!
//! * query latency on *anticipated* queries (where the star schema should
//!   win — it has exactly the right indexes),
//! * integration of an *unanticipated* source (where GAM wins — the star
//!   schema needs a migration and only then can reload).

use baselines::StarWarehouse;
use bench::demo_fixture;
use criterion::{criterion_group, criterion_main, Criterion};
use genmapper::{QuerySpec, TargetQuery};

fn bench_anticipated_queries(c: &mut Criterion) {
    let f = demo_fixture(41);
    let ll_batch = f.eco.dumps[0].parse().unwrap();
    let mut star = StarWarehouse::new().unwrap();
    star.integrate(&ll_batch).unwrap();
    let location = f.eco.universe.locus_353().location.clone();

    let mut group = c.benchmark_group("baseline_star/anticipated");
    group.bench_function("location_lookup/star", |b| {
        b.iter(|| star.loci_at_location(&location).expect("query"))
    });
    let spec = QuerySpec::source("LocusLink")
        .target_spec(TargetQuery::new("Location").accessions([location.as_str()]))
        .and();
    group.bench_function("location_lookup/gam", |b| {
        b.iter(|| f.gm.query(&spec).expect("view"))
    });
    group.bench_function("go_bridge/star", |b| {
        b.iter(|| star.loci_with_go("GO:0009116").expect("query"))
    });
    let spec = QuerySpec::source("LocusLink")
        .target_spec(TargetQuery::new("GO").accessions(["GO:0009116"]))
        .and();
    group.bench_function("go_bridge/gam", |b| {
        b.iter(|| f.gm.query(&spec).expect("view"))
    });
    group.finish();
}

fn bench_new_source_integration(c: &mut Criterion) {
    // integrating a source the schema did not anticipate: GAM imports it
    // directly; the star schema must migrate (add a bridge) and re-run
    // the LocusLink load to fill it.
    let f = demo_fixture(42);
    let ll_batch = f.eco.dumps[0].parse().unwrap();
    let satellite = f.eco.dumps[10].parse().unwrap();

    let mut group = c.benchmark_group("baseline_star/new_source");
    group.sample_size(10);
    group.bench_function("gam/import_satellite", |b| {
        b.iter(|| {
            let mut gm = genmapper::GenMapper::in_memory().unwrap();
            gm.import_batch(&ll_batch).unwrap();
            gm.import_batch(&satellite).unwrap()
        })
    });
    group.bench_function("star/migrate_and_reload", |b| {
        b.iter(|| {
            let mut star = StarWarehouse::new().unwrap();
            star.integrate(&ll_batch).unwrap();
            // the migration: schema evolution + full reload to capture the
            // annotations the old schema dropped
            star.migrate_add_bridge("Enzyme").unwrap();
            let mut rebuilt = StarWarehouse::new().unwrap();
            rebuilt.migrate_add_bridge("Enzyme").unwrap();
            rebuilt.integrate(&ll_batch).unwrap();
            rebuilt
        })
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_anticipated_queries, bench_new_source_integration
}
criterion_main!(benches);
