//! Experiment S5-path — automatic mapping-path discovery (paper §5.1).
//!
//! Sweeps source-graph size (10–60 sources, toward the paper's 60+) and
//! density, measuring BFS shortest path, quality-weighted Dijkstra,
//! via-constrained search, and Yen's k-shortest paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gam::model::RelType;
use gam::SourceId;
use pathfinder::{SourceGraph, WeightScheme};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random connected source graph of `n` nodes with extra density.
fn random_graph(seed: u64, n: u32, extra_edges: u32) -> SourceGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = SourceGraph::default();
    // spanning tree keeps it connected
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(SourceId(i), SourceId(parent), RelType::Fact);
    }
    for _ in 0..extra_edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            let t = if rng.gen_bool(0.5) {
                RelType::Fact
            } else {
                RelType::Similarity
            };
            g.add_edge(SourceId(a), SourceId(b), t);
        }
    }
    g
}

fn bench_shortest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathfinder/shortest");
    for &n in &[10u32, 30, 60] {
        let g = random_graph(9, n, n * 2);
        let from = SourceId(0);
        let to = SourceId(n - 1);
        group.bench_with_input(BenchmarkId::new("bfs", n), &g, |b, g| {
            b.iter(|| g.shortest_path(from, to).expect("connected"))
        });
        group.bench_with_input(BenchmarkId::new("dijkstra_quality", n), &g, |b, g| {
            b.iter(|| g.best_path(from, to, WeightScheme::Quality).expect("connected"))
        });
        group.bench_with_input(BenchmarkId::new("via", n), &g, |b, g| {
            b.iter(|| g.path_via(from, SourceId(n / 2), to).expect("connected"))
        });
    }
    group.finish();
}

fn bench_k_shortest(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathfinder/k_shortest");
    group.sample_size(20);
    let g = random_graph(10, 60, 180);
    for &k in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| g.k_shortest_paths(SourceId(0), SourceId(59), k))
        });
    }
    group.finish();
}

fn bench_density_sweep(c: &mut Criterion) {
    // "with a high degree of inter-connectivity between the sources, many
    // paths may be possible" — density drives the path search cost
    let mut group = c.benchmark_group("pathfinder/density");
    for &extra in &[30u32, 120, 480] {
        let g = random_graph(11, 60, extra);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("edges{}", g.edge_count())),
            &g,
            |b, g| b.iter(|| g.k_shortest_paths(SourceId(0), SourceId(59), 4)),
        );
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_shortest_paths, bench_k_shortest, bench_density_sweep
}
criterion_main!(benches);
