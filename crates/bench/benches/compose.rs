//! Experiment T2 (Compose) — transitive mapping derivation (paper §4.2).
//!
//! Measures the pure join (two in-memory mappings) across sizes, and
//! store-backed `compose_path` across path lengths on the integrated
//! ecosystem — the operation behind "the new mapping Unigene↔GO can be
//! derived by combining Unigene↔LocusLink and LocusLink↔GO".

use bench::{composable_mappings, demo_fixture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use operators::ExecConfig;

fn bench_pure_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose/pure");
    for &n in &[1_000usize, 10_000, 100_000] {
        let (left, right) = composable_mappings(5, n);
        group.throughput(Throughput::Elements((left.len() + right.len()) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(left, right),
            |b, (l, r)| b.iter(|| operators::compose(l, r).expect("composes")),
        );
    }
    group.finish();
}

fn bench_parallel_compose(c: &mut Criterion) {
    // the partitioned parallel probe across worker counts, on a join large
    // enough for the partitioning to pay off
    let (left, right) = composable_mappings(5, 200_000);
    let mut group = c.benchmark_group("compose/parallel");
    group.throughput(Throughput::Elements((left.len() + right.len()) as u64));
    for &jobs in &[1usize, 2, 4, 8] {
        let cfg = ExecConfig {
            jobs,
            parallel_threshold: 0,
            plan: true,
        };
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &cfg, |b, cfg| {
            b.iter(|| operators::compose_par(&left, &right, cfg).expect("composes"))
        });
    }
    group.finish();
}

fn bench_store_paths(c: &mut Criterion) {
    let f = demo_fixture(6);
    let mut group = c.benchmark_group("compose/path_length");
    let paths: [(&str, Vec<&str>); 3] = [
        ("2hop", vec!["Unigene", "LocusLink", "GO"]),
        ("3hop", vec!["NetAffx", "Unigene", "LocusLink", "GO"]),
        ("3hop_protein", vec!["InterPro", "SwissProt", "LocusLink", "GO"]),
    ];
    for (label, path) in &paths {
        // bypass the system-level mapping cache: measure the actual join
        // work, not a cache hit
        let ids: Vec<_> = path
            .iter()
            .map(|n| f.gm.source_id(n).expect("source exists"))
            .collect();
        group.bench_function(*label, |b| {
            b.iter(|| operators::compose_path(f.gm.store(), &ids).expect("path composes"))
        });
    }
    // the same derivation served by the versioned mapping cache (first
    // iteration builds, the rest are hits)
    group.bench_function("2hop_cached", |b| {
        b.iter(|| f.gm.compose(&["Unigene", "LocusLink", "GO"]).expect("path composes"))
    });
    group.finish();
}

fn bench_subsume(c: &mut Criterion) {
    // Subsumed closure derivation over taxonomies of growing depth
    let f = demo_fixture(8);
    let go = f.gm.source_id("GO").unwrap();
    let enzyme = f.gm.source_id("Enzyme").unwrap();
    let mut group = c.benchmark_group("compose/subsume");
    group.bench_function("GO", |b| {
        b.iter(|| operators::subsume(f.gm.store(), go).expect("closure"))
    });
    group.bench_function("Enzyme", |b| {
        b.iter(|| operators::subsume(f.gm.store(), enzyme).expect("closure"))
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pure_compose, bench_parallel_compose, bench_store_paths, bench_subsume
}
criterion_main!(benches);
