//! Micro-bench for the allocation-lean `Mapping::dedup` / `from_parts`
//! rewrite and the CSR `MappingIndex` build.
//!
//! The rewrite replaced a stable sort (which allocates a temporary buffer
//! of half the input) with an in-place unstable sort under a canonical
//! total order, and `from_parts` lost its intermediate per-pair map. The
//! old shapes are replicated here so the win stays measurable.

use bench::synthetic_mapping;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gam::mapping::Association;
use gam::{Mapping, MappingIndex, ObjectId};
use std::collections::BTreeMap;

/// The pre-rewrite dedup: stable sort + adjacent dedup. The comparator is
/// the old one (pair key, then descending effective evidence) — stability
/// is what made its tie handling order-dependent, and the temp buffer is
/// what the unstable rewrite saves.
fn dedup_stable_sort(pairs: &mut Vec<Association>) {
    pairs.sort_by(|a, b| {
        (a.from, a.to)
            .cmp(&(b.from, b.to))
            .then_with(|| b.effective_evidence().total_cmp(&a.effective_evidence()))
    });
    pairs.dedup_by_key(|a| (a.from, a.to));
}

/// The pre-rewrite `from_parts` shape: merge partitions through a
/// node-per-pair map keeping the best evidence.
fn from_parts_btree_map(parts: Vec<Vec<Association>>) -> Vec<Association> {
    let mut best: BTreeMap<(ObjectId, ObjectId), Association> = BTreeMap::new();
    for part in parts {
        for a in part {
            best.entry((a.from, a.to))
                .and_modify(|cur| {
                    if a.effective_evidence() > cur.effective_evidence() {
                        *cur = a;
                    }
                })
                .or_insert(a);
        }
    }
    best.into_values().collect()
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/dedup");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        // fan_out 4 → ~25% duplicates, a composition-like duplicate rate
        let base = synthetic_mapping(17, n, 4);
        let mut raw = base.pairs.clone();
        raw.extend(base.pairs.iter().take(n / 4).copied());
        group.throughput(Throughput::Elements(raw.len() as u64));
        group.bench_with_input(BenchmarkId::new("unstable_in_place", n), &raw, |b, raw| {
            b.iter_batched(
                || base.clone_with(raw.clone()),
                |mut m| {
                    m.dedup();
                    m
                },
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("stable_sort_old", n), &raw, |b, raw| {
            b.iter_batched(
                || raw.clone(),
                |mut pairs| {
                    dedup_stable_sort(&mut pairs);
                    pairs
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_from_parts(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/from_parts");
    for &n in &[100_000usize, 400_000] {
        let base = synthetic_mapping(19, n, 4);
        let parts: Vec<Vec<Association>> = base.pairs.chunks(n / 8 + 1).map(<[_]>::to_vec).collect();
        group.throughput(Throughput::Elements(base.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("concat_dedup", n),
            &parts,
            |b, parts| {
                b.iter_batched(
                    || parts.clone(),
                    |parts| Mapping::from_parts(base.from, base.to, base.rel_type, parts),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("btree_map_old", n),
            &parts,
            |b, parts| {
                b.iter_batched(
                    || parts.clone(),
                    from_parts_btree_map,
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/index_build");
    for &n in &[100_000usize, 400_000] {
        let base = synthetic_mapping(23, n, 4);
        group.throughput(Throughput::Elements(base.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &base, |b, base| {
            b.iter_batched(
                || base.clone(),
                MappingIndex::build,
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// Helper: rebuild a mapping with replaced pairs (keeps the bench honest —
/// dedup mutates, so every iteration needs a fresh copy).
trait CloneWith {
    fn clone_with(&self, pairs: Vec<Association>) -> Mapping;
}

impl CloneWith for Mapping {
    fn clone_with(&self, pairs: Vec<Association>) -> Mapping {
        Mapping {
            from: self.from,
            to: self.to,
            rel_type: self.rel_type,
            pairs,
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_dedup, bench_from_parts, bench_index_build
}
criterion_main!(benches);
