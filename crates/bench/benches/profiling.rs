//! Experiment S5-profiling — the §5.2 functional-profiling pipeline.
//!
//! Measures the end-to-end profiling run (probe mapping through
//! NetAffx→UniGene→LocusLink→GO plus Subsumed aggregation and
//! hypergeometric enrichment) and its stages, at demo and medium scale.

use bench::{demo_fixture, medium_fixture};
use criterion::{criterion_group, criterion_main, Criterion};
use profiling::{ExpressionParams, ExpressionStudy, FunctionalProfile};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling/pipeline");
    group.sample_size(10);
    {
        let f = demo_fixture(71);
        let study = ExpressionStudy::simulate(&f.eco.universe, ExpressionParams::default());
        let mut gm = f.gm;
        group.bench_function("end_to_end/demo", |b| {
            b.iter(|| FunctionalProfile::run(&mut gm, &study).expect("profiles"))
        });
    }
    {
        let f = medium_fixture(72);
        let study = ExpressionStudy::simulate(&f.eco.universe, ExpressionParams::default());
        let mut gm = f.gm;
        group.bench_function("end_to_end/medium", |b| {
            b.iter(|| FunctionalProfile::run(&mut gm, &study).expect("profiles"))
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let f = medium_fixture(73);
    let mut group = c.benchmark_group("profiling/stages");
    group.bench_function("simulate_expression", |b| {
        b.iter(|| ExpressionStudy::simulate(&f.eco.universe, ExpressionParams::default()))
    });
    let go = f.gm.source_id("GO").unwrap();
    group.bench_function("subsumed_closure", |b| {
        b.iter(|| operators::subsume(f.gm.store(), go).expect("closure"))
    });
    group.bench_function("enrichment_math", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for k in 0..50 {
                acc += profiling::stats::hypergeometric_sf(20_000, 400, 2_500, k);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pipeline, bench_stages
}
criterion_main!(benches);
