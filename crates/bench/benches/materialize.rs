//! Ablation A3 — materialized derived mappings vs on-the-fly derivation.
//!
//! Paper §3: "GenMapper supports the calculation and storage of derived
//! relationships to increase the annotation knowledge and to support
//! frequent queries." The bench compares answering the Unigene→GO mapping
//! by composition each time vs once-materialized retrieval, under a
//! repeat-factor sweep — the crossover shows after how many repeated
//! queries materialization pays for itself.

use bench::demo_fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_per_query_cost(c: &mut Criterion) {
    let mut f = demo_fixture(61);
    let path: Vec<_> = ["Unigene", "LocusLink", "GO"]
        .iter()
        .map(|n| f.gm.source_id(n).unwrap())
        .collect();
    let mut group = c.benchmark_group("materialize/per_query");
    // store-level derivation, bypassing the system's mapping cache — the
    // ablation contrasts real per-query join work with materialized lookup
    group.bench_function("compose_on_the_fly", |b| {
        b.iter(|| operators::compose_path(f.gm.store(), &path).expect("composes"))
    });
    f.gm.materialize_composed(&["Unigene", "LocusLink", "GO"])
        .expect("materializes");
    let (ug, go) = (path[0], path[2]);
    group.bench_function("map_materialized", |b| {
        b.iter(|| operators::map(f.gm.store(), ug, go).expect("direct"))
    });
    group.finish();
}

fn bench_repeat_factor(c: &mut Criterion) {
    // total cost of answering the mapping k times, with and without the
    // up-front materialization (which is included in the measured cost)
    let mut group = c.benchmark_group("materialize/repeat_factor");
    group.sample_size(10);
    for &k in &[1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::new("on_the_fly", k), &k, |b, &k| {
            let f = demo_fixture(62);
            let path: Vec<_> = ["Unigene", "LocusLink", "GO"]
                .iter()
                .map(|n| f.gm.source_id(n).unwrap())
                .collect();
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..k {
                    total += operators::compose_path(f.gm.store(), &path).unwrap().len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("cached_compose", k), &k, |b, &k| {
            // the versioned mapping cache sits between the two extremes:
            // first call derives, the rest are Arc-clone hits
            let f = demo_fixture(62);
            b.iter(|| {
                let mut total = 0usize;
                for _ in 0..k {
                    total += f.gm.compose(&["Unigene", "LocusLink", "GO"]).unwrap().len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("materialize_then_map", k), &k, |b, &k| {
            b.iter(|| {
                let mut f = demo_fixture(62);
                f.gm.materialize_composed(&["Unigene", "LocusLink", "GO"]).unwrap();
                let path: Vec<_> = ["Unigene", "GO"]
                    .iter()
                    .map(|n| f.gm.source_id(n).unwrap())
                    .collect();
                let mut total = 0usize;
                for _ in 0..k {
                    total += operators::map(f.gm.store(), path[0], path[1]).unwrap().len();
                }
                total
            })
        });
    }
    group.finish();
}

fn bench_subsumed_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize/subsumed");
    group.sample_size(10);
    group.bench_function("derive_each_time", |b| {
        let f = demo_fixture(63);
        let go = f.gm.source_id("GO").unwrap();
        b.iter(|| operators::subsume(f.gm.store(), go).expect("closure"))
    });
    group.bench_function("materialized_lookup", |b| {
        let mut f = demo_fixture(63);
        let (rel, _) = f.gm.materialize_subsumed("GO").unwrap();
        b.iter(|| f.gm.store().load_mapping(rel).expect("loads"))
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_per_query_cost, bench_repeat_factor, bench_subsumed_materialization
}
criterion_main!(benches);
