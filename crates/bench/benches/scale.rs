//! Experiment S5-scale — the §5 deployment numbers.
//!
//! "It currently contains approx. 2 million objects of over 60 data
//! sources, and 5 million object associations organized in over 500
//! different mappings."
//!
//! Sweeps the ecosystem scale factor, measuring end-to-end integration
//! throughput and post-integration query latency (Map and a two-target
//! view). The absolute paper-scale run (factor 20, ~2M objects) is gated
//! behind `GENMAPPER_FULL_SCALE=1` — it takes minutes; the default sweep
//! keeps the same shape at laptop-friendly sizes. The measured
//! cardinalities per factor are printed once per run and recorded in
//! EXPERIMENTS.md.

use bench::{fixture, scaled_params};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genmapper::{GenMapper, QuerySpec};
use sources::ecosystem::Ecosystem;

fn factors() -> Vec<f64> {
    if std::env::var("GENMAPPER_FULL_SCALE").as_deref() == Ok("1") {
        vec![0.25, 1.0, 4.0, 20.0]
    } else {
        vec![0.25, 1.0, 4.0]
    }
}

fn bench_integration_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale/integration");
    group.sample_size(10);
    for &factor in &factors() {
        let params = scaled_params(13, factor);
        let eco = Ecosystem::generate(params);
        // print the cardinalities this factor reaches (recorded in
        // EXPERIMENTS.md against the paper's 60 sources / 2M objects / 5M
        // associations / 500 mappings)
        {
            let mut gm = GenMapper::in_memory().unwrap();
            gm.import_dumps(&eco.dumps).unwrap();
            eprintln!(
                "[scale factor {factor}] dump bytes: {}, integrated: {}",
                eco.dump_bytes(),
                gm.cardinalities().unwrap()
            );
        }
        group.throughput(Throughput::Bytes(eco.dump_bytes() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(factor), &eco, |b, eco| {
            b.iter(|| {
                let mut gm = GenMapper::in_memory().unwrap();
                gm.import_dumps(&eco.dumps).unwrap();
                gm
            })
        });
    }
    group.finish();
}

fn bench_query_latency_at_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale/query_latency");
    group.sample_size(20);
    for &factor in &factors() {
        let mut f = fixture(scaled_params(14, factor));
        // store-level Map: retrieval latency at scale, not a cache hit
        let ll = f.gm.source_id("LocusLink").unwrap();
        let go = f.gm.source_id("GO").unwrap();
        group.bench_with_input(BenchmarkId::new("map", factor), &factor, |b, _| {
            b.iter(|| operators::map(f.gm.store(), ll, go).expect("mapping"))
        });
        let spec = QuerySpec::source("LocusLink").target("GO").target("Hugo").or();
        group.bench_with_input(BenchmarkId::new("view_2targets", factor), &factor, |b, _| {
            b.iter(|| {
                let _ = f.gm.store_mut(); // drop the mapping cache: full resolution
                f.gm.query(&spec).expect("view")
            })
        });
        // point query: one locus, one target (interactive usage; repeated
        // point queries legitimately ride the warm mapping cache)
        let point = QuerySpec::source("LocusLink").accessions(["353"]).target("GO");
        group.bench_with_input(BenchmarkId::new("point_view", factor), &factor, |b, _| {
            b.iter(|| f.gm.query(&point).expect("view"))
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_integration_scale, bench_query_latency_at_scale
}
criterion_main!(benches);
