//! Experiment T2 — the simple operations of paper Table 2.
//!
//! Measures `Map` (index-served retrieval from the GAM database) and the
//! pure mapping operations `Domain`, `Range`, `RestrictDomain`,
//! `RestrictRange` and `inverse` across mapping sizes. Regenerates the
//! semantics examples of Table 2 in `bench/src/bin/experiments.rs`.

use bench::{demo_fixture, synthetic_mapping};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::BTreeSet;

fn bench_pure_operations(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/pure");
    for &n in &[1_000usize, 10_000, 100_000] {
        let mapping = synthetic_mapping(7, n, 4);
        let domain = mapping.domain();
        let half: BTreeSet<_> = domain.iter().copied().take(domain.len() / 2).collect();
        group.throughput(Throughput::Elements(mapping.len() as u64));
        group.bench_with_input(BenchmarkId::new("domain", n), &mapping, |b, m| {
            b.iter(|| m.domain())
        });
        group.bench_with_input(BenchmarkId::new("range", n), &mapping, |b, m| {
            b.iter(|| m.range())
        });
        group.bench_with_input(BenchmarkId::new("restrict_domain", n), &mapping, |b, m| {
            b.iter(|| m.restrict_domain(&half))
        });
        group.bench_with_input(BenchmarkId::new("restrict_range", n), &mapping, |b, m| {
            b.iter(|| m.restrict_range(&m.range()))
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &mapping, |b, m| {
            b.iter(|| m.inverse())
        });
    }
    group.finish();
}

fn bench_map_retrieval(c: &mut Criterion) {
    let f = demo_fixture(21);
    let mut group = c.benchmark_group("table2/map");
    for (from, to) in [("LocusLink", "GO"), ("LocusLink", "Hugo"), ("NetAffx", "Unigene")] {
        // store-level Map, bypassing the facade's mapping cache: this
        // group measures retrieval, not cache hits
        let from_id = f.gm.source_id(from).unwrap();
        let to_id = f.gm.source_id(to).unwrap();
        group.bench_function(format!("map/{from}->{to}"), |b| {
            b.iter(|| operators::map(f.gm.store(), from_id, to_id).expect("mapping exists"))
        });
        // reversed orientation pays the inversion
        group.bench_function(format!("map/{to}->{from}"), |b| {
            b.iter(|| operators::map(f.gm.store(), to_id, from_id).expect("mapping exists"))
        });
    }
    // the facade path with the versioned cache warm, for contrast
    group.bench_function("map/LocusLink->GO_cached", |b| {
        b.iter(|| f.gm.map("LocusLink", "GO").expect("mapping exists"))
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pure_operations, bench_map_retrieval
}
criterion_main!(benches);
