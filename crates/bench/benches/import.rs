//! Experiments T1 + F2 — the two-phase integration pipeline.
//!
//! T1: per-dialect Parse throughput (the source-specific step whose
//! simplicity the paper emphasizes; output is the Table 1 EAV format).
//! F2: the full architecture of Figure 2 — parallel Parse + generic
//! Import — measured end to end.

use bench::fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use genmapper::GenMapper;
use sources::ecosystem::{Ecosystem, EcosystemParams};

fn bench_parse_dialects(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemParams::medium(3));
    let mut group = c.benchmark_group("table1/parse");
    for dump in eco.dumps.iter().take(10) {
        group.throughput(Throughput::Bytes(dump.text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(&dump.name), dump, |b, d| {
            b.iter(|| d.parse().expect("parses"))
        });
    }
    group.finish();
}

fn bench_import_pipeline(c: &mut Criterion) {
    let eco = Ecosystem::generate(EcosystemParams::demo(4));
    let mut group = c.benchmark_group("figure2/pipeline");
    group.sample_size(10);
    group.bench_function("end_to_end/demo", |b| {
        b.iter(|| {
            let mut gm = GenMapper::in_memory().unwrap();
            gm.import_dumps(&eco.dumps).unwrap()
        })
    });
    // parse-only, serial vs parallel
    group.bench_function("parse_all/serial", |b| {
        b.iter(|| import::pipeline::parse_dumps(&eco.dumps, 1).unwrap())
    });
    group.bench_function("parse_all/parallel4", |b| {
        b.iter(|| import::pipeline::parse_dumps(&eco.dumps, 4).unwrap())
    });
    // bulk fast path vs the per-row reference on pre-parsed batches
    // (batched accession resolution + batch inserts vs per-row probes)
    let batches: Vec<eav::EavBatch> = eco.dumps.iter().map(|d| d.parse().unwrap()).collect();
    group.bench_function("import_all/bulk", |b| {
        b.iter(|| {
            let mut store = gam::GamStore::in_memory().unwrap();
            for batch in &batches {
                import::Importer::new(&mut store).import(batch).unwrap();
            }
            store
        })
    });
    group.bench_function("import_all/per_row", |b| {
        b.iter(|| {
            let mut store = gam::GamStore::in_memory().unwrap();
            for batch in &batches {
                import::Importer::new(&mut store).import_per_row(batch).unwrap();
            }
            store
        })
    });
    // incremental re-import of an identical release (dedup fast path)
    let mut f = fixture(EcosystemParams::demo(4));
    let batch = eco.dumps[0].parse().unwrap();
    group.bench_function("reimport/skip_same_release", |b| {
        let gm = &mut f.gm;
        b.iter(|| {
            let report = gm.import_batch(&batch).unwrap();
            assert!(report.skipped);
            report
        });
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_parse_dialects, bench_import_pipeline
}
criterion_main!(benches);
