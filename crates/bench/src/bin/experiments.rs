//! Regenerate every paper artifact (tables, figures, deployment numbers)
//! and print them in the paper's own shape. The output of this binary is
//! what EXPERIMENTS.md records as "measured".
//!
//! Run with: `cargo run --release -p bench --bin experiments`
//! Full §5 deployment scale: `GENMAPPER_FULL_SCALE=1 cargo run --release -p bench --bin experiments`

use bench::{composable_mappings, medium_fixture, scaled_params};
use eav::EavRecord;
use gam::mapping::Association;
use gam::model::RelType;
use gam::{Mapping, MappingIndex, ObjectId, SourceId};
use genmapper::{ExecConfig, GenMapper, QuerySpec, TargetQuery};
use profiling::{ExpressionParams, ExpressionStudy, FunctionalProfile};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use std::time::Instant;

fn heading(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

fn main() {
    let full_scale = std::env::var("GENMAPPER_FULL_SCALE").as_deref() == Ok("1");

    // ------------------------------------------------------------- T1/F1
    heading("T1 / F1", "Parsed EAV rows for LocusLink locus 353 (paper Table 1)");
    let eco = Ecosystem::generate(EcosystemParams::demo(7));
    let batch = eco.dumps[0].parse().expect("LocusLink parses");
    println!("{:<8} {:<10} {:<14} Text", "Locus", "Target", "Accession");
    for r in &batch.records {
        if let EavRecord::Annotation {
            entity,
            target,
            accession,
            text,
            ..
        } = r
        {
            if entity == "353" {
                println!(
                    "{:<8} {:<10} {:<14} {}",
                    entity,
                    target,
                    accession,
                    text.as_deref().unwrap_or("")
                );
            }
        }
    }

    // ---------------------------------------------------------------- T2
    heading("T2", "Simple operations on the paper's example mapping (paper Table 2)");
    let map = Mapping {
        from: SourceId(1),
        to: SourceId(2),
        rel_type: RelType::Fact,
        pairs: vec![
            Association::fact(ObjectId(1), ObjectId(11)),
            Association::fact(ObjectId(2), ObjectId(12)),
        ],
    };
    println!("map               = {{s1<->t1, s2<->t2}}");
    println!("Domain(map)       = {:?}  (expected {{s1, s2}})", map.domain());
    println!("Range(map)        = {:?}  (expected {{t1, t2}})", map.range());
    println!(
        "RestrictDomain(map, {{s1}}) = {:?}  (expected {{s1<->t1}})",
        map.restrict_domain(&[ObjectId(1)].into()).pairs
    );
    println!(
        "RestrictRange(map, {{t2}})  = {:?}  (expected {{s2<->t2}})",
        map.restrict_range(&[ObjectId(12)].into()).pairs
    );

    // ---------------------------------------------------------------- F2
    heading("F2", "Architecture end-to-end: import phase + view phase (paper Figure 2)");
    let start = Instant::now();
    let mut gm = GenMapper::in_memory().expect("store");
    let reports = gm.import_dumps(&eco.dumps).expect("pipeline");
    let import_time = start.elapsed();
    println!(
        "imported {} dumps ({} bytes of flat files) in {:.2?}",
        reports.len(),
        eco.dump_bytes(),
        import_time
    );
    println!("{}", gm.cardinalities().expect("stats"));

    // ---------------------------------------------------------------- F3
    heading("F3", "Annotation view for LocusLink genes (paper Figure 3)");
    let loci: Vec<String> = eco.universe.loci.iter().take(4).map(|l| l.id.to_string()).collect();
    let spec = QuerySpec::source("LocusLink")
        .accessions(loci.iter().map(String::as_str))
        .target("Hugo")
        .target("GO")
        .target("Location")
        .target("OMIM")
        .or();
    let view = gm.query(&spec).expect("view");
    print!("{}", view.to_tsv());

    // ---------------------------------------------------------------- F4
    heading("F4", "The GAM data model (paper Figure 4): table schemas as installed");
    for schema in gam::schema::all_schemas().expect("static schema is valid") {
        let cols: Vec<String> = schema
            .columns()
            .iter()
            .map(|c| format!("{}:{}{}", c.name, c.ty, if c.nullable { "?" } else { "" }))
            .collect();
        println!("{:<12} ({})", schema.name(), cols.join(", "));
    }

    // ---------------------------------------------------------------- F5
    heading("F5", "GenerateView algorithm behaviour (paper Figure 5)");
    let base = QuerySpec::source("LocusLink").target("GO").target("OMIM");
    let or_view = gm.query(&base.clone().or()).expect("or view");
    let and_view = gm.query(&base.clone().and()).expect("and view");
    let not_view = gm
        .query(
            &QuerySpec::source("LocusLink")
                .target("GO")
                .target_spec(TargetQuery::new("OMIM").negated())
                .and(),
        )
        .expect("not view");
    let distinct = |v: &genmapper::ResolvedView| {
        v.rows
            .iter()
            .filter_map(|r| r.cell_text(0).map(str::to_owned))
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    };
    let n_loci = eco.universe.loci.len();
    println!("source objects                         : {n_loci}");
    println!(
        "OR view   (GO, OMIM): {} rows, {} distinct loci (expected all {n_loci})",
        or_view.len(),
        distinct(&or_view)
    );
    println!(
        "AND view  (GO, OMIM): {} rows, {} distinct loci (loci with both annotations)",
        and_view.len(),
        distinct(&and_view)
    );
    println!(
        "AND + NOT OMIM      : {} rows, {} distinct loci (complement of OMIM side: {} + {} = {})",
        not_view.len(),
        distinct(&not_view),
        distinct(&and_view),
        distinct(&not_view),
        distinct(&and_view) + distinct(&not_view),
    );

    // ---------------------------------------------------------------- F6
    heading("F6", "Interactive workflow: path discovery + query + object info (paper Figure 6)");
    let path = gm.find_path("NetAffx", "GO").expect("path");
    println!("automatic mapping path NetAffx->GO : {}", path.join(" -> "));
    let alternatives = gm.find_paths("NetAffx", "GO", 3).expect("paths");
    println!("alternative paths found            : {}", alternatives.len());
    let info = gm.object_info("LocusLink", "353").expect("info");
    println!(
        "object info 353: name={:?}, {} associations",
        info.text,
        info.associations.len()
    );

    // ---------------------------------------------------------- S5-scale
    heading(
        "S5-scale",
        "Deployment cardinalities (paper §5: 60+ sources, ~2M objects, ~5M associations, 500+ mappings)",
    );
    let factors: &[f64] = if full_scale {
        &[0.25, 1.0, 4.0, 20.0]
    } else {
        &[0.25, 1.0, 4.0]
    };
    println!(
        "{:<8} {:>8} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "factor", "sources", "objects", "associations", "mappings", "dump bytes", "import"
    );
    for &factor in factors {
        // the top factor runs the §5 deployment configuration (65 sources,
        // multi-hub satellites); smaller factors scale the medium setup
        let params = if factor >= 20.0 {
            EcosystemParams::paper_scale(13)
        } else {
            scaled_params(13, factor)
        };
        let eco = Ecosystem::generate(params);
        let start = Instant::now();
        let mut gm = GenMapper::in_memory().expect("store");
        gm.import_dumps(&eco.dumps).expect("pipeline");
        // materialize the paper's flagship derived mappings so the mapping
        // count reflects deployment practice
        let _ = gm.materialize_composed(&["Unigene", "LocusLink", "GO"]);
        let _ = gm.materialize_subsumed("GO");
        let elapsed = start.elapsed();
        let cards = gm.cardinalities().expect("stats");
        println!(
            "{:<8} {:>8} {:>10} {:>12} {:>10} {:>12} {:>10.2?}",
            factor,
            cards.sources,
            cards.objects,
            cards.associations,
            cards.mappings,
            eco.dump_bytes(),
            elapsed
        );
        if !full_scale && factor >= 4.0 {
            // relationship-type breakdown (paper §3's six-way classification)
            print!("  by type:");
            for (rel_type, mappings, _) in gm.store().mapping_type_counts().expect("stats") {
                print!(" {rel_type}={mappings}");
            }
            println!();
            println!("(run with GENMAPPER_FULL_SCALE=1 for the ~2M-object factor-20 row)");
        }
    }

    // ------------------------------------------------------ S5-profiling
    heading("S5-profiling", "Functional profiling pipeline (paper §5.2)");
    let eco = Ecosystem::generate(EcosystemParams {
        universe: sources::universe::UniverseParams {
            seed: 2004,
            n_loci: if full_scale { 40_000 } else { 4_000 },
            n_go_terms: if full_scale { 12_000 } else { 1_200 },
            ..sources::universe::UniverseParams::default()
        },
        n_satellites: 0,
        satellite_objects: 0,
        satellite_links: 0,
        satellite_hubs: 1,
        satellite_scored_fraction: 0.0,
    });
    let mut gm = GenMapper::in_memory().expect("store");
    gm.import_dumps(&eco.dumps).expect("pipeline");
    let study = ExpressionStudy::simulate(&eco.universe, ExpressionParams::default());
    let (total, detected, differential) = study.counts();
    println!("probe sets            : {total:>7}   (paper: ~40,000 genes)");
    println!("detected              : {detected:>7}   (paper: ~20,000)");
    println!("differential          : {differential:>7}   (paper: ~2,500)");
    let start = Instant::now();
    let report = FunctionalProfile::run(&mut gm, &study).expect("profiles");
    println!("pipeline runtime      : {:.2?}", start.elapsed());
    println!("study loci            : {:>7}", report.study_loci);
    println!("background loci       : {:>7}", report.population_loci);
    println!("GO terms profiled     : {:>7}", report.enrichment.len());
    for (acc, name, n) in &report.namespace_breakdown {
        println!("    {acc} {:<22} {n:>6} terms", name.as_deref().unwrap_or(""));
    }
    println!("top 5 enriched GO terms:");
    for t in report.enrichment.iter().take(5) {
        println!(
            "  {:<14} study {:>4} / pop {:>5}  p={:.3e}",
            t.accession, t.study_count, t.population_count, t.p_value
        );
    }

    // ----------------------------------------------------------- parallel
    heading(
        "P-parallel",
        "Partitioned parallel Compose / GenerateView + versioned mapping cache",
    );
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("worker threads available: {available}");

    // pure Compose across worker counts (best of 5, after warm-up)
    let (left, right) = composable_mappings(5, 200_000);
    let join_pairs = left.len() + right.len();
    let time_compose = |jobs: usize| -> f64 {
        let cfg = ExecConfig {
            jobs,
            parallel_threshold: 0,
            plan: true,
        };
        let _ = operators::compose_par(&left, &right, &cfg).expect("composes");
        (0..5)
            .map(|_| {
                let t = Instant::now();
                let _ = operators::compose_par(&left, &right, &cfg).expect("composes");
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let job_counts = [1usize, 2, 4, 8];
    let compose_secs: Vec<f64> = job_counts.iter().map(|&j| time_compose(j)).collect();
    println!("\nCompose, {join_pairs} input pairs:");
    println!("{:<6} {:>12} {:>10}", "jobs", "seconds", "speedup");
    for (&jobs, &secs) in job_counts.iter().zip(&compose_secs) {
        println!("{jobs:<6} {secs:>12.6} {:>9.2}x", compose_secs[0] / secs);
    }

    // GenerateView across worker counts (cache dropped before every run)
    let mut f = medium_fixture(36);
    let spec = QuerySpec::source("LocusLink")
        .target("Hugo")
        .target("GO")
        .target("Location")
        .target("OMIM")
        .or();
    let mut time_view = |jobs: usize| -> f64 {
        f.gm.set_exec_config(ExecConfig {
            jobs,
            parallel_threshold: 0,
            plan: true,
        });
        let _ = f.gm.store_mut();
        let _ = f.gm.query(&spec).expect("view");
        (0..3)
            .map(|_| {
                let _ = f.gm.store_mut(); // invalidate the mapping cache
                let t = Instant::now();
                let _ = f.gm.query(&spec).expect("view");
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let view_secs: Vec<f64> = job_counts.iter().map(|&j| time_view(j)).collect();
    println!("\nGenerateView, 4 target columns (uncached):");
    println!("{:<6} {:>12} {:>10}", "jobs", "seconds", "speedup");
    for (&jobs, &secs) in job_counts.iter().zip(&view_secs) {
        println!("{jobs:<6} {secs:>12.6} {:>9.2}x", view_secs[0] / secs);
    }

    // versioned mapping cache: cold vs warm repeat of the same query
    f.gm.set_exec_config(ExecConfig::sequential());
    let miss = (0..3)
        .map(|_| {
            let _ = f.gm.store_mut();
            let t = Instant::now();
            let _ = f.gm.query(&spec).expect("view");
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    let _ = f.gm.query(&spec).expect("warm-up");
    let hit = (0..3)
        .map(|_| {
            let t = Instant::now();
            let _ = f.gm.query(&spec).expect("view");
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);
    println!("\nMapping cache (same query, cold vs warm):");
    println!("miss: {miss:.6}s   hit: {hit:.6}s   speedup: {:.2}x", miss / hit);

    // machine-readable record for EXPERIMENTS.md
    let row = |jobs: usize, secs: f64, base: f64| {
        format!(
            "{{\"jobs\": {jobs}, \"seconds\": {secs:.6}, \"speedup\": {:.3}}}",
            base / secs
        )
    };
    let compose_json: Vec<String> = job_counts
        .iter()
        .zip(&compose_secs)
        .map(|(&j, &s)| row(j, s, compose_secs[0]))
        .collect();
    let view_json: Vec<String> = job_counts
        .iter()
        .zip(&view_secs)
        .map(|(&j, &s)| row(j, s, view_secs[0]))
        .collect();
    let json = format!(
        "{{\n  \"workers_available\": {available},\n  \"compose\": {{\n    \"input_pairs\": {join_pairs},\n    \"runs\": [\n      {}\n    ]\n  }},\n  \"generate_view\": {{\n    \"targets\": 4,\n    \"runs\": [\n      {}\n    ]\n  }},\n  \"mapping_cache\": {{\"miss_seconds\": {miss:.6}, \"hit_seconds\": {hit:.6}, \"speedup\": {:.3}}}\n}}\n",
        compose_json.join(",\n      "),
        view_json.join(",\n      "),
        miss / hit,
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");

    // --------------------------------------------------------------- CSR
    heading(
        "P-csr",
        "CSR MappingIndex: indexed OBJECT_REL load + merge-join Compose (scale factors 1/4/16)",
    );
    let best_of = |runs: usize, f: &mut dyn FnMut()| -> f64 {
        f(); // warm-up
        (0..runs)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let mut load_rows: Vec<String> = Vec::new();
    let mut compose_rows: Vec<String> = Vec::new();
    println!(
        "{:<7} {:>9} {:>11} {:>11} {:>8} {:>11} {:>11} {:>8}",
        "factor", "pairs", "flat load", "idx load", "speedup", "hash join", "merge join", "speedup"
    );
    for &factor in &[1.0f64, 4.0, 16.0] {
        // indexed load: the largest mapping of a generated ecosystem,
        // flat-scan load_mapping vs the by_pair prefix-scan CSR load
        let eco = Ecosystem::generate(scaled_params(29, factor));
        let mut gm = GenMapper::in_memory().expect("store");
        gm.import_dumps(&eco.dumps).expect("pipeline");
        let store = gm.store();
        let rel = store
            .source_rels()
            .expect("rels")
            .into_iter()
            .filter(|r| !r.rel_type.is_structural())
            .max_by_key(|r| store.association_count(r.id).unwrap_or(0))
            .expect("ecosystem has at least one mapping");
        let pairs = store.association_count(rel.id).expect("count");
        let flat = best_of(5, &mut || {
            let _ = store.load_mapping(rel.id).expect("flat load");
        });
        let indexed = best_of(5, &mut || {
            let _ = store.load_mapping_index(rel.id).expect("indexed load");
        });

        // pure Compose at the same scale: Vec-based hash join vs the CSR
        // sorted merge join, both sequential (this measures the join
        // strategy, not parallelism — BENCH_parallel.json covers that)
        let n = (25_000.0 * factor) as usize;
        let (left, right) = composable_mappings(31, n);
        let li = MappingIndex::build(left.clone());
        let ri = MappingIndex::build(right.clone());
        let seq = ExecConfig::sequential();
        let hash = best_of(5, &mut || {
            let _ = operators::compose(&left, &right).expect("hash join");
        });
        let merge = best_of(5, &mut || {
            let _ = operators::compose_idx(&li, &ri, &seq).expect("merge join");
        });
        println!(
            "{:<7} {:>9} {:>11.6} {:>11.6} {:>7.2}x {:>11.6} {:>11.6} {:>7.2}x",
            factor,
            pairs,
            flat,
            indexed,
            flat / indexed,
            hash,
            merge,
            hash / merge
        );
        load_rows.push(format!(
            "{{\"factor\": {factor}, \"pairs\": {pairs}, \"flat_seconds\": {flat:.6}, \"indexed_seconds\": {indexed:.6}, \"speedup\": {:.3}}}",
            flat / indexed
        ));
        compose_rows.push(format!(
            "{{\"factor\": {factor}, \"input_pairs\": {}, \"hash_seconds\": {hash:.6}, \"merge_seconds\": {merge:.6}, \"speedup\": {:.3}}}",
            left.len() + right.len(),
            hash / merge
        ));
    }
    let csr_json = format!(
        "{{\n  \"generator\": \"cargo run --release -p bench --bin experiments\",\n  \"load_mapping\": [\n    {}\n  ],\n  \"compose\": [\n    {}\n  ]\n}}\n",
        load_rows.join(",\n    "),
        compose_rows.join(",\n    ")
    );
    std::fs::write("BENCH_csr.json", &csr_json).expect("write BENCH_csr.json");
    println!("\nwrote BENCH_csr.json");

    // ------------------------------------------------------------ import
    heading(
        "P-import",
        "Bulk-import fast path: parallel parse + batched resolution + WAL group commit (scale 1/4/16)",
    );
    // Durable stores so the WAL fsync behaviour is part of the measurement:
    // the per-row baseline pays one fsync per logical commit, the bulk path
    // one per dump batch.
    let bench_dir = std::env::temp_dir().join("genmapper-bench-import");
    let _ = std::fs::remove_dir_all(&bench_dir);
    println!(
        "{:<7} {:>9} {:>11} {:>11} {:>8}   per-phase (bulk)",
        "factor", "records", "per-row", "bulk", "speedup"
    );
    let mut import_json_rows: Vec<String> = Vec::new();
    for &factor in &[1.0f64, 4.0, 16.0] {
        let eco = Ecosystem::generate(scaled_params(41, factor));
        let records: usize = import::pipeline::parse_dumps(&eco.dumps, 1)
            .expect("parse")
            .iter()
            .map(|b| b.records.len())
            .sum();
        // baseline: serial parse, per-row probes, sync-on-commit WAL
        let per_row = best_of(3, &mut || {
            let dir = bench_dir.join("per-row");
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = gam::GamStore::open(&dir).expect("store");
            let batches =
                import::pipeline::parse_dumps(&eco.dumps, 1).expect("parse");
            for batch in &batches {
                import::Importer::new(&mut store)
                    .import_per_row(batch)
                    .expect("import");
            }
        });
        // fast path: parallel parse, batched resolution, one fsync per batch
        let mut phases = import::ImportTimings::default();
        let options = import::PipelineOptions::default();
        let bulk = best_of(3, &mut || {
            let dir = bench_dir.join("bulk");
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = gam::GamStore::open(&dir).expect("store");
            let (_, t) =
                import::run_pipeline_timed(&mut store, &eco.dumps, &options).expect("pipeline");
            phases = t;
        });
        println!(
            "{:<7} {:>9} {:>11.6} {:>11.6} {:>7.2}x   parse {:.4?} resolve {:.4?} insert {:.4?} wal {:.4?}",
            factor,
            records,
            per_row,
            bulk,
            per_row / bulk,
            phases.parse,
            phases.resolve,
            phases.insert,
            phases.wal,
        );
        import_json_rows.push(format!(
            "{{\"factor\": {factor}, \"records\": {records}, \"per_row_seconds\": {per_row:.6}, \"bulk_seconds\": {bulk:.6}, \"speedup\": {:.3}, \"phases\": {{\"parse\": {:.6}, \"resolve\": {:.6}, \"insert\": {:.6}, \"wal\": {:.6}}}}}",
            per_row / bulk,
            phases.parse.as_secs_f64(),
            phases.resolve.as_secs_f64(),
            phases.insert.as_secs_f64(),
            phases.wal.as_secs_f64(),
        ));
    }
    let _ = std::fs::remove_dir_all(&bench_dir);
    let import_json = format!(
        "{{\n  \"generator\": \"cargo run --release -p bench --bin experiments\",\n  \"import\": [\n    {}\n  ]\n}}\n",
        import_json_rows.join(",\n    ")
    );
    std::fs::write("BENCH_import.json", &import_json).expect("write BENCH_import.json");
    println!("\nwrote BENCH_import.json");
}
