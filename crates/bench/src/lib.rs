//! Shared fixtures for the benchmark harness.
//!
//! Every bench in `benches/` regenerates one experiment from DESIGN.md §4
//! (one per paper table/figure). The fixtures here build deterministic
//! systems at named scales so measurements are comparable across runs.

use gam::mapping::{Association, Mapping};
use gam::model::RelType;
use gam::{ObjectId, SourceId};
use genmapper::GenMapper;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sources::ecosystem::{Ecosystem, EcosystemParams};
use sources::universe::UniverseParams;

/// A ready-to-query system plus the generating ecosystem.
pub struct Fixture {
    pub gm: GenMapper,
    pub eco: Ecosystem,
}

/// Build and integrate an ecosystem at demo scale (fast; for per-operator
/// benches).
pub fn demo_fixture(seed: u64) -> Fixture {
    fixture(EcosystemParams::demo(seed))
}

/// Build and integrate an ecosystem at medium scale.
pub fn medium_fixture(seed: u64) -> Fixture {
    fixture(EcosystemParams::medium(seed))
}

/// Build and integrate an arbitrary ecosystem.
pub fn fixture(params: EcosystemParams) -> Fixture {
    let eco = Ecosystem::generate(params);
    let mut gm = GenMapper::in_memory().expect("store opens");
    gm.import_dumps(&eco.dumps).expect("pipeline runs");
    Fixture { gm, eco }
}

/// Ecosystem parameters scaled by a factor relative to `medium`, with the
/// satellite count fixed (scale benches vary object counts, not source
/// counts, unless told otherwise).
pub fn scaled_params(seed: u64, factor: f64) -> EcosystemParams {
    let mut p = EcosystemParams::medium(seed);
    p.universe = UniverseParams {
        seed,
        ..UniverseParams::default()
    }
    .scaled(factor);
    p.satellite_objects = ((p.satellite_objects as f64 * factor) as usize).max(10);
    p
}

/// A synthetic in-memory mapping with `n` pairs for pure operator benches
/// (no store involved). Domain/range object ids are dense.
pub fn synthetic_mapping(seed: u64, n: usize, fan_out: usize) -> Mapping {
    let mut rng = SmallRng::seed_from_u64(seed);
    let domain = (n / fan_out).max(1);
    let mut m = Mapping::empty(SourceId(1), SourceId(2), RelType::Fact);
    m.pairs.reserve(n);
    for i in 0..n {
        let from = ObjectId((i % domain) as u64);
        let to = ObjectId(10_000_000 + rng.gen_range(0..n as u64));
        m.pairs.push(Association::fact(from, to));
    }
    m.dedup();
    m
}

/// A pair of composable mappings sharing a middle source.
pub fn composable_mappings(seed: u64, n: usize) -> (Mapping, Mapping) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut left = Mapping::empty(SourceId(1), SourceId(2), RelType::Fact);
    let mut right = Mapping::empty(SourceId(2), SourceId(3), RelType::Fact);
    let mid = (n / 2).max(1) as u64;
    for i in 0..n {
        left.pairs.push(Association::fact(
            ObjectId(i as u64),
            ObjectId(1_000_000 + rng.gen_range(0..mid)),
        ));
        right.pairs.push(Association::fact(
            ObjectId(1_000_000 + rng.gen_range(0..mid)),
            ObjectId(2_000_000 + i as u64),
        ));
    }
    left.dedup();
    right.dedup();
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let f = demo_fixture(1);
        assert!(f.gm.cardinalities().unwrap().sources >= 14);
        let m = synthetic_mapping(1, 1000, 4);
        assert!(m.len() <= 1000 && m.len() > 500);
        let (l, r) = composable_mappings(1, 500);
        assert_eq!(l.to, r.from);
    }

    #[test]
    fn scaled_params_scale() {
        let small = scaled_params(1, 0.1);
        let big = scaled_params(1, 1.0);
        assert!(small.universe.n_loci < big.universe.n_loci);
    }
}
